//! Trace sinks and the cheap-when-off [`Tracer`] handle.
//!
//! Machines hold a [`Tracer`] and call [`Tracer::emit`] with a closure;
//! when tracing is disabled the call is a single branch on an `Option`
//! discriminant and the closure — including every argument computation
//! inside it — is never evaluated. [`NullSink`] additionally lets a
//! *connected-but-discarding* tracer be constructed for overhead tests.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Write};
use std::rc::Rc;

use crate::event::Event;

/// Receives trace events in emission order.
///
/// Sinks are driven from a single simulation thread through a
/// `Rc<RefCell<..>>` handle; they do not need to be `Send`.
pub trait TraceSink {
    /// Accept one event.
    fn record(&mut self, event: &Event);

    /// Flush any buffered output (streaming sinks). Default: no-op.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A sink that discards every event. Useful for measuring the overhead of
/// an *enabled* tracer whose events go nowhere.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn record(&mut self, _event: &Event) {}
}

/// An unbounded in-memory sink; the workhorse behind the exporters.
#[derive(Debug, Default)]
pub struct VecSink {
    events: Vec<Event>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty sink behind a shared handle suitable for
    /// [`Tracer::to_shared`].
    pub fn shared() -> Rc<RefCell<VecSink>> {
        Rc::new(RefCell::new(VecSink::new()))
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Moves the recorded events out, leaving the sink empty.
    pub fn take(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, event: &Event) {
        self.events.push(*event);
    }
}

/// A bounded sink that keeps only the most recent `capacity` events —
/// "flight recorder" mode for long runs.
#[derive(Debug)]
pub struct RingSink {
    buf: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// A sink retaining at most `capacity` events (`capacity` ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            buf: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// The retained (most recent) events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// How many events were evicted to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: &Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(*event);
    }
}

/// A streaming sink that writes one canonical JSONL line per event
/// (see [`Event::write_jsonl`]); byte-deterministic across identical runs.
pub struct JsonlSink<W: Write> {
    writer: W,
    line: String,
    written: u64,
}

impl<W: Write> JsonlSink<W> {
    /// Streams events into `writer`.
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            line: String::with_capacity(128),
            written: 0,
        }
    }

    /// Number of lines written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink")
            .field("written", &self.written)
            .finish_non_exhaustive()
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        self.line.clear();
        event.write_jsonl(&mut self.line);
        self.line.push('\n');
        // Simulation sinks treat I/O errors as fatal for the trace, not
        // the run; an error poisons nothing but stops growing the file.
        let _ = self.writer.write_all(self.line.as_bytes());
        self.written += 1;
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// Shared handle to a dynamically-typed sink, as held by a [`Tracer`].
pub type SharedSink = Rc<RefCell<dyn TraceSink>>;

/// The handle machine models hold. Cloning is cheap (an `Rc` bump or a
/// `None` copy); a disabled tracer's [`Tracer::emit`] is a single branch.
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<SharedSink>,
}

impl Tracer {
    /// A disabled tracer: `emit` never evaluates its closure.
    pub fn off() -> Self {
        Self { sink: None }
    }

    /// A tracer delivering events to `sink`.
    pub fn to_shared(sink: SharedSink) -> Self {
        Self { sink: Some(sink) }
    }

    /// Wraps an owned sink in a fresh shared handle.
    pub fn to_sink<S: TraceSink + 'static>(sink: S) -> Self {
        Self::to_shared(Rc::new(RefCell::new(sink)))
    }

    /// Whether events are being delivered anywhere.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits the event built by `f` — which runs only when the tracer is
    /// enabled, so argument computation is free when tracing is off.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> Event) {
        if let Some(sink) = &self.sink {
            let event = f();
            sink.borrow_mut().record(&event);
        }
    }

    /// Flushes the underlying sink, if any.
    pub fn flush(&self) -> io::Result<()> {
        match &self.sink {
            Some(sink) => sink.borrow_mut().flush(),
            None => Ok(()),
        }
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Track};

    fn ev(cycle: u64) -> Event {
        Event {
            cycle,
            thread: 0,
            track: Track::Control,
            kind: EventKind::ThreadStart,
        }
    }

    #[test]
    fn disabled_tracer_never_builds_events() {
        let tracer = Tracer::off();
        assert!(!tracer.enabled());
        tracer.emit(|| unreachable!("must not run"));
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let sink = VecSink::shared();
        let tracer = Tracer::to_shared(sink.clone());
        assert!(tracer.enabled());
        for c in 0..5 {
            tracer.emit(|| ev(c));
        }
        let cycles: Vec<u64> = sink.borrow().events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, [0, 1, 2, 3, 4]);
    }

    #[test]
    fn ring_sink_keeps_most_recent() {
        let mut ring = RingSink::new(3);
        for c in 0..10 {
            ring.record(&ev(c));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 7);
        let kept: Vec<u64> = ring.events().map(|e| e.cycle).collect();
        assert_eq!(kept, [7, 8, 9]);
        assert!(!ring.is_empty());
    }

    #[test]
    fn jsonl_sink_streams_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&ev(1));
        sink.record(&ev(2));
        assert_eq!(sink.written(), 2);
        let bytes = sink.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"c\":1,"));
        assert!(lines[1].starts_with("{\"c\":2,"));
    }

    #[test]
    fn null_sink_through_tracer() {
        let tracer = Tracer::to_sink(NullSink);
        assert!(tracer.enabled());
        tracer.emit(|| ev(0));
        tracer.flush().unwrap();
    }
}
