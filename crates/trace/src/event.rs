//! The typed trace-event vocabulary.
//!
//! Every observable micro-architectural happening is an [`Event`]: a
//! cycle, the hardware thread it belongs to, the component [`Track`] it
//! occurred on, and a typed [`EventKind`] payload. The vocabulary covers
//! the component granularity of the paper's evaluation (§7.3): PEs,
//! register lanes and their buffered segments, cluster LSUs, caches, the
//! shared 512-bit bus, and the control unit.

use std::fmt;

/// Why an instruction (or a whole pipeline) could not make progress in a
/// given cycle. Matches the paper's stall attribution (§7.3.2): only the
/// *source* of a stall is counted, not dependent instructions subsequently
/// stalled.
///
/// Defined here (the bottom of the workspace dependency graph) so trace
/// events and `diag_sim::StallBreakdown` share one taxonomy; `diag-sim`
/// re-exports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// Cache misses, full LSU queues, busy memory bus.
    Memory,
    /// Branch redirects, instruction-line reloads after control flow
    /// changes.
    Control,
    /// Structural hazards: shared bus busy, no free cluster, no free
    /// functional unit, full ROB/IQ.
    Structural,
}

impl StallCause {
    /// All causes, in the paper's reporting order (memory, control,
    /// structural/other).
    pub const ALL: [StallCause; 3] = [
        StallCause::Memory,
        StallCause::Control,
        StallCause::Structural,
    ];

    /// Stable lowercase name used in exported traces.
    pub fn name(self) -> &'static str {
        match self {
            StallCause::Memory => "memory",
            StallCause::Control => "control",
            StallCause::Structural => "structural",
        }
    }

    /// Index into per-cause arrays (`ALL[cause.index()] == cause`).
    pub fn index(self) -> usize {
        match self {
            StallCause::Memory => 0,
            StallCause::Control => 1,
            StallCause::Structural => 2,
        }
    }
}

impl fmt::Display for StallCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The hardware component a trace event belongs to. Exporters render one
/// timeline track per distinct `(thread, Track)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Track {
    /// One processing element: `cluster` within the ring, `slot` within
    /// the cluster.
    Pe {
        /// Cluster index within the ring.
        cluster: u32,
        /// PE slot within the cluster.
        slot: u32,
    },
    /// One architectural register lane (index into the 64-lane file).
    Lane(u8),
    /// One processing cluster (line residency, fetch events).
    Cluster(u32),
    /// One cluster-level load/store unit.
    Lsu(u32),
    /// The shared 512-bit bus.
    Bus,
    /// A cache level (1 = L1D, 2 = L2).
    Cache(u8),
    /// The central control unit (redirects, SIMT scheduling, stalls
    /// without a narrower home).
    Control,
    /// A conventional core of a baseline machine.
    Core(u32),
}

impl fmt::Display for Track {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Track::Pe { cluster, slot } => write!(f, "pe:{cluster}.{slot}"),
            Track::Lane(n) => write!(f, "lane:{n}"),
            Track::Cluster(n) => write!(f, "cluster:{n}"),
            Track::Lsu(n) => write!(f, "lsu:{n}"),
            Track::Bus => f.write_str("bus"),
            Track::Cache(level) => write!(f, "cache:L{level}"),
            Track::Control => f.write_str("ctrl"),
            Track::Core(n) => write!(f, "core:{n}"),
        }
    }
}

/// Typed payload of one trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A PE accepted a dynamic instruction (start of execution).
    PeIssue {
        /// Instruction address.
        pc: u32,
        /// Whether it executed from the resident datapath (no
        /// fetch/decode — paper §4.3.2 reuse).
        reused: bool,
    },
    /// The PC lane retired a dynamic instruction. `cycle` is the commit
    /// time; `start`/`finish` bound its execution interval.
    PeRetire {
        /// Instruction address.
        pc: u32,
        /// Cycle execution began.
        start: u64,
        /// Cycle the result was available.
        finish: u64,
    },
    /// A PE drove a register lane with a new value.
    LaneWrite {
        /// Lane index (0..64).
        lane: u8,
    },
    /// A lane value was transported across buffered segments to a
    /// consumer (paper §6.1.2).
    LaneForward {
        /// Lane index.
        lane: u8,
        /// Global PE slot of the writer.
        from_slot: u32,
        /// Global PE slot of the consumer.
        to_slot: u32,
        /// Segment-boundary crossings charged (cycles of transport).
        hops: u32,
    },
    /// A value entered a lane-buffer segment.
    SegPush {
        /// Lane index.
        lane: u8,
        /// Segment index within the ring.
        segment: u32,
    },
    /// A value left a lane-buffer segment at its consumer.
    SegPop {
        /// Lane index.
        lane: u8,
        /// Segment index within the ring.
        segment: u32,
    },
    /// In-flight occupancy of a lane-buffer segment after a push.
    SegOccupancy {
        /// Segment index within the ring.
        segment: u32,
        /// Transports currently traversing the segment.
        occupancy: u32,
    },
    /// A cluster LSU accepted a memory request.
    LsuEnqueue {
        /// Request serial number (unique per LSU).
        id: u64,
        /// Whether the request is a store.
        write: bool,
        /// Cycles the requester waited for queue room (a memory stall).
        wait: u64,
        /// Requests in flight after acceptance.
        occupancy: u32,
    },
    /// An LSU request's data returned (loads) / globally performed
    /// (stores).
    LsuComplete {
        /// Serial number of the completed request.
        id: u64,
    },
    /// A data-cache lookup.
    CacheAccess {
        /// Cache level (1 = L1D, 2 = L2).
        level: u8,
        /// Whether the access was a store.
        write: bool,
        /// Whether the level hit.
        hit: bool,
    },
    /// The shared 512-bit bus granted a transfer.
    BusGrant {
        /// Cycles the requester waited for the bus (structural stall).
        wait: u64,
        /// Beats transferred.
        beats: u64,
    },
    /// An instruction line was made resident in a cluster.
    LineFetch {
        /// Line base address.
        line: u32,
        /// Whether the scheduling table had prefetched it (§5.1.3).
        prefetched: bool,
    },
    /// A taken control transfer redirected the PC lane.
    BranchRedirect {
        /// Address of the transferring instruction.
        from_pc: u32,
        /// Target address.
        to_pc: u32,
        /// Whether the target is at or before the source (loop branch).
        backward: bool,
    },
    /// A SIMT loop instance was initiated into the pipelined region
    /// (paper §4.4: thread-advance).
    SimtSpawn {
        /// Instance number within the region execution (0-based).
        instance: u64,
        /// Control-register value carried by the instance.
        rc: u32,
    },
    /// A whole SIMT region completed pipelined execution.
    SimtRegion {
        /// Address of the `simt_s` marker.
        pc_s: u32,
        /// Address of the `simt_e` marker.
        pc_e: u32,
        /// Loop instances pipelined through the region.
        instances: u64,
    },
    /// A hardware thread started on this component.
    ThreadStart,
    /// A hardware thread halted (`ecall`).
    ThreadHalt,
    /// A stall interval began. Paired with a [`EventKind::StallEnd`] of
    /// the same cause on the same track.
    StallBegin {
        /// Attributed cause.
        cause: StallCause,
    },
    /// A stall interval ended; `cycle - cycles` is its begin time. The
    /// per-cause sum of `cycles` over a run reconciles exactly with the
    /// run's `StallBreakdown`.
    StallEnd {
        /// Attributed cause.
        cause: StallCause,
        /// Length of the interval in cycles.
        cycles: u64,
    },
}

impl EventKind {
    /// Stable lowercase name used in exported traces.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::PeIssue { .. } => "pe_issue",
            EventKind::PeRetire { .. } => "pe_retire",
            EventKind::LaneWrite { .. } => "lane_write",
            EventKind::LaneForward { .. } => "lane_forward",
            EventKind::SegPush { .. } => "seg_push",
            EventKind::SegPop { .. } => "seg_pop",
            EventKind::SegOccupancy { .. } => "seg_occupancy",
            EventKind::LsuEnqueue { .. } => "lsu_enqueue",
            EventKind::LsuComplete { .. } => "lsu_complete",
            EventKind::CacheAccess { .. } => "cache_access",
            EventKind::BusGrant { .. } => "bus_grant",
            EventKind::LineFetch { .. } => "line_fetch",
            EventKind::BranchRedirect { .. } => "branch_redirect",
            EventKind::SimtSpawn { .. } => "simt_spawn",
            EventKind::SimtRegion { .. } => "simt_region",
            EventKind::ThreadStart => "thread_start",
            EventKind::ThreadHalt => "thread_halt",
            EventKind::StallBegin { .. } => "stall_begin",
            EventKind::StallEnd { .. } => "stall_end",
        }
    }
}

/// One cycle-level trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Cycle the event occurred (machine clock of the emitting model).
    pub cycle: u64,
    /// Hardware thread the event belongs to.
    pub thread: u32,
    /// Component the event occurred on.
    pub track: Track,
    /// Typed payload.
    pub kind: EventKind,
}

impl Event {
    /// Appends the event's canonical JSONL encoding (one compact JSON
    /// object, no trailing newline) to `out`.
    ///
    /// The encoding is byte-deterministic: fixed key order, no floats, no
    /// whitespace — two identical runs of a deterministic machine produce
    /// byte-identical streams.
    pub fn write_jsonl(&self, out: &mut String) {
        use std::fmt::Write;
        let _ = write!(
            out,
            "{{\"c\":{},\"t\":{},\"on\":\"{}\",\"k\":\"{}\"",
            self.cycle,
            self.thread,
            self.track,
            self.kind.name()
        );
        let _ = match self.kind {
            EventKind::PeIssue { pc, reused } => {
                write!(out, ",\"pc\":{pc},\"reused\":{reused}")
            }
            EventKind::PeRetire { pc, start, finish } => {
                write!(out, ",\"pc\":{pc},\"start\":{start},\"finish\":{finish}")
            }
            EventKind::LaneWrite { lane } => write!(out, ",\"lane\":{lane}"),
            EventKind::LaneForward {
                lane,
                from_slot,
                to_slot,
                hops,
            } => write!(
                out,
                ",\"lane\":{lane},\"from\":{from_slot},\"to\":{to_slot},\"hops\":{hops}"
            ),
            EventKind::SegPush { lane, segment } => {
                write!(out, ",\"lane\":{lane},\"seg\":{segment}")
            }
            EventKind::SegPop { lane, segment } => {
                write!(out, ",\"lane\":{lane},\"seg\":{segment}")
            }
            EventKind::SegOccupancy { segment, occupancy } => {
                write!(out, ",\"seg\":{segment},\"occ\":{occupancy}")
            }
            EventKind::LsuEnqueue {
                id,
                write,
                wait,
                occupancy,
            } => write!(
                out,
                ",\"id\":{id},\"write\":{write},\"wait\":{wait},\"occ\":{occupancy}"
            ),
            EventKind::LsuComplete { id } => write!(out, ",\"id\":{id}"),
            EventKind::CacheAccess { level, write, hit } => {
                write!(out, ",\"level\":{level},\"write\":{write},\"hit\":{hit}")
            }
            EventKind::BusGrant { wait, beats } => {
                write!(out, ",\"wait\":{wait},\"beats\":{beats}")
            }
            EventKind::LineFetch { line, prefetched } => {
                write!(out, ",\"line\":{line},\"prefetched\":{prefetched}")
            }
            EventKind::BranchRedirect {
                from_pc,
                to_pc,
                backward,
            } => write!(
                out,
                ",\"from\":{from_pc},\"to\":{to_pc},\"backward\":{backward}"
            ),
            EventKind::SimtSpawn { instance, rc } => {
                write!(out, ",\"instance\":{instance},\"rc\":{rc}")
            }
            EventKind::SimtRegion {
                pc_s,
                pc_e,
                instances,
            } => write!(
                out,
                ",\"pc_s\":{pc_s},\"pc_e\":{pc_e},\"instances\":{instances}"
            ),
            EventKind::ThreadStart | EventKind::ThreadHalt => Ok(()),
            EventKind::StallBegin { cause } => write!(out, ",\"cause\":\"{cause}\""),
            EventKind::StallEnd { cause, cycles } => {
                write!(out, ",\"cause\":\"{cause}\",\"cycles\":{cycles}")
            }
        };
        out.push('}');
    }

    /// The event's canonical JSONL line (without trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(96);
        self.write_jsonl(&mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_round_trip() {
        for cause in StallCause::ALL {
            assert_eq!(StallCause::ALL[cause.index()], cause);
            assert!(!cause.name().is_empty());
        }
    }

    #[test]
    fn track_display_is_stable() {
        assert_eq!(
            Track::Pe {
                cluster: 2,
                slot: 5
            }
            .to_string(),
            "pe:2.5"
        );
        assert_eq!(Track::Lane(31).to_string(), "lane:31");
        assert_eq!(Track::Cache(2).to_string(), "cache:L2");
        assert_eq!(Track::Bus.to_string(), "bus");
        assert_eq!(Track::Control.to_string(), "ctrl");
    }

    #[test]
    fn jsonl_encoding_is_compact_and_typed() {
        let e = Event {
            cycle: 7,
            thread: 1,
            track: Track::Lsu(0),
            kind: EventKind::LsuEnqueue {
                id: 3,
                write: true,
                wait: 0,
                occupancy: 2,
            },
        };
        assert_eq!(
            e.to_jsonl(),
            "{\"c\":7,\"t\":1,\"on\":\"lsu:0\",\"k\":\"lsu_enqueue\",\
             \"id\":3,\"write\":true,\"wait\":0,\"occ\":2}"
        );
    }

    #[test]
    fn every_kind_serializes_to_valid_json() {
        let kinds = [
            EventKind::PeIssue {
                pc: 4,
                reused: true,
            },
            EventKind::PeRetire {
                pc: 4,
                start: 1,
                finish: 2,
            },
            EventKind::LaneWrite { lane: 5 },
            EventKind::LaneForward {
                lane: 5,
                from_slot: 0,
                to_slot: 9,
                hops: 1,
            },
            EventKind::SegPush {
                lane: 1,
                segment: 0,
            },
            EventKind::SegPop {
                lane: 1,
                segment: 1,
            },
            EventKind::SegOccupancy {
                segment: 1,
                occupancy: 2,
            },
            EventKind::LsuEnqueue {
                id: 1,
                write: false,
                wait: 2,
                occupancy: 1,
            },
            EventKind::LsuComplete { id: 1 },
            EventKind::CacheAccess {
                level: 1,
                write: false,
                hit: true,
            },
            EventKind::BusGrant { wait: 1, beats: 2 },
            EventKind::LineFetch {
                line: 64,
                prefetched: false,
            },
            EventKind::BranchRedirect {
                from_pc: 8,
                to_pc: 0,
                backward: true,
            },
            EventKind::SimtSpawn { instance: 0, rc: 0 },
            EventKind::SimtRegion {
                pc_s: 0,
                pc_e: 32,
                instances: 8,
            },
            EventKind::ThreadStart,
            EventKind::ThreadHalt,
            EventKind::StallBegin {
                cause: StallCause::Memory,
            },
            EventKind::StallEnd {
                cause: StallCause::Memory,
                cycles: 4,
            },
        ];
        for kind in kinds {
            let e = Event {
                cycle: 0,
                thread: 0,
                track: Track::Control,
                kind,
            };
            let line = e.to_jsonl();
            crate::json::parse(&line)
                .unwrap_or_else(|err| panic!("{}: {err} in {line}", kind.name()));
        }
    }
}
