//! A minimal dependency-free JSON parser.
//!
//! The workspace bans external crates, but the CI trace smoke job must
//! *validate* the Chrome/Perfetto export it just produced. This module is
//! a small recursive-descent parser covering the full JSON grammar —
//! enough to load a trace back and check it structurally (see
//! [`crate::perfetto::validate_chrome_trace`]). It is a validator, not a
//! performance project: numbers are kept as `f64` and parse depth is
//! bounded to keep malformed input from recursing unboundedly.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth accepted (far beyond any trace we emit).
const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Object keys are kept sorted (`BTreeMap`) so
/// introspection is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Member `key` of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses `input` as a single JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.consume(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs: only decode the common case;
                        // unpaired surrogates become the replacement char.
                        if (0xD800..0xDC00).contains(&cp) {
                            if self.bytes[self.pos..].starts_with(b"\\u") {
                                self.pos += 2;
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                out.push(
                                    char::from_u32(combined).unwrap_or(char::REPLACEMENT_CHARACTER),
                                );
                            } else {
                                out.push(char::REPLACEMENT_CHARACTER);
                            }
                        } else {
                            out.push(char::from_u32(cp).unwrap_or(char::REPLACEMENT_CHARACTER));
                        }
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte-for-byte;
                    // the input is a &str so they are guaranteed valid.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = if b >= 0xF0 {
                            4
                        } else if b >= 0xE0 {
                            3
                        } else {
                            2
                        };
                        let end = (start + len).min(self.bytes.len());
                        out.push_str(std::str::from_utf8(&self.bytes[start..end]).map_err(
                            |_| ParseError {
                                offset: start,
                                message: "invalid utf-8".into(),
                            },
                        )?);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // The scanned slice is ASCII digits/sign/dot/exponent only, but
        // the lint is right that a parser should not be able to panic.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_structures() {
        let v = parse("{\"a\":[1,2,{\"b\":null}],\"c\":\"x\"}").unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Value::Null));
    }

    #[test]
    fn decodes_escapes() {
        let v = parse("\"a\\n\\t\\\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"Aé"));
    }

    #[test]
    fn surrogate_pair() {
        let v = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn utf8_passthrough() {
        let v = parse("\"héllo — 世界\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo — 世界"));
    }
}
