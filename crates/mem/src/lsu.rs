//! Cluster-level load/store unit with a bounded request queue.
//!
//! The paper queues "individual loads and stores … at the level of the
//! processing cluster" (§5.1) and attributes many DiAG stalls to "full LSU
//! request queues" (§7.3.2). [`Lsu`] models a unit that accepts at most one
//! request per cycle (without program-order coupling — the memory lanes
//! "enable access reordering", §5.2) and tracks a bounded window of
//! outstanding accesses; when the window is full the requester must stall
//! (a memory stall).

use diag_trace::{Event, EventKind, Tracer, Track};

use crate::meter::PortMeter;

/// A bounded-occupancy, one-request-per-cycle load/store port.
#[derive(Debug, Clone)]
pub struct Lsu {
    /// Completion times of in-flight requests (unordered).
    outstanding: Vec<u64>,
    /// Maximum in-flight requests.
    depth: usize,
    /// One acceptance per cycle, grantable out of order.
    port: PortMeter,
    /// Total accepted requests.
    accepted: u64,
    /// Requests rejected because the queue was full.
    rejections: u64,
}

impl Lsu {
    /// Creates an LSU with the given outstanding-request window.
    pub fn new(depth: usize) -> Lsu {
        Lsu {
            outstanding: Vec::with_capacity(depth),
            depth,
            port: PortMeter::new(1),
            accepted: 0,
            rejections: 0,
        }
    }

    /// Retires completed requests as of cycle `now`.
    fn drain(&mut self, now: u64) {
        self.outstanding.retain(|&t| t > now);
    }

    /// Attempts to accept a request at cycle `now`. Returns the cycle at
    /// which the request is handed to the cache (after port arbitration),
    /// or `None` when the queue is full — the caller must retry later and
    /// record a memory stall.
    pub fn try_issue(&mut self, now: u64) -> Option<u64> {
        self.drain(now);
        if self.outstanding.len() >= self.depth {
            self.rejections += 1;
            return None;
        }
        let start = self.port.next(now);
        self.accepted += 1;
        Some(start)
    }

    /// Completion time of the oldest outstanding request, if any — the
    /// earliest moment a full queue frees a slot.
    pub fn front_completion(&self) -> Option<u64> {
        self.outstanding.iter().copied().min()
    }

    /// Accepts a request at the earliest feasible time at or after `now`,
    /// waiting for queue room if necessary. Returns `(start, waited)` where
    /// `waited` is the stall caused by a full queue (a memory stall in the
    /// paper's taxonomy, §7.3.2).
    pub fn issue_blocking(&mut self, now: u64) -> (u64, u64) {
        let mut t = now;
        loop {
            match self.try_issue(t) {
                Some(start) => return (start, start.saturating_sub(now)),
                None => {
                    let free_at = self
                        .front_completion()
                        .expect("full queue has a front")
                        .max(t + 1);
                    t = free_at;
                }
            }
        }
    }

    /// [`Lsu::issue_blocking`] with trace instrumentation: emits an
    /// [`EventKind::LsuEnqueue`] on `tracer` (an async-begin in the
    /// Perfetto export) and returns `(start, waited, id)` where `id` is
    /// the per-LSU request serial number pairing the enqueue with its
    /// [`Lsu::complete_at_traced`]. With a disabled tracer this is
    /// exactly `issue_blocking`.
    pub fn issue_blocking_traced(
        &mut self,
        now: u64,
        write: bool,
        tracer: &Tracer,
        thread: u32,
        unit: u32,
    ) -> (u64, u64, u64) {
        let (start, waited) = self.issue_blocking(now);
        let id = self.accepted - 1;
        tracer.emit(|| Event {
            cycle: start,
            thread,
            track: Track::Lsu(unit),
            kind: EventKind::LsuEnqueue {
                id,
                write,
                wait: waited,
                // This request occupies a slot from `start`; it is pushed
                // into `outstanding` by the matching complete call.
                occupancy: self.outstanding.len() as u32 + 1,
            },
        });
        (start, waited, id)
    }

    /// Records the completion time of the most recently issued request so
    /// the occupancy window reflects it.
    pub fn complete_at(&mut self, ready_at: u64) {
        self.outstanding.push(ready_at);
    }

    /// [`Lsu::complete_at`] with trace instrumentation: emits the
    /// [`EventKind::LsuComplete`] closing request `id` (the async-end in
    /// the Perfetto export).
    pub fn complete_at_traced(
        &mut self,
        ready_at: u64,
        id: u64,
        tracer: &Tracer,
        thread: u32,
        unit: u32,
    ) {
        self.complete_at(ready_at);
        tracer.emit(|| Event {
            cycle: ready_at,
            thread,
            track: Track::Lsu(unit),
            kind: EventKind::LsuComplete { id },
        });
    }

    /// Number of requests currently in flight as of `now`.
    pub fn in_flight(&mut self, now: u64) -> usize {
        self.drain(now);
        self.outstanding.len()
    }

    /// Whether the queue has room at `now` without consuming the port.
    pub fn has_room(&mut self, now: u64) -> bool {
        self.drain(now);
        self.outstanding.len() < self.depth
    }

    /// Total requests accepted.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Total requests rejected due to a full queue.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Resets port and queue state (on cluster free), keeping statistics.
    pub fn reset(&mut self) {
        self.outstanding.clear();
        self.port.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_request_per_cycle() {
        let mut lsu = Lsu::new(4);
        let a = lsu.try_issue(10).unwrap();
        lsu.complete_at(a + 3);
        let b = lsu.try_issue(10).unwrap();
        lsu.complete_at(b + 3);
        assert_eq!(a, 10);
        assert_eq!(b, 11);
    }

    #[test]
    fn port_grants_out_of_order() {
        let mut lsu = Lsu::new(8);
        let late = lsu.try_issue(100).unwrap();
        lsu.complete_at(late + 1);
        // An independent request at an earlier time is not delayed.
        let early = lsu.try_issue(5).unwrap();
        assert_eq!(early, 5);
        lsu.complete_at(early + 1);
    }

    #[test]
    fn full_queue_rejects() {
        let mut lsu = Lsu::new(2);
        for _ in 0..2 {
            let t = lsu.try_issue(0).unwrap();
            lsu.complete_at(t + 100);
        }
        assert_eq!(lsu.try_issue(5), None);
        assert_eq!(lsu.rejections(), 1);
        // After completions drain, requests are accepted again.
        assert!(lsu.try_issue(200).is_some());
    }

    #[test]
    fn issue_blocking_waits_for_room() {
        let mut lsu = Lsu::new(1);
        let t = lsu.try_issue(0).unwrap();
        lsu.complete_at(t + 50);
        let (start, waited) = lsu.issue_blocking(10);
        assert_eq!(start, 50);
        assert_eq!(waited, 40);
        // Uncontended issue waits zero.
        lsu.complete_at(start + 1);
        let (s2, w2) = lsu.issue_blocking(100);
        assert_eq!(s2, 100);
        assert_eq!(w2, 0);
    }

    #[test]
    fn occupancy_tracking() {
        let mut lsu = Lsu::new(4);
        let a = lsu.try_issue(0).unwrap();
        lsu.complete_at(a + 100);
        let b = lsu.try_issue(0).unwrap();
        lsu.complete_at(b + 2);
        assert_eq!(lsu.in_flight(1), 2);
        assert_eq!(lsu.in_flight(10), 1);
        assert_eq!(lsu.in_flight(200), 0);
    }

    #[test]
    fn has_room_does_not_consume_port() {
        let mut lsu = Lsu::new(1);
        assert!(lsu.has_room(0));
        assert!(lsu.has_room(0));
        let t = lsu.try_issue(0).unwrap();
        lsu.complete_at(t + 10);
        assert!(!lsu.has_room(5));
    }

    #[test]
    fn traced_wrappers_match_plain_and_emit_pairs() {
        use diag_trace::VecSink;

        let sink = VecSink::shared();
        let tracer = Tracer::to_shared(sink.clone());
        let mut lsu = Lsu::new(1);
        let (s, w, id) = lsu.issue_blocking_traced(0, false, &tracer, 0, 3);
        assert_eq!((s, w, id), (0, 0, 0));
        lsu.complete_at_traced(s + 10, id, &tracer, 0, 3);
        // Queue of depth 1 is full until cycle 10: the traced path must
        // report the same wait as the plain one.
        let mut plain = Lsu::new(1);
        let (ps, _) = plain.issue_blocking(0);
        plain.complete_at(ps + 10);
        let (s2, w2, id2) = lsu.issue_blocking_traced(1, true, &tracer, 0, 3);
        assert_eq!((s2, w2), plain.issue_blocking(1));
        assert_eq!(id2, 1);

        let events = sink.borrow().events().to_vec();
        assert_eq!(events.len(), 3);
        assert!(matches!(
            events[0].kind,
            EventKind::LsuEnqueue {
                id: 0,
                write: false,
                wait: 0,
                occupancy: 1,
            }
        ));
        assert_eq!(events[0].track, Track::Lsu(3));
        assert!(matches!(events[1].kind, EventKind::LsuComplete { id: 0 }));
        assert!(matches!(
            events[2].kind,
            EventKind::LsuEnqueue {
                id: 1,
                write: true,
                ..
            }
        ));
    }

    #[test]
    fn reset_clears_in_flight() {
        let mut lsu = Lsu::new(1);
        let t = lsu.try_issue(0).unwrap();
        lsu.complete_at(t + 1000);
        lsu.reset();
        assert!(lsu.has_room(1));
        assert_eq!(lsu.accepted(), 1);
    }
}
