//! Sparse byte-addressable main memory (functional storage).
//!
//! All machine models store architectural memory state here; the cache
//! structures in this crate are *timing-only* (tags and replacement state,
//! no data arrays), mirroring how the paper's RTL testbench modelled caches
//! "only … functionally with delays" (§7.1).

use diag_asm::Program;

use crate::fxmap::FxHashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Sparse paged main memory.
///
/// Reads of never-written locations return zero, the bare-metal convention
/// used by all workloads.
///
/// # Examples
///
/// ```
/// use diag_mem::MainMemory;
///
/// let mut mem = MainMemory::new();
/// mem.write_u32(0x1000, 0xDEAD_BEEF);
/// assert_eq!(mem.read_u32(0x1000), 0xDEAD_BEEF);
/// assert_eq!(mem.read_u8(0x1001), 0xBE);
/// assert_eq!(mem.read_u32(0x9999_0000), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MainMemory {
    pages: FxHashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl MainMemory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> MainMemory {
        MainMemory::default()
    }

    /// Creates a memory pre-loaded with a program's text and data segments.
    pub fn with_program(program: &Program) -> MainMemory {
        let mut mem = MainMemory::new();
        mem.load_program(program);
        mem
    }

    /// Loads a program image (text and data segments).
    pub fn load_program(&mut self, program: &Program) {
        let mut addr = program.text_base();
        for &word in program.text() {
            self.write_u32(addr, word);
            addr += 4;
        }
        for (i, &byte) in program.data().iter().enumerate() {
            self.write_u8(program.data_base() + i as u32, byte);
        }
    }

    fn page(&self, addr: u32) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_SHIFT)).map(|p| &**p)
    }

    fn page_mut(&mut self, addr: u32) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        let offset = (addr as usize) & (PAGE_SIZE - 1);
        self.page_mut(addr)[offset] = value;
    }

    /// Reads a little-endian u16 (no alignment requirement; the machines
    /// enforce alignment architecturally).
    pub fn read_u16(&self, addr: u32) -> u16 {
        let offset = (addr as usize) & (PAGE_SIZE - 1);
        if offset + 2 <= PAGE_SIZE {
            // Whole halfword on one page: a single lookup.
            return match self.page(addr) {
                Some(p) => u16::from_le_bytes([p[offset], p[offset + 1]]),
                None => 0,
            };
        }
        u16::from_le_bytes([self.read_u8(addr), self.read_u8(addr.wrapping_add(1))])
    }

    /// Writes a little-endian u16.
    pub fn write_u16(&mut self, addr: u32, value: u16) {
        let [b0, b1] = value.to_le_bytes();
        self.write_u8(addr, b0);
        self.write_u8(addr.wrapping_add(1), b1);
    }

    /// Reads a little-endian u32.
    #[inline]
    pub fn read_u32(&self, addr: u32) -> u32 {
        let offset = (addr as usize) & (PAGE_SIZE - 1);
        if offset + 4 <= PAGE_SIZE {
            // Whole word on one page: a single lookup instead of four.
            return match self.page(addr) {
                Some(p) => {
                    u32::from_le_bytes([p[offset], p[offset + 1], p[offset + 2], p[offset + 3]])
                }
                None => 0,
            };
        }
        u32::from_le_bytes([
            self.read_u8(addr),
            self.read_u8(addr.wrapping_add(1)),
            self.read_u8(addr.wrapping_add(2)),
            self.read_u8(addr.wrapping_add(3)),
        ])
    }

    /// Writes a little-endian u32.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        let offset = (addr as usize) & (PAGE_SIZE - 1);
        if offset + 4 <= PAGE_SIZE {
            self.page_mut(addr)[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
            return;
        }
        for (i, b) in value.to_le_bytes().into_iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), b);
        }
    }

    /// Reads `size` bytes (1, 2, or 4) as a zero-extended u32.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not 1, 2, or 4.
    #[inline]
    pub fn read(&self, addr: u32, size: u32) -> u32 {
        match size {
            1 => self.read_u8(addr) as u32,
            2 => self.read_u16(addr) as u32,
            4 => self.read_u32(addr),
            _ => panic!("unsupported access size {size}"),
        }
    }

    /// Writes the low `size` bytes (1, 2, or 4) of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not 1, 2, or 4.
    pub fn write(&mut self, addr: u32, size: u32, value: u32) {
        match size {
            1 => self.write_u8(addr, value as u8),
            2 => self.write_u16(addr, value as u16),
            4 => self.write_u32(addr, value),
            _ => panic!("unsupported access size {size}"),
        }
    }

    /// Number of touched pages (for memory-footprint assertions in tests).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let mem = MainMemory::new();
        assert_eq!(mem.read_u32(0), 0);
        assert_eq!(mem.read_u8(u32::MAX), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn byte_halfword_word_round_trip() {
        let mut mem = MainMemory::new();
        mem.write_u8(5, 0xAB);
        assert_eq!(mem.read_u8(5), 0xAB);
        mem.write_u16(100, 0xBEEF);
        assert_eq!(mem.read_u16(100), 0xBEEF);
        mem.write_u32(200, 0x1234_5678);
        assert_eq!(mem.read_u32(200), 0x1234_5678);
        assert_eq!(mem.read_u8(200), 0x78); // little-endian
        assert_eq!(mem.read_u8(203), 0x12);
    }

    #[test]
    fn cross_page_word() {
        let mut mem = MainMemory::new();
        let addr = PAGE_SIZE as u32 - 2;
        mem.write_u32(addr, 0xAABB_CCDD);
        assert_eq!(mem.read_u32(addr), 0xAABB_CCDD);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn sized_access() {
        let mut mem = MainMemory::new();
        mem.write(8, 4, 0x0102_0304);
        assert_eq!(mem.read(8, 1), 4);
        assert_eq!(mem.read(8, 2), 0x0304);
        assert_eq!(mem.read(8, 4), 0x0102_0304);
        mem.write(8, 1, 0xFF);
        assert_eq!(mem.read(8, 4), 0x0102_03FF);
    }

    #[test]
    fn program_loading() {
        use diag_asm::assemble;
        let p = assemble(".data\nv:\n.word 99\n.text\nnop\necall\n").unwrap();
        let mem = MainMemory::with_program(&p);
        assert_eq!(mem.read_u32(p.text_base()), p.text()[0]);
        assert_eq!(mem.read_u32(p.symbol("v").unwrap()), 99);
    }

    #[test]
    #[should_panic(expected = "unsupported access size")]
    fn invalid_size_panics() {
        MainMemory::new().read(0, 3);
    }
}
