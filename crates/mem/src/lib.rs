//! # diag-mem — memory subsystem for the DiAG reproduction
//!
//! Implements the paper's memory hierarchy (§5.2): main memory (functional
//! storage), timing-only set-associative caches with banked contention
//! ([`CacheArray`], [`PrivateCache`], [`SharedLevel`]), cluster-level
//! load/store units with bounded request queues ([`Lsu`]), DiAG's *memory
//! lanes* store-forwarding structure ([`MemLane`]), and the shared on-chip
//! 512-bit bus ([`Bus`]).
//!
//! All timing structures are data-free: architectural memory state lives
//! exclusively in [`MainMemory`], mirroring the paper's
//! functional-with-delays testbench modelling (§7.1).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bus;
mod cache;
pub mod fxmap;
mod hierarchy;
mod lsu;
mod main_memory;
mod memlane;
mod meter;

pub use bus::{Bus, ILINE_BEATS, REGFILE_BEATS};
pub use cache::{CacheArray, CacheConfig, CacheStats, LookupResult};
pub use fxmap::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use hierarchy::{MemOutcome, PrivateCache, SharedLevel, DRAM_LATENCY};
pub use lsu::Lsu;
pub use main_memory::MainMemory;
pub use memlane::{LaneLookup, MemLane};
pub use meter::PortMeter;
