//! Per-cycle capacity metering without program-order coupling.

use std::collections::HashMap;

/// Grants at most `width` events per cycle, in any time order — a stalled
/// old request must not delay an independent young one (out-of-order
/// issue ports, LSU ports, cache ports).
#[derive(Debug, Clone)]
pub struct PortMeter {
    width: u8,
    counts: HashMap<u64, u8>,
    horizon: u64,
    granted: u64,
}

impl PortMeter {
    /// Creates a meter of `width` grants per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 255.
    pub fn new(width: usize) -> PortMeter {
        assert!((1..=255).contains(&width), "port width out of range");
        PortMeter {
            width: width as u8,
            counts: HashMap::new(),
            horizon: 0,
            granted: 0,
        }
    }

    /// Reserves a slot at the earliest cycle ≥ `at` with spare capacity.
    pub fn next(&mut self, at: u64) -> u64 {
        let mut t = at.max(self.horizon);
        loop {
            let c = self.counts.entry(t).or_insert(0);
            if *c < self.width {
                *c += 1;
                self.granted += 1;
                if self.granted.is_multiple_of(8192) && self.counts.len() > 16384 {
                    // Bound bookkeeping: nothing will be requested far in
                    // the past once the machine has advanced.
                    let floor = t.saturating_sub(8192);
                    self.counts.retain(|&k, _| k >= floor);
                }
                return t;
            }
            t += 1;
        }
    }

    /// Raises the lower bound for future grants and drops old bookkeeping.
    pub fn prune_before(&mut self, time: u64) {
        if time > self.horizon {
            self.horizon = time;
            self.counts.retain(|&t, _| t >= time);
        }
    }

    /// Total grants made.
    pub fn granted(&self) -> u64 {
        self.granted
    }

    /// Resets timing state, keeping statistics.
    pub fn reset(&mut self) {
        self.counts.clear();
        self.horizon = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_order_grants() {
        let mut m = PortMeter::new(2);
        assert_eq!(m.next(100), 100);
        assert_eq!(m.next(5), 5);
        assert_eq!(m.next(5), 5);
        assert_eq!(m.next(5), 6);
        assert_eq!(m.next(100), 100);
        assert_eq!(m.next(100), 101);
        assert_eq!(m.granted(), 6);
    }

    #[test]
    fn width_one_serializes_same_cycle() {
        let mut m = PortMeter::new(1);
        assert_eq!(m.next(7), 7);
        assert_eq!(m.next(7), 8);
        assert_eq!(m.next(7), 9);
    }

    #[test]
    fn prune_raises_floor() {
        let mut m = PortMeter::new(1);
        m.next(0);
        m.prune_before(50);
        assert_eq!(m.next(0), 50);
    }

    #[test]
    #[should_panic(expected = "port width")]
    fn zero_width_rejected() {
        let _ = PortMeter::new(0);
    }
}
