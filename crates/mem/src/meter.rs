//! Per-cycle capacity metering without program-order coupling.

/// Cycles of bookkeeping kept live at once. Matches the retention bound
/// of the original hash-map implementation: requests are effectively
/// monotone within a window this large, and grants for cycles that have
/// fallen out of the window behave as if the cycle were empty (exactly
/// what pruning the old map did).
const WINDOW: usize = 1 << 14;

/// Grants at most `width` events per cycle, in any time order — a stalled
/// old request must not delay an independent young one (out-of-order
/// issue ports, LSU ports, cache ports).
///
/// Implemented as a circular per-cycle count window rather than a map
/// keyed by cycle: `next` on the hot path is an array index, never a
/// hash or a heap allocation.
#[derive(Debug, Clone)]
pub struct PortMeter {
    width: u8,
    /// Per-cycle grant counts for cycles `[base, base + WINDOW)`; the
    /// slot of cycle `t` is `t % WINDOW`.
    counts: Box<[u8]>,
    base: u64,
    horizon: u64,
    granted: u64,
}

impl PortMeter {
    /// Creates a meter of `width` grants per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 255.
    pub fn new(width: usize) -> PortMeter {
        assert!((1..=255).contains(&width), "port width out of range");
        PortMeter {
            width: width as u8,
            counts: vec![0u8; WINDOW].into_boxed_slice(),
            base: 0,
            horizon: 0,
            granted: 0,
        }
    }

    /// Slides the window forward so cycle `t` is addressable, zeroing the
    /// slots whose cycles fall out of the past edge.
    fn cover(&mut self, t: u64) {
        let limit = self.base + WINDOW as u64;
        if t < limit {
            return;
        }
        let new_base = t + 1 - WINDOW as u64;
        if new_base - self.base >= WINDOW as u64 {
            self.counts.fill(0);
        } else {
            for old in self.base..new_base {
                self.counts[(old % WINDOW as u64) as usize] = 0;
            }
        }
        self.base = new_base;
    }

    /// Reserves a slot at the earliest cycle ≥ `at` with spare capacity.
    #[inline]
    pub fn next(&mut self, at: u64) -> u64 {
        let mut t = at.max(self.horizon);
        self.granted += 1;
        if t < self.base {
            // The cycle has aged out of the window; its bookkeeping is
            // gone, so the grant is free (same as the pruned map).
            return t;
        }
        loop {
            self.cover(t);
            let slot = &mut self.counts[(t % WINDOW as u64) as usize];
            if *slot < self.width {
                *slot += 1;
                return t;
            }
            t += 1;
        }
    }

    /// Raises the lower bound for future grants and drops old bookkeeping.
    pub fn prune_before(&mut self, time: u64) {
        if time > self.horizon {
            self.horizon = time;
        }
    }

    /// Total grants made.
    pub fn granted(&self) -> u64 {
        self.granted
    }

    /// Resets timing state, keeping statistics.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.base = 0;
        self.horizon = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_order_grants() {
        let mut m = PortMeter::new(2);
        assert_eq!(m.next(100), 100);
        assert_eq!(m.next(5), 5);
        assert_eq!(m.next(5), 5);
        assert_eq!(m.next(5), 6);
        assert_eq!(m.next(100), 100);
        assert_eq!(m.next(100), 101);
        assert_eq!(m.granted(), 6);
    }

    #[test]
    fn width_one_serializes_same_cycle() {
        let mut m = PortMeter::new(1);
        assert_eq!(m.next(7), 7);
        assert_eq!(m.next(7), 8);
        assert_eq!(m.next(7), 9);
    }

    #[test]
    fn prune_raises_floor() {
        let mut m = PortMeter::new(1);
        m.next(0);
        m.prune_before(50);
        assert_eq!(m.next(0), 50);
    }

    #[test]
    fn window_slide_keeps_capacity_exact() {
        let mut m = PortMeter::new(1);
        // Fill a cycle far ahead, then come back inside the live window:
        // per-cycle counts are exact there.
        assert_eq!(m.next(1_000_000), 1_000_000);
        assert_eq!(m.next(1_000_000), 1_000_001);
        let t = 1_000_000 + 100;
        assert_eq!(m.next(t), t);
        assert_eq!(m.next(t), t + 1);
    }

    #[test]
    fn requests_behind_the_window_still_grant() {
        let mut m = PortMeter::new(1);
        assert_eq!(m.next(10_000_000), 10_000_000);
        // Bookkeeping for the distant past is gone; the grant costs
        // nothing (the old map pruned those entries the same way).
        assert_eq!(m.next(3), 3);
    }

    #[test]
    #[should_panic(expected = "port width")]
    fn zero_width_rejected() {
        let _ = PortMeter::new(0);
    }
}
