//! A fast, deterministic hash for small integer keys.
//!
//! The simulators key several per-step lookups by small integers — page
//! numbers, line addresses, region entry PCs. The standard library's
//! default SipHash is DoS-resistant but costs tens of cycles per lookup,
//! which is real money at a few hundred host-nanoseconds per simulated
//! instruction. This multiply-rotate hash (the Firefox/rustc "Fx"
//! construction) hashes a word in a couple of cycles, is fully
//! deterministic (no per-process random seed, so runs are reproducible),
//! and is plenty for trusted keys derived from simulated addresses.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant of the Fx construction (a 64-bit truncation
/// of the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx word-at-a-time hasher.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// Builds [`FxHasher`]s (stateless, so hashes are reproducible across
/// runs and processes).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the Fx hash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the Fx hash.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(i * 4096, i);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i * 4096)), Some(&i));
        }
        assert!(!m.contains_key(&1));
    }

    #[test]
    fn deterministic_across_hashers() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u32(0xdead_beef);
        b.write_u32(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0);
    }
}
