//! The shared on-chip 512-bit bus.
//!
//! Paper §5.1.3: "An on-chip 512-bit bus is present to transport partial
//! register files from clusters that are not directly connected (in two
//! cycles) … this bus is also shared for loading I-Cache lines to
//! clusters." Contention on this bus is one of the paper's "other stalls"
//! (§7.3.2).

use diag_trace::{Event, EventKind, Tracer, Track};

/// A single-owner bus granting transfers in request order.
#[derive(Debug, Clone, Default)]
pub struct Bus {
    busy_until: u64,
    transfers: u64,
    beats: u64,
    contended: u64,
}

/// Beats for one 64-byte I-cache line (512 bits = 1 beat).
pub const ILINE_BEATS: u64 = 1;
/// Beats for a partial register-file transfer (paper: two cycles).
pub const REGFILE_BEATS: u64 = 2;

impl Bus {
    /// Creates an idle bus.
    pub fn new() -> Bus {
        Bus::default()
    }

    /// Requests the bus at `now` for `beats` cycles; returns the cycle the
    /// transfer starts (equal to `now` when uncontended).
    pub fn request(&mut self, now: u64, beats: u64) -> u64 {
        let start = now.max(self.busy_until);
        if start > now {
            self.contended += 1;
        }
        self.busy_until = start + beats;
        self.transfers += 1;
        self.beats += beats;
        start
    }

    /// [`Bus::request`] with trace instrumentation: emits a
    /// [`EventKind::BusGrant`] on `tracer` at the grant cycle, carrying
    /// the arbitration wait. With a disabled tracer this is exactly
    /// `request`.
    pub fn request_traced(&mut self, now: u64, beats: u64, tracer: &Tracer, thread: u32) -> u64 {
        let start = self.request(now, beats);
        tracer.emit(|| Event {
            cycle: start,
            thread,
            track: Track::Bus,
            kind: EventKind::BusGrant {
                wait: start - now,
                beats,
            },
        });
        start
    }

    /// Whether the bus is free at `now`.
    pub fn is_free(&self, now: u64) -> bool {
        now >= self.busy_until
    }

    /// Total transfers granted.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total beats transferred (for bus energy accounting).
    pub fn beats(&self) -> u64 {
        self.beats
    }

    /// Transfers that had to wait for a previous owner.
    pub fn contended(&self) -> u64 {
        self.contended
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_grants_immediately() {
        let mut bus = Bus::new();
        assert_eq!(bus.request(5, ILINE_BEATS), 5);
        assert!(bus.is_free(6));
        assert_eq!(bus.contended(), 0);
    }

    #[test]
    fn back_to_back_serializes() {
        let mut bus = Bus::new();
        assert_eq!(bus.request(0, REGFILE_BEATS), 0);
        assert_eq!(bus.request(0, ILINE_BEATS), 2);
        assert_eq!(bus.request(1, ILINE_BEATS), 3);
        assert_eq!(bus.contended(), 2);
        assert_eq!(bus.beats(), 4);
        assert_eq!(bus.transfers(), 3);
    }

    #[test]
    fn traced_request_matches_plain_and_emits_grant() {
        use diag_trace::VecSink;

        let sink = VecSink::shared();
        let tracer = Tracer::to_shared(sink.clone());
        let mut bus = Bus::new();
        assert_eq!(bus.request_traced(0, REGFILE_BEATS, &tracer, 0), 0);
        assert_eq!(bus.request_traced(1, ILINE_BEATS, &tracer, 1), 2);
        let events = sink.borrow().events().to_vec();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].track, Track::Bus);
        assert!(matches!(
            events[1].kind,
            EventKind::BusGrant { wait: 1, beats: 1 }
        ));
        assert_eq!(events[1].cycle, 2);

        let mut plain = Bus::new();
        plain.request(0, REGFILE_BEATS);
        assert_eq!(plain.request(1, ILINE_BEATS), 2);
        assert_eq!(plain.beats(), bus.beats());
    }

    #[test]
    fn idle_gap_resets_contention() {
        let mut bus = Bus::new();
        bus.request(0, REGFILE_BEATS);
        assert_eq!(bus.request(100, ILINE_BEATS), 100);
        assert_eq!(bus.contended(), 0);
    }
}
