//! Timing-only set-associative cache arrays.
//!
//! A [`CacheArray`] holds tags, LRU state, and dirty bits — no data. The
//! functional value of every location lives in
//! [`MainMemory`](crate::MainMemory); caches determine *when* an access
//! completes, matching the paper's functional-with-delays cache modelling
//! (§7.1).

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Line size in bytes (the paper uses 64-byte lines throughout).
    pub line_bytes: u32,
    /// Associativity (1 = direct mapped).
    pub ways: u32,
    /// Access latency in cycles on a hit.
    pub hit_latency: u32,
    /// Number of independently-addressed banks (paper §5.2: banked L1
    /// D-cache with an arbiter for processing-cluster requests).
    pub banks: u32,
}

impl CacheConfig {
    /// A direct-mapped 32 KiB instruction cache with 64-byte lines
    /// (paper §5.1.1 and Table 2).
    pub fn l1i_32k() -> CacheConfig {
        CacheConfig {
            size_bytes: 32 << 10,
            line_bytes: 64,
            ways: 1,
            hit_latency: 1,
            banks: 1,
        }
    }

    /// A banked L1 data cache of the given capacity (paper: 32–128 KiB
    /// depending on configuration, Table 2).
    pub fn l1d(size_kib: u32) -> CacheConfig {
        CacheConfig {
            size_bytes: size_kib << 10,
            line_bytes: 64,
            ways: 4,
            hit_latency: 3,
            banks: 8,
        }
    }

    /// A unified L2 of the given capacity (paper: 4 MiB, Table 2).
    pub fn l2(size_mib: u32) -> CacheConfig {
        CacheConfig {
            size_bytes: size_mib << 20,
            line_bytes: 64,
            ways: 8,
            hit_latency: 18,
            banks: 8,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.size_bytes / (self.line_bytes * self.ways)
    }
}

/// Hit/miss statistics for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Dirty evictions (write-back traffic).
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss rate in [0, 1]; zero when no accesses happened.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u32,
    valid: bool,
    dirty: bool,
    /// Larger = more recently used.
    lru: u64,
}

/// A set-associative, LRU, write-back (timing-only) cache array.
#[derive(Debug, Clone)]
pub struct CacheArray {
    config: CacheConfig,
    lines: Vec<Line>,
    tick: u64,
    stats: CacheStats,
}

/// Result of a cache lookup-and-fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupResult {
    /// Whether the line was present.
    pub hit: bool,
    /// Whether a dirty line was evicted to make room (miss only).
    pub writeback: bool,
}

impl CacheArray {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets or ways, or a
    /// non-power-of-two line size).
    pub fn new(config: CacheConfig) -> CacheArray {
        assert!(config.ways > 0, "cache must have at least one way");
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let sets = config.sets();
        assert!(sets > 0, "cache must have at least one set");
        CacheArray {
            config,
            lines: vec![Line::default(); (sets * config.ways) as usize],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn index_of(&self, addr: u32) -> (u32, u32) {
        let line_addr = addr / self.config.line_bytes;
        let set = line_addr % self.config.sets();
        let tag = line_addr / self.config.sets();
        (set, tag)
    }

    /// The bank an address maps to.
    pub fn bank_of(&self, addr: u32) -> u32 {
        (addr / self.config.line_bytes) % self.config.banks
    }

    /// Looks up `addr`; on a miss, fills the line (evicting LRU). `write`
    /// marks the line dirty. Returns whether it hit and whether a dirty
    /// eviction occurred.
    #[inline]
    pub fn access(&mut self, addr: u32, write: bool) -> LookupResult {
        self.tick += 1;
        self.stats.accesses += 1;
        let (set, tag) = self.index_of(addr);
        let base = (set * self.config.ways) as usize;
        let ways = self.config.ways as usize;
        // Hit path.
        for way in 0..ways {
            let line = &mut self.lines[base + way];
            if line.valid && line.tag == tag {
                line.lru = self.tick;
                line.dirty |= write;
                self.stats.hits += 1;
                return LookupResult {
                    hit: true,
                    writeback: false,
                };
            }
        }
        // Miss: fill the LRU way.
        self.stats.misses += 1;
        let victim = (0..ways)
            .min_by_key(|&w| {
                let l = &self.lines[base + w];
                if l.valid {
                    l.lru + 1
                } else {
                    0 // invalid lines are always preferred victims
                }
            })
            .expect("ways > 0");
        let line = &mut self.lines[base + victim];
        let writeback = line.valid && line.dirty;
        if writeback {
            self.stats.writebacks += 1;
        }
        *line = Line {
            tag,
            valid: true,
            dirty: write,
            lru: self.tick,
        };
        LookupResult {
            hit: false,
            writeback,
        }
    }

    /// Whether `addr`'s line is currently resident (no state change).
    pub fn probe(&self, addr: u32) -> bool {
        let (set, tag) = self.index_of(addr);
        let base = (set * self.config.ways) as usize;
        (0..self.config.ways as usize)
            .any(|w| self.lines[base + w].valid && self.lines[base + w].tag == tag)
    }

    /// Invalidates the whole cache (keeps statistics).
    pub fn flush(&mut self) {
        for line in &mut self.lines {
            *line = Line::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheArray {
        // 2 sets, 2 ways, 16-byte lines = 64 bytes.
        CacheArray::new(CacheConfig {
            size_bytes: 64,
            line_bytes: 16,
            ways: 2,
            hit_latency: 1,
            banks: 2,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x100, false).hit);
        assert!(c.access(0x10C, false).hit); // same line
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn lru_replacement() {
        let mut c = tiny();
        // Three lines mapping to set 0 (line addr even): 0x00, 0x40, 0x80.
        c.access(0x00, false);
        c.access(0x40, false);
        c.access(0x00, false); // touch 0x00, making 0x40 LRU
        c.access(0x80, false); // evicts 0x40
        assert!(c.probe(0x00));
        assert!(!c.probe(0x40));
        assert!(c.probe(0x80));
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = tiny();
        c.access(0x00, true); // dirty
        c.access(0x40, false);
        c.access(0x80, false); // evicts dirty 0x00
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0x00, false);
        c.access(0x00, true); // now dirty via hit
        c.access(0x40, false);
        c.access(0x80, false); // evicts 0x00 → writeback
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn sets_and_banks() {
        let cfg = CacheConfig::l1d(64);
        assert_eq!(cfg.sets(), 64 * 1024 / (64 * 4));
        let c = CacheArray::new(cfg);
        assert_eq!(c.bank_of(0), 0);
        assert_eq!(c.bank_of(64), 1);
        assert_eq!(c.bank_of(64 * 8), 0);
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = CacheArray::new(CacheConfig {
            size_bytes: 32,
            line_bytes: 16,
            ways: 1,
            hit_latency: 1,
            banks: 1,
        });
        // Two lines mapping to the same set ping-pong.
        assert!(!c.access(0x00, false).hit);
        assert!(!c.access(0x20, false).hit);
        assert!(!c.access(0x00, false).hit);
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = tiny();
        c.access(0x00, false);
        assert!(c.probe(0x00));
        c.flush();
        assert!(!c.probe(0x00));
    }

    #[test]
    fn miss_rate() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, false);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_rejected() {
        let _ = CacheArray::new(CacheConfig {
            size_bytes: 64,
            line_bytes: 16,
            ways: 0,
            hit_latency: 1,
            banks: 1,
        });
    }
}
