//! Two-level cache hierarchy timing with banked contention.
//!
//! The paper's memory subsystem (§5.2) routes cluster-level requests
//! through a banked L1 D-cache (with an arbiter) backed by a large unified
//! L2. [`SharedLevel`] models the L2 + DRAM; [`PrivateCache`] models one
//! L1 front-end (per DiAG dataflow ring, or per baseline core). All state
//! is timing-only; data lives in [`crate::MainMemory`].

use std::cell::RefCell;
use std::rc::Rc;

use diag_trace::{Event, EventKind, Tracer, Track};

use crate::cache::{CacheArray, CacheConfig, CacheStats};
use crate::meter::PortMeter;

/// An out-of-order pool of units each occupied for a fixed time per grant
/// (DRAM channels). A request at a late time never delays an independent
/// earlier request.
#[derive(Debug, Clone)]
struct OccupancyPool {
    next_free: Vec<u64>,
}

impl OccupancyPool {
    fn new(units: usize) -> OccupancyPool {
        OccupancyPool {
            next_free: vec![0; units],
        }
    }

    fn issue(&mut self, ready: u64, occupancy: u64) -> u64 {
        let idx = self
            .next_free
            .iter()
            .position(|&t| t <= ready)
            .unwrap_or_else(|| {
                self.next_free
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &t)| t)
                    .map(|(i, _)| i)
                    .expect("pool non-empty")
            });
        let start = ready.max(self.next_free[idx]);
        self.next_free[idx] = start + occupancy;
        start
    }
}

/// DRAM access latency in cycles used when the L2 misses (at the paper's
/// 2 GHz simulation clock; ~50 ns).
pub const DRAM_LATENCY: u32 = 100;
/// Cycles a DRAM channel stays occupied per line transfer.
const DRAM_OCCUPANCY: u64 = 8;
/// Independent DRAM channels.
const DRAM_CHANNELS: usize = 2;

/// The shared last-level cache plus DRAM behind it.
#[derive(Debug)]
pub struct SharedLevel {
    cache: CacheArray,
    banks: Vec<PortMeter>,
    dram: OccupancyPool,
    dram_latency: u32,
    dram_accesses: u64,
}

/// Completion information for one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOutcome {
    /// Cycle at which the data is available (loads) or the access is
    /// globally performed (stores).
    pub ready_at: u64,
    /// Whether the first-level cache hit.
    pub l1_hit: bool,
    /// Whether the shared level hit (only meaningful when `l1_hit` is
    /// false).
    pub l2_hit: bool,
}

impl SharedLevel {
    /// Creates a shared level with the given L2 geometry and default DRAM
    /// latency.
    pub fn new(config: CacheConfig) -> SharedLevel {
        SharedLevel::with_dram_latency(config, DRAM_LATENCY)
    }

    /// Creates a shared level with an explicit DRAM latency.
    pub fn with_dram_latency(config: CacheConfig, dram_latency: u32) -> SharedLevel {
        SharedLevel {
            banks: (0..config.banks).map(|_| PortMeter::new(1)).collect(),
            cache: CacheArray::new(config),
            dram: OccupancyPool::new(DRAM_CHANNELS),
            dram_latency,
            dram_accesses: 0,
        }
    }

    /// Wraps this level for sharing between multiple private caches.
    pub fn into_shared(self) -> Rc<RefCell<SharedLevel>> {
        Rc::new(RefCell::new(self))
    }

    /// Services an access arriving at cycle `now`; returns `(ready_at, hit)`.
    pub fn access(&mut self, addr: u32, write: bool, now: u64) -> (u64, bool) {
        let bank = self.cache.bank_of(addr) as usize;
        let start = self.banks[bank].next(now);
        let result = self.cache.access(addr, write);
        let after_tags = start + self.cache.config().hit_latency as u64;
        if result.hit {
            (after_tags, true)
        } else {
            self.dram_accesses += 1;
            let dram_start = self.dram.issue(after_tags, DRAM_OCCUPANCY);
            (dram_start + self.dram_latency as u64, false)
        }
    }

    /// L2 statistics.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of line transfers that went all the way to DRAM.
    pub fn dram_accesses(&self) -> u64 {
        self.dram_accesses
    }
}

/// One private first-level data cache in front of the shared level.
#[derive(Debug)]
pub struct PrivateCache {
    cache: CacheArray,
    banks: Vec<PortMeter>,
    next: Rc<RefCell<SharedLevel>>,
}

impl PrivateCache {
    /// Creates an L1 backed by `next`.
    pub fn new(config: CacheConfig, next: Rc<RefCell<SharedLevel>>) -> PrivateCache {
        PrivateCache {
            banks: (0..config.banks).map(|_| PortMeter::new(1)).collect(),
            cache: CacheArray::new(config),
            next,
        }
    }

    /// Services an access arriving at cycle `now`.
    pub fn access(&mut self, addr: u32, write: bool, now: u64) -> MemOutcome {
        let bank = self.cache.bank_of(addr) as usize;
        let start = self.banks[bank].next(now);
        let result = self.cache.access(addr, write);
        let after_tags = start + self.cache.config().hit_latency as u64;
        if result.hit {
            MemOutcome {
                ready_at: after_tags,
                l1_hit: true,
                l2_hit: false,
            }
        } else {
            let (ready_at, l2_hit) = self.next.borrow_mut().access(addr, write, after_tags);
            MemOutcome {
                ready_at,
                l1_hit: false,
                l2_hit,
            }
        }
    }

    /// [`PrivateCache::access`] with trace instrumentation: emits a
    /// level-1 [`EventKind::CacheAccess`] at the access cycle and, on an
    /// L1 miss, a level-2 one recording whether the shared level hit.
    /// With a disabled tracer this is exactly `access`.
    pub fn access_traced(
        &mut self,
        addr: u32,
        write: bool,
        now: u64,
        tracer: &Tracer,
        thread: u32,
    ) -> MemOutcome {
        let out = self.access(addr, write, now);
        tracer.emit(|| Event {
            cycle: now,
            thread,
            track: Track::Cache(1),
            kind: EventKind::CacheAccess {
                level: 1,
                write,
                hit: out.l1_hit,
            },
        });
        if !out.l1_hit {
            tracer.emit(|| Event {
                cycle: now,
                thread,
                track: Track::Cache(2),
                kind: EventKind::CacheAccess {
                    level: 2,
                    write,
                    hit: out.l2_hit,
                },
            });
        }
        out
    }

    /// L1 statistics.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Whether the line containing `addr` is resident (no state change).
    pub fn probe(&self, addr: u32) -> bool {
        self.cache.probe(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> (PrivateCache, Rc<RefCell<SharedLevel>>) {
        let l2 = SharedLevel::new(CacheConfig {
            size_bytes: 4 << 10,
            line_bytes: 64,
            ways: 4,
            hit_latency: 10,
            banks: 2,
        })
        .into_shared();
        let l1 = PrivateCache::new(
            CacheConfig {
                size_bytes: 256,
                line_bytes: 64,
                ways: 2,
                hit_latency: 2,
                banks: 2,
            },
            Rc::clone(&l2),
        );
        (l1, l2)
    }

    #[test]
    fn cold_access_goes_to_dram() {
        let (mut l1, _l2) = hierarchy();
        let out = l1.access(0x1000, false, 0);
        assert!(!out.l1_hit);
        assert!(!out.l2_hit);
        // tags(2) + l2 tags(10) + dram(100)
        assert_eq!(out.ready_at, 2 + 10 + DRAM_LATENCY as u64);
    }

    #[test]
    fn l1_hit_is_fast() {
        let (mut l1, _l2) = hierarchy();
        l1.access(0x1000, false, 0);
        let out = l1.access(0x1000, false, 200);
        assert!(out.l1_hit);
        assert_eq!(out.ready_at, 202);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let (mut l1, _l2) = hierarchy();
        // L1: 256 B / 64 B / 2 ways = 2 sets. Lines 0x0000, 0x0080, 0x0100
        // all map to set 0; the third fill evicts 0x0000 from L1 but L2
        // still holds it.
        l1.access(0x0000, false, 0);
        l1.access(0x0080, false, 500);
        l1.access(0x0100, false, 1000);
        let out = l1.access(0x0000, false, 2000);
        assert!(!out.l1_hit);
        assert!(out.l2_hit);
        assert_eq!(out.ready_at, 2000 + 2 + 10);
    }

    #[test]
    fn bank_contention_serializes() {
        let (mut l1, _l2) = hierarchy();
        // Warm two lines in the same L1 bank (banks=2, so line addresses
        // with the same parity share a bank).
        l1.access(0x0000, false, 0);
        l1.access(0x0080, false, 500);
        let a = l1.access(0x0000, false, 1000);
        let b = l1.access(0x0080, false, 1000);
        assert!(a.l1_hit && b.l1_hit);
        // Same bank: second access starts one cycle later.
        assert_eq!(b.ready_at, a.ready_at + 1);
        // Different bank proceeds in parallel.
        l1.access(0x0040, false, 2000);
        let c = l1.access(0x0040, false, 3000);
        let d = l1.access(0x0000, false, 3000);
        assert_eq!(c.ready_at, 3002);
        assert_eq!(d.ready_at, 3002);
    }

    #[test]
    fn shared_l2_sees_both_l1s() {
        let l2 = SharedLevel::new(CacheConfig {
            size_bytes: 4 << 10,
            line_bytes: 64,
            ways: 4,
            hit_latency: 10,
            banks: 2,
        })
        .into_shared();
        let cfg = CacheConfig {
            size_bytes: 256,
            line_bytes: 64,
            ways: 2,
            hit_latency: 2,
            banks: 2,
        };
        let mut a = PrivateCache::new(cfg, Rc::clone(&l2));
        let mut b = PrivateCache::new(cfg, Rc::clone(&l2));
        a.access(0x4000, false, 0); // fills L2
        let out = b.access(0x4000, false, 1000);
        assert!(!out.l1_hit);
        assert!(out.l2_hit, "second core should hit in shared L2");
        assert_eq!(l2.borrow().dram_accesses(), 1);
    }

    #[test]
    fn traced_access_emits_per_level_events() {
        use diag_trace::{Tracer, VecSink};

        let (mut l1, _l2) = hierarchy();
        let sink = VecSink::shared();
        let tracer = Tracer::to_shared(sink.clone());
        // Cold miss: L1 miss + L2 miss events.
        let cold = l1.access_traced(0x1000, false, 0, &tracer, 0);
        assert!(!cold.l1_hit);
        // Warm hit: one L1 event only.
        let warm = l1.access_traced(0x1000, false, 500, &tracer, 0);
        assert!(warm.l1_hit);
        let events = sink.borrow().events().to_vec();
        assert_eq!(events.len(), 3);
        assert!(matches!(
            events[0].kind,
            EventKind::CacheAccess {
                level: 1,
                hit: false,
                ..
            }
        ));
        assert_eq!(events[1].track, Track::Cache(2));
        assert!(matches!(
            events[2].kind,
            EventKind::CacheAccess {
                level: 1,
                hit: true,
                ..
            }
        ));
        // Timing identical to the untraced path on a fresh hierarchy.
        let (mut plain, _l2b) = hierarchy();
        assert_eq!(plain.access(0x1000, false, 0), cold);
        assert_eq!(plain.access(0x1000, false, 500), warm);
    }

    #[test]
    fn dram_channel_contention() {
        let (mut l1, l2) = hierarchy();
        // Three cold misses at once: the first two take the two DRAM
        // channels, the third waits for an occupancy slot.
        let x = l1.access(0x0000, false, 0);
        let y = l1.access(0x0040, false, 0);
        let z = l1.access(0x0080, false, 0);
        assert_eq!(l2.borrow().dram_accesses(), 3);
        assert_eq!(y.ready_at, x.ready_at, "parallel DRAM channels");
        assert!(z.ready_at > x.ready_at, "third miss waits for a channel");
    }
}
