//! Memory lanes: DiAG's cluster-level store-forwarding structure.
//!
//! The paper (§5.2) describes memory lanes as "essentially set-associative
//! register lanes that transport memory data from PE to PE and enable
//! access reordering. Data written by stores are temporarily stored in
//! memory lanes that are passed to succeeding clusters and PEs for
//! immediate access."
//!
//! Functionally, [`MemLane`] is an exact store buffer with timestamps:
//! every pending store is recorded with its issue time, and loads query it
//! for both *disambiguation* (a load may not execute before an older
//! overlapping store has issued) and *forwarding* (a fully-covered load
//! receives the value in one cycle). The timing benefit is granted only
//! within the configured capacity window — older entries still constrain
//! ordering but pay the cache latency — modelling a bounded hardware
//! structure without coupling capacity to correctness.
//!
//! Lookups are serviced from a per-word index while every buffered store
//! is a word-aligned full word (the overwhelmingly common case), so a
//! load costs one hash probe instead of a scan of the whole buffer; any
//! buffered sub-word or unaligned store falls the structure back to the
//! exact linear scan.

use crate::fxmap::FxHashMap;

/// One buffered store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StoreEntry {
    addr: u32,
    size: u32,
    value: u32,
    time: u64,
}

impl StoreEntry {
    /// Whether this entry is an aligned full-word store (indexable).
    fn is_word(&self) -> bool {
        self.size == 4 && self.addr & 3 == 0
    }
}

/// Result of a memory-lane load lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneLookup {
    /// Fully covered by a buffered store within the capacity window —
    /// the value forwards in one cycle once the store has issued.
    HitFast {
        /// Forwarded value (low `size` bytes).
        value: u32,
        /// Issue time of the forwarding store.
        store_time: u64,
    },
    /// Fully covered, but by an entry beyond the capacity window — the
    /// value is correct but the access pays the cache latency, after the
    /// store has issued.
    HitSlow {
        /// Forwarded value.
        value: u32,
        /// Issue time of the forwarding store.
        store_time: u64,
    },
    /// Partially overlapped by a younger store: the load must wait for
    /// that store to issue, then access the cache.
    Conflict {
        /// Issue time of the conflicting store.
        store_time: u64,
    },
    /// No overlapping buffered store — access the cache freely.
    Miss,
}

/// A cluster-level store-forwarding and disambiguation buffer (paper §5.2).
#[derive(Debug, Clone)]
pub struct MemLane {
    entries: Vec<StoreEntry>,
    capacity: usize,
    /// Sequence number of `entries[0]` (sequence numbers are assigned per
    /// push and survive front-drains, so the word index below can refer
    /// to entries stably).
    base_seq: u64,
    /// Youngest buffered store per word address (`addr >> 2`), by
    /// sequence number. Entries whose sequence has been drained are
    /// stale and mean "no buffered store to this word" — drains remove
    /// oldest-first, so if the *youngest* store to a word is gone, every
    /// other store to it is gone too.
    word_index: FxHashMap<u32, u64>,
    /// Number of buffered stores that are not aligned full words. While
    /// zero, the word index answers every within-word load exactly.
    irregular: usize,
}

impl MemLane {
    /// Creates a memory lane with `capacity` fast-forwarding entries.
    pub fn new(capacity: usize) -> MemLane {
        MemLane {
            entries: Vec::new(),
            capacity,
            base_seq: 0,
            word_index: FxHashMap::default(),
            irregular: 0,
        }
    }

    /// Fast-window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of buffered stores.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no stores are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records a store issued at `time` (call in program order).
    #[inline]
    pub fn push_store(&mut self, addr: u32, size: u32, value: u32, time: u64) {
        let entry = StoreEntry {
            addr,
            size,
            value,
            time,
        };
        if entry.is_word() {
            let seq = self.base_seq + self.entries.len() as u64;
            self.word_index.insert(addr >> 2, seq);
        } else {
            self.irregular += 1;
        }
        self.entries.push(entry);
    }

    /// Classifies a covering entry at buffer position `pos` as fast or
    /// slow forwarding and extracts the loaded bytes.
    fn hit(&self, e: &StoreEntry, pos: usize, addr: u32, size: u32) -> LaneLookup {
        let shift = (addr - e.addr) * 8;
        let mask = if size == 4 {
            u32::MAX
        } else {
            (1u32 << (size * 8)) - 1
        };
        let value = (e.value >> shift) & mask;
        let fast_floor = self.entries.len().saturating_sub(self.capacity);
        if pos >= fast_floor {
            LaneLookup::HitFast {
                value,
                store_time: e.time,
            }
        } else {
            LaneLookup::HitSlow {
                value,
                store_time: e.time,
            }
        }
    }

    /// Queries the youngest overlapping store for a load of `size` bytes
    /// at `addr`.
    #[inline]
    pub fn lookup(&self, addr: u32, size: u32) -> LaneLookup {
        // Fast path: every buffered store is an aligned word, and the
        // load does not cross a word boundary, so the only stores that
        // can overlap it are stores to its word — all of which cover it.
        // One index probe replaces the scan.
        if self.irregular == 0 && (addr & 3) + size <= 4 {
            return match self.word_index.get(&(addr >> 2)) {
                Some(&seq) if seq >= self.base_seq => {
                    let pos = (seq - self.base_seq) as usize;
                    let e = self.entries[pos];
                    self.hit(&e, pos, addr, size)
                }
                _ => LaneLookup::Miss,
            };
        }
        let fast_floor = self.entries.len().saturating_sub(self.capacity);
        for (idx, e) in self.entries.iter().enumerate().rev() {
            let covers = e.addr <= addr && addr + size <= e.addr + e.size;
            if covers {
                let shift = (addr - e.addr) * 8;
                let mask = if size == 4 {
                    u32::MAX
                } else {
                    (1u32 << (size * 8)) - 1
                };
                let value = (e.value >> shift) & mask;
                return if idx >= fast_floor {
                    LaneLookup::HitFast {
                        value,
                        store_time: e.time,
                    }
                } else {
                    LaneLookup::HitSlow {
                        value,
                        store_time: e.time,
                    }
                };
            }
            let overlaps = e.addr < addr + size && addr < e.addr + e.size;
            if overlaps {
                return LaneLookup::Conflict { store_time: e.time };
            }
        }
        LaneLookup::Miss
    }

    /// Clears buffered stores (on cluster free / thread completion).
    pub fn clear(&mut self) {
        self.base_seq += self.entries.len() as u64;
        self.entries.clear();
        self.word_index.clear();
        self.irregular = 0;
    }

    /// Drops the oldest entries down to a bounded multiple of the fast
    /// window (periodic trim to bound memory in very long runs).
    pub fn trim(&mut self) {
        let excess = self.entries.len().saturating_sub(self.capacity * 4);
        if excess > 0 {
            self.irregular -= self
                .entries
                .iter()
                .take(excess)
                .filter(|e| !e.is_word())
                .count();
            self.entries.drain(..excess);
            self.base_seq += excess as u64;
        }
        // Stale index entries are answered lazily (seq below base_seq);
        // sweep them out only once the index has grown to a small multiple
        // of the live set, which keeps the sweep O(1) amortized per store
        // while holding the map cache-resident for lookups.
        if self.word_index.len() > (self.capacity * 8).max(256) {
            let floor = self.base_seq;
            self.word_index.retain(|_, &mut seq| seq >= floor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwards_matching_word() {
        let mut lane = MemLane::new(8);
        lane.push_store(0x100, 4, 0xAABB_CCDD, 17);
        assert_eq!(
            lane.lookup(0x100, 4),
            LaneLookup::HitFast {
                value: 0xAABB_CCDD,
                store_time: 17
            }
        );
    }

    #[test]
    fn forwards_subword() {
        let mut lane = MemLane::new(8);
        lane.push_store(0x100, 4, 0xAABB_CCDD, 0);
        match lane.lookup(0x100, 1) {
            LaneLookup::HitFast { value, .. } => assert_eq!(value, 0xDD),
            other => panic!("{other:?}"),
        }
        match lane.lookup(0x102, 2) {
            LaneLookup::HitFast { value, .. } => assert_eq!(value, 0xAABB),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn youngest_store_wins() {
        let mut lane = MemLane::new(8);
        lane.push_store(0x100, 4, 1, 10);
        lane.push_store(0x100, 4, 2, 20);
        assert_eq!(
            lane.lookup(0x100, 4),
            LaneLookup::HitFast {
                value: 2,
                store_time: 20
            }
        );
    }

    #[test]
    fn partial_overlap_conflicts() {
        let mut lane = MemLane::new(8);
        lane.push_store(0x100, 4, 7, 5);
        lane.push_store(0x102, 2, 9, 6);
        assert_eq!(
            lane.lookup(0x100, 4),
            LaneLookup::Conflict { store_time: 6 }
        );
        assert_eq!(
            lane.lookup(0x102, 2),
            LaneLookup::HitFast {
                value: 9,
                store_time: 6
            }
        );
    }

    #[test]
    fn miss_on_disjoint() {
        let mut lane = MemLane::new(8);
        lane.push_store(0x100, 4, 7, 0);
        assert_eq!(lane.lookup(0x200, 4), LaneLookup::Miss);
        assert_eq!(lane.lookup(0x104, 4), LaneLookup::Miss);
    }

    #[test]
    fn old_entries_hit_slow() {
        let mut lane = MemLane::new(2);
        lane.push_store(0x100, 4, 1, 1);
        lane.push_store(0x200, 4, 2, 2);
        lane.push_store(0x300, 4, 3, 3);
        assert!(matches!(
            lane.lookup(0x100, 4),
            LaneLookup::HitSlow { value: 1, .. }
        ));
        assert!(matches!(
            lane.lookup(0x300, 4),
            LaneLookup::HitFast { value: 3, .. }
        ));
    }

    #[test]
    fn clear_and_trim() {
        let mut lane = MemLane::new(2);
        for i in 0..100 {
            lane.push_store(i * 4, 4, i, i as u64);
        }
        lane.trim();
        assert!(lane.len() <= 8);
        lane.clear();
        assert!(lane.is_empty());
        assert_eq!(lane.lookup(0, 4), LaneLookup::Miss);
    }

    #[test]
    fn drained_word_index_entries_are_misses() {
        let mut lane = MemLane::new(2);
        for i in 0..100u32 {
            lane.push_store(i * 4, 4, i, i as u64);
            lane.trim();
        }
        // Early stores have been trimmed away: their words must miss even
        // though the index once knew them.
        assert_eq!(lane.lookup(0, 4), LaneLookup::Miss);
        assert_eq!(lane.lookup(4, 4), LaneLookup::Miss);
        // The youngest survivors still forward.
        assert!(matches!(
            lane.lookup(99 * 4, 4),
            LaneLookup::HitFast { value: 99, .. }
        ));
    }

    #[test]
    fn irregular_store_disables_fast_path_exactly() {
        let mut lane = MemLane::new(8);
        lane.push_store(0x100, 4, 0x1111_1111, 1);
        lane.push_store(0x101, 1, 0x22, 2); // unaligned byte store
                                            // The byte store partially overlaps a word load → conflict from
                                            // the youngest overlapping entry.
        assert_eq!(
            lane.lookup(0x100, 4),
            LaneLookup::Conflict { store_time: 2 }
        );
        // The byte itself forwards.
        assert!(matches!(
            lane.lookup(0x101, 1),
            LaneLookup::HitFast { value: 0x22, .. }
        ));
    }

    #[test]
    fn word_crossing_load_scans() {
        let mut lane = MemLane::new(8);
        lane.push_store(0x100, 4, 7, 5);
        // A halfword load crossing the word boundary cannot be covered by
        // the word store → conflict.
        assert_eq!(
            lane.lookup(0x103, 2),
            LaneLookup::Conflict { store_time: 5 }
        );
    }
}
