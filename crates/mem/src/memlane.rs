//! Memory lanes: DiAG's cluster-level store-forwarding structure.
//!
//! The paper (§5.2) describes memory lanes as "essentially set-associative
//! register lanes that transport memory data from PE to PE and enable
//! access reordering. Data written by stores are temporarily stored in
//! memory lanes that are passed to succeeding clusters and PEs for
//! immediate access."
//!
//! Functionally, [`MemLane`] is an exact store buffer with timestamps:
//! every pending store is recorded with its issue time, and loads query it
//! for both *disambiguation* (a load may not execute before an older
//! overlapping store has issued) and *forwarding* (a fully-covered load
//! receives the value in one cycle). The timing benefit is granted only
//! within the configured capacity window — older entries still constrain
//! ordering but pay the cache latency — modelling a bounded hardware
//! structure without coupling capacity to correctness.

/// One buffered store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StoreEntry {
    addr: u32,
    size: u32,
    value: u32,
    time: u64,
}

/// Result of a memory-lane load lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneLookup {
    /// Fully covered by a buffered store within the capacity window —
    /// the value forwards in one cycle once the store has issued.
    HitFast {
        /// Forwarded value (low `size` bytes).
        value: u32,
        /// Issue time of the forwarding store.
        store_time: u64,
    },
    /// Fully covered, but by an entry beyond the capacity window — the
    /// value is correct but the access pays the cache latency, after the
    /// store has issued.
    HitSlow {
        /// Forwarded value.
        value: u32,
        /// Issue time of the forwarding store.
        store_time: u64,
    },
    /// Partially overlapped by a younger store: the load must wait for
    /// that store to issue, then access the cache.
    Conflict {
        /// Issue time of the conflicting store.
        store_time: u64,
    },
    /// No overlapping buffered store — access the cache freely.
    Miss,
}

/// A cluster-level store-forwarding and disambiguation buffer (paper §5.2).
#[derive(Debug, Clone)]
pub struct MemLane {
    entries: Vec<StoreEntry>,
    capacity: usize,
}

impl MemLane {
    /// Creates a memory lane with `capacity` fast-forwarding entries.
    pub fn new(capacity: usize) -> MemLane {
        MemLane {
            entries: Vec::new(),
            capacity,
        }
    }

    /// Fast-window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of buffered stores.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no stores are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records a store issued at `time` (call in program order).
    pub fn push_store(&mut self, addr: u32, size: u32, value: u32, time: u64) {
        self.entries.push(StoreEntry {
            addr,
            size,
            value,
            time,
        });
    }

    /// Queries the youngest overlapping store for a load of `size` bytes
    /// at `addr`.
    pub fn lookup(&self, addr: u32, size: u32) -> LaneLookup {
        let fast_floor = self.entries.len().saturating_sub(self.capacity);
        for (idx, e) in self.entries.iter().enumerate().rev() {
            let covers = e.addr <= addr && addr + size <= e.addr + e.size;
            if covers {
                let shift = (addr - e.addr) * 8;
                let mask = if size == 4 {
                    u32::MAX
                } else {
                    (1u32 << (size * 8)) - 1
                };
                let value = (e.value >> shift) & mask;
                return if idx >= fast_floor {
                    LaneLookup::HitFast {
                        value,
                        store_time: e.time,
                    }
                } else {
                    LaneLookup::HitSlow {
                        value,
                        store_time: e.time,
                    }
                };
            }
            let overlaps = e.addr < addr + size && addr < e.addr + e.size;
            if overlaps {
                return LaneLookup::Conflict { store_time: e.time };
            }
        }
        LaneLookup::Miss
    }

    /// Clears buffered stores (on cluster free / thread completion).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Drops the oldest entries down to a bounded multiple of the fast
    /// window (periodic trim to bound memory in very long runs).
    pub fn trim(&mut self) {
        let excess = self.entries.len().saturating_sub(self.capacity * 4);
        if excess > 0 {
            self.entries.drain(..excess);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwards_matching_word() {
        let mut lane = MemLane::new(8);
        lane.push_store(0x100, 4, 0xAABB_CCDD, 17);
        assert_eq!(
            lane.lookup(0x100, 4),
            LaneLookup::HitFast {
                value: 0xAABB_CCDD,
                store_time: 17
            }
        );
    }

    #[test]
    fn forwards_subword() {
        let mut lane = MemLane::new(8);
        lane.push_store(0x100, 4, 0xAABB_CCDD, 0);
        match lane.lookup(0x100, 1) {
            LaneLookup::HitFast { value, .. } => assert_eq!(value, 0xDD),
            other => panic!("{other:?}"),
        }
        match lane.lookup(0x102, 2) {
            LaneLookup::HitFast { value, .. } => assert_eq!(value, 0xAABB),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn youngest_store_wins() {
        let mut lane = MemLane::new(8);
        lane.push_store(0x100, 4, 1, 10);
        lane.push_store(0x100, 4, 2, 20);
        assert_eq!(
            lane.lookup(0x100, 4),
            LaneLookup::HitFast {
                value: 2,
                store_time: 20
            }
        );
    }

    #[test]
    fn partial_overlap_conflicts() {
        let mut lane = MemLane::new(8);
        lane.push_store(0x100, 4, 7, 5);
        lane.push_store(0x102, 2, 9, 6);
        assert_eq!(
            lane.lookup(0x100, 4),
            LaneLookup::Conflict { store_time: 6 }
        );
        assert_eq!(
            lane.lookup(0x102, 2),
            LaneLookup::HitFast {
                value: 9,
                store_time: 6
            }
        );
    }

    #[test]
    fn miss_on_disjoint() {
        let mut lane = MemLane::new(8);
        lane.push_store(0x100, 4, 7, 0);
        assert_eq!(lane.lookup(0x200, 4), LaneLookup::Miss);
        assert_eq!(lane.lookup(0x104, 4), LaneLookup::Miss);
    }

    #[test]
    fn old_entries_hit_slow() {
        let mut lane = MemLane::new(2);
        lane.push_store(0x100, 4, 1, 1);
        lane.push_store(0x200, 4, 2, 2);
        lane.push_store(0x300, 4, 3, 3);
        assert!(matches!(
            lane.lookup(0x100, 4),
            LaneLookup::HitSlow { value: 1, .. }
        ));
        assert!(matches!(
            lane.lookup(0x300, 4),
            LaneLookup::HitFast { value: 3, .. }
        ));
    }

    #[test]
    fn clear_and_trim() {
        let mut lane = MemLane::new(2);
        for i in 0..100 {
            lane.push_store(i * 4, 4, i, i as u64);
        }
        lane.trim();
        assert!(lane.len() <= 8);
        lane.clear();
        assert!(lane.is_empty());
        assert_eq!(lane.lookup(0, 4), LaneLookup::Miss);
    }
}
