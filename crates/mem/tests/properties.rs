//! Randomized tests for the memory subsystem against simple reference
//! models: main memory vs a byte map, the cache array vs a literal LRU
//! list, and the memory lanes vs a naive store-buffer scan. Driven by the
//! in-workspace [`SplitMix64`] generator so the suite runs fully offline;
//! the `heavy` feature scales the case count up for soak runs.

use std::collections::HashMap;

use diag_isa::prng::SplitMix64;
use diag_mem::{CacheArray, CacheConfig, LaneLookup, MainMemory, MemLane};

#[cfg(not(feature = "heavy"))]
const CASES: u64 = 64;
#[cfg(feature = "heavy")]
const CASES: u64 = 4_096;

#[derive(Debug, Clone, Copy)]
enum MemOp {
    W8(u32, u8),
    W16(u32, u16),
    W32(u32, u32),
    R(u32),
}

fn any_mem_op(rng: &mut SplitMix64) -> MemOp {
    // A small address space with page-boundary crossings (page = 4096).
    let addr = rng.gen_range(0u32..20_000);
    match rng.gen_range(0u32..4) {
        0 => MemOp::W8(addr, rng.gen::<u8>()),
        1 => MemOp::W16(addr, rng.gen::<u16>()),
        2 => MemOp::W32(addr, rng.gen::<u32>()),
        _ => MemOp::R(addr),
    }
}

/// MainMemory agrees with a byte-granular reference map under any mix of
/// overlapping multi-width reads and writes.
#[test]
fn main_memory_matches_byte_map() {
    let mut rng = SplitMix64::seed_from_u64(0x4D45_4D01);
    for _ in 0..CASES {
        let count = rng.gen_range(1usize..200);
        let mut mem = MainMemory::new();
        let mut model: HashMap<u32, u8> = HashMap::new();
        for _ in 0..count {
            match any_mem_op(&mut rng) {
                MemOp::W8(a, v) => {
                    mem.write_u8(a, v);
                    model.insert(a, v);
                }
                MemOp::W16(a, v) => {
                    mem.write_u16(a, v);
                    for (i, b) in v.to_le_bytes().into_iter().enumerate() {
                        model.insert(a + i as u32, b);
                    }
                }
                MemOp::W32(a, v) => {
                    mem.write_u32(a, v);
                    for (i, b) in v.to_le_bytes().into_iter().enumerate() {
                        model.insert(a + i as u32, b);
                    }
                }
                MemOp::R(a) => {
                    let want = u32::from_le_bytes([
                        model.get(&a).copied().unwrap_or(0),
                        model.get(&(a + 1)).copied().unwrap_or(0),
                        model.get(&(a + 2)).copied().unwrap_or(0),
                        model.get(&(a + 3)).copied().unwrap_or(0),
                    ]);
                    assert_eq!(mem.read_u32(a), want);
                }
            }
        }
        // Final sweep.
        for (&a, &b) in &model {
            assert_eq!(mem.read_u8(a), b);
        }
    }
}

/// CacheArray hit/miss behaviour matches a literal LRU-list model.
#[test]
fn cache_matches_lru_reference() {
    let mut rng = SplitMix64::seed_from_u64(0x4D45_4D02);
    for _ in 0..CASES {
        let count = rng.gen_range(1usize..300);
        let config = CacheConfig {
            size_bytes: 2 * 2 * 16, // 2 sets x 2 ways x 16-byte lines
            line_bytes: 16,
            ways: 2,
            hit_latency: 1,
            banks: 1,
        };
        let mut cache = CacheArray::new(config);
        // Reference: per set, a most-recent-first list of line addresses.
        let mut sets: Vec<Vec<u32>> = vec![Vec::new(); 2];
        for _ in 0..count {
            let line_idx = rng.gen_range(0u32..64);
            let write = rng.gen::<bool>();
            let addr = line_idx * 16;
            let set = (line_idx % 2) as usize;
            let list = &mut sets[set];
            let want_hit = list.contains(&line_idx);
            let got = cache.access(addr, write);
            assert_eq!(got.hit, want_hit, "line {line_idx} set {set}");
            if let Some(pos) = list.iter().position(|&l| l == line_idx) {
                list.remove(pos);
            }
            list.insert(0, line_idx);
            list.truncate(2);
        }
    }
}

/// MemLane forwarding matches a naive youngest-covering-store scan, and
/// never forwards stale data.
#[test]
fn memlane_matches_reference_scan() {
    let mut rng = SplitMix64::seed_from_u64(0x4D45_4D03);
    let sizes = [1u32, 2, 4];
    for _ in 0..CASES.max(256) {
        let count = rng.gen_range(0usize..40);
        let stores: Vec<(u32, u32, u32)> = (0..count)
            .map(|_| {
                (
                    rng.gen_range(0u32..64),
                    sizes[rng.gen_range(0usize..sizes.len())],
                    rng.gen::<u32>(),
                )
            })
            .collect();
        let probe_addr = rng.gen_range(0u32..64);
        let probe_size = sizes[rng.gen_range(0usize..sizes.len())];

        let mut lane = MemLane::new(8);
        for (i, &(addr, size, value)) in stores.iter().enumerate() {
            lane.push_store(addr, size, value, i as u64);
        }
        let got = lane.lookup(probe_addr, probe_size);
        // Reference: scan youngest-first.
        let mut want: Option<LaneLookup> = None;
        for (i, &(addr, size, value)) in stores.iter().enumerate().rev() {
            let covers = addr <= probe_addr && probe_addr + probe_size <= addr + size;
            let overlaps = addr < probe_addr + probe_size && probe_addr < addr + size;
            if covers {
                let shift = (probe_addr - addr) * 8;
                let mask = if probe_size == 4 {
                    u32::MAX
                } else {
                    (1u32 << (probe_size * 8)) - 1
                };
                let v = (value >> shift) & mask;
                let fast = stores.len() - i <= 8;
                want = Some(if fast {
                    LaneLookup::HitFast {
                        value: v,
                        store_time: i as u64,
                    }
                } else {
                    LaneLookup::HitSlow {
                        value: v,
                        store_time: i as u64,
                    }
                });
                break;
            }
            if overlaps {
                want = Some(LaneLookup::Conflict {
                    store_time: i as u64,
                });
                break;
            }
        }
        assert_eq!(got, want.unwrap_or(LaneLookup::Miss));
    }
}
