//! Disk-cache behaviour under concurrency: the LRU byte budget holds
//! after racing writers quiesce, and an evicted-then-requested artifact
//! is rebuilt exactly once no matter how many threads race for it.

use std::sync::{Arc, Barrier};

use diag_pipeline::{program_key, DiskCache, Session};
use diag_workloads::{find, Params};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("diag-pipeline-conc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn concurrent_stores_respect_the_byte_budget() {
    let dir = temp_dir("budget");
    const BUDGET: u64 = 4096;
    let cache = Arc::new(DiskCache::open(&dir, BUDGET).expect("open"));
    let barrier = Arc::new(Barrier::new(8));
    let payload = vec![0xA5u8; 1000];

    let handles: Vec<_> = (0..8)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            let payload = payload.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..10 {
                    // Distinct keys per (thread, iteration): every store
                    // competes for budget, so evictions race each other.
                    let name = format!("wl-{t}-{i}");
                    let key = program_key(&name, &Params::tiny());
                    cache.store(key, &payload);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread");
    }

    // Transient over-budget is allowed mid-race (store writes before it
    // evicts); after quiescence the LRU bound must hold.
    let stats = cache.stats();
    assert!(
        stats.bytes <= BUDGET,
        "cache holds {} bytes over a {BUDGET}-byte budget ({} files)",
        stats.bytes,
        stats.files
    );
    assert!(stats.files >= 1, "budget admits at least one blob");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn evicted_program_rebuilds_exactly_once_across_racing_threads() {
    let dir = temp_dir("evict");
    let hotspot = find("hotspot").expect("registered");
    let bfs = find("bfs").expect("registered");
    let params = Params::tiny();
    let key_hotspot = program_key(hotspot.name, &params);

    // Seed the cache with hotspot's image and measure both blob sizes.
    let seed = Session::with_disk(DiskCache::open(&dir, DiskCache::DEFAULT_BUDGET).expect("open"));
    seed.workload(&hotspot, &params).expect("build hotspot");
    let hotspot_bytes = seed.disk().expect("disk").stats().bytes;
    seed.workload(&bfs, &params).expect("build bfs");
    let bfs_bytes = seed.disk().expect("disk").stats().bytes - hotspot_bytes;
    let _ = std::fs::remove_dir_all(&dir);

    // Re-seed hotspot alone, then store bfs through a cache whose
    // budget fits either blob but not both: hotspot (the LRU entry) is
    // evicted to make room.
    let tight = hotspot_bytes.max(bfs_bytes);
    let cold = Session::with_disk(DiskCache::open(&dir, tight).expect("open"));
    cold.workload(&hotspot, &params).expect("build hotspot");
    // Keep the two blobs' mtimes distinct on coarse filesystems so the
    // LRU choice is unambiguous.
    std::thread::sleep(std::time::Duration::from_millis(20));
    cold.workload(&bfs, &params).expect("build bfs");
    let disk = cold.disk().expect("disk");
    assert!(
        disk.load(key_hotspot).is_none(),
        "hotspot must have been evicted (budget {tight}, {:?})",
        disk.stats()
    );

    // A fresh session (fresh memory layer, like a server restart) now
    // races four threads for the evicted artifact: the OnceLock layer
    // must coalesce them onto exactly one assembly.
    let warm = Arc::new(Session::with_disk(
        DiskCache::open(&dir, DiskCache::DEFAULT_BUDGET).expect("open"),
    ));
    let barrier = Arc::new(Barrier::new(4));
    let before = diag_workloads::build_calls();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let warm = Arc::clone(&warm);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                warm.workload(&find("hotspot").expect("registered"), &Params::tiny())
                    .expect("rebuild hotspot")
            })
        })
        .collect();
    let builds: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("racer thread"))
        .collect();
    assert_eq!(
        diag_workloads::build_calls() - before,
        1,
        "racing threads must coalesce onto one assembly"
    );
    for b in &builds[1..] {
        assert!(Arc::ptr_eq(&builds[0], b), "all racers share one artifact");
    }
    let counters = warm.counters();
    assert_eq!(counters.workloads.builds, 1);
    assert_eq!(counters.disk_writes, 1, "the rebuilt image re-persists");
    assert!(
        warm.disk().expect("disk").load(key_hotspot).is_some(),
        "hotspot image is back on disk"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
