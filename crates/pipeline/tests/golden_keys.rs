//! Golden tests pinning artifact-key stability.
//!
//! The on-disk cache is only sound if the same typed inputs hash to the
//! same 64-bit key in every process, on every host, forever (within one
//! `SCHEMA_VERSION`). These literals were recorded once and must never
//! change silently: if a key scheme change is intentional, bump
//! [`diag_pipeline::SCHEMA_VERSION`] and re-record — old blobs are then
//! rejected by their embedded schema field instead of being misread.

use diag_analyze::AnalyzeOptions;
use diag_core::DiagConfig;
use diag_pipeline::{
    analysis_key, program_key, report_key, stations_key, verification_key, ReportFormat, Stage,
};
use diag_verify::VerifyOptions;
use diag_workloads::Params;

#[test]
fn keys_are_stable_across_processes() {
    let program = program_key("hotspot", &Params::tiny());
    let stations_bare = stations_key(program, None);
    let stations_diag = stations_key(program, Some(&DiagConfig::f4c32()));
    let analysis = analysis_key(program, &AnalyzeOptions::default());
    let report = report_key(analysis, ReportFormat::Text);

    // Recorded goldens. A mismatch means the key schema changed: every
    // cached blob in the wild is now unreachable (or worse, aliased).
    assert_eq!(program.hash, 0x9b90dcaa0e3aff5f, "program key drifted");
    assert_eq!(
        stations_bare.hash, 0x711e824d9ba9a21c,
        "stations key drifted"
    );
    assert_eq!(
        stations_diag.hash, 0xd288f846418cecc8,
        "stations+config key drifted"
    );
    assert_eq!(analysis.hash, 0x5d7c6b00d981aaa9, "analysis key drifted");
    assert_eq!(report.hash, 0xde31365c58413404, "report key drifted");

    let verification = verification_key(program, &VerifyOptions::default());
    assert_eq!(
        verification.hash, 0xdb7965301b4215dd,
        "verification key drifted"
    );
}

#[test]
fn stage_tags_partition_the_key_space() {
    let program = program_key("hotspot", &Params::tiny());
    assert_eq!(program.stage, Stage::Program);
    assert_eq!(stations_key(program, None).stage, Stage::Stations);
    let analysis = analysis_key(program, &AnalyzeOptions::default());
    assert_eq!(analysis.stage, Stage::Analysis);
    assert_eq!(
        report_key(analysis, ReportFormat::Json).stage,
        Stage::Report
    );
    let verification = verification_key(program, &VerifyOptions::default());
    assert_eq!(verification.stage, Stage::Verification);
    assert_ne!(
        verification.hash, analysis.hash,
        "verification and analysis stages must not alias"
    );
}

/// Every `Params` field must contribute to the program key — a field
/// that does not hash is a field whose change silently serves stale
/// artifacts. (The `StableKey` impls destructure exhaustively, so *new*
/// fields are compile errors until they are hashed; this test guards the
/// hashing of the fields that exist today.)
#[test]
fn every_params_field_changes_the_key() {
    let base = Params::tiny();
    let baseline = program_key("hotspot", &base);

    let variants = [
        Params {
            scale: diag_workloads::Scale::Small,
            ..base
        },
        base.with_threads(2),
        base.with_simt(true),
        Params { seed: 1, ..base },
    ];
    for (i, v) in variants.iter().enumerate() {
        assert_ne!(
            program_key("hotspot", v).hash,
            baseline.hash,
            "Params variant #{i} did not change the key"
        );
    }
    assert_ne!(
        program_key("nn", &base).hash,
        baseline.hash,
        "workload name did not change the key"
    );
}

#[test]
fn config_and_options_fields_change_their_keys() {
    let program = program_key("hotspot", &Params::tiny());

    let base_cfg = DiagConfig::f4c32();
    let mut cfg = base_cfg.clone();
    cfg.enable_reuse = !cfg.enable_reuse;
    assert_ne!(
        stations_key(program, Some(&cfg)).hash,
        stations_key(program, Some(&base_cfg)).hash,
        "DiagConfig change did not change the stations key"
    );
    assert_ne!(
        stations_key(program, None).hash,
        stations_key(program, Some(&base_cfg)).hash,
        "None config must not alias Some(config)"
    );

    let base_opts = AnalyzeOptions::default();
    let mut opts = AnalyzeOptions::default();
    opts.threads += 1;
    assert_ne!(
        analysis_key(program, &opts).hash,
        analysis_key(program, &base_opts).hash,
        "AnalyzeOptions change did not change the analysis key"
    );

    let analysis = analysis_key(program, &base_opts);
    assert_ne!(
        report_key(analysis, ReportFormat::Text).hash,
        report_key(analysis, ReportFormat::Json).hash,
        "report format did not change the report key"
    );

    let base_vopts = VerifyOptions::default();
    let threads_vopts = VerifyOptions {
        threads: base_vopts.threads + 1,
        ..base_vopts
    };
    let trap_vopts = VerifyOptions {
        trap_vector: Some(0x200),
        ..base_vopts
    };
    let base_vkey = verification_key(program, &base_vopts);
    assert_ne!(
        verification_key(program, &threads_vopts).hash,
        base_vkey.hash,
        "VerifyOptions::threads did not change the verification key"
    );
    assert_ne!(
        verification_key(program, &trap_vopts).hash,
        base_vkey.hash,
        "VerifyOptions::trap_vector did not change the verification key"
    );
}
