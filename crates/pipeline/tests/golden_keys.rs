//! Golden tests pinning artifact-key stability.
//!
//! The on-disk cache is only sound if the same typed inputs hash to the
//! same 64-bit key in every process, on every host, forever (within one
//! `SCHEMA_VERSION`). These literals were recorded once and must never
//! change silently: if a key scheme change is intentional, bump
//! [`diag_pipeline::SCHEMA_VERSION`] and re-record — old blobs are then
//! rejected by their embedded schema field instead of being misread.

use diag_analyze::AnalyzeOptions;
use diag_core::{DiagConfig, MachineSpec};
use diag_pipeline::{
    analysis_key, program_key, report_key, run_key, stations_key, verification_key, ReportFormat,
    Stage,
};
use diag_verify::VerifyOptions;
use diag_workloads::Params;

#[test]
fn keys_are_stable_across_processes() {
    let program = program_key("hotspot", &Params::tiny());
    let stations_bare = stations_key(program, None);
    let stations_diag = stations_key(program, Some(&DiagConfig::f4c32()));
    let analysis = analysis_key(program, &AnalyzeOptions::default());
    let report = report_key(analysis, ReportFormat::Text);

    // Recorded goldens. A mismatch means the key schema changed: every
    // cached blob in the wild is now unreachable (or worse, aliased).
    assert_eq!(program.hash, 0x9b90dcaa0e3aff5f, "program key drifted");
    assert_eq!(
        stations_bare.hash, 0x711e824d9ba9a21c,
        "stations key drifted"
    );
    assert_eq!(
        stations_diag.hash, 0xd288f846418cecc8,
        "stations+config key drifted"
    );
    assert_eq!(analysis.hash, 0x5d7c6b00d981aaa9, "analysis key drifted");
    assert_eq!(report.hash, 0xde31365c58413404, "report key drifted");

    let verification = verification_key(program, &VerifyOptions::default());
    assert_eq!(
        verification.hash, 0xdb7965301b4215dd,
        "verification key drifted"
    );

    let params = Params::tiny();
    assert_eq!(
        run_key("hotspot", &params, &MachineSpec::Diag(DiagConfig::f4c32())).hash,
        0x902b523a351e9ac8,
        "diag run key drifted"
    );
    assert_eq!(
        run_key("hotspot", &params, &MachineSpec::Ooo(12)).hash,
        0x5bef766d8e063d4e,
        "ooo run key drifted"
    );
    assert_eq!(
        run_key("hotspot", &params, &MachineSpec::InOrder).hash,
        0x4095a358ca6d4135,
        "inorder run key drifted"
    );
}

#[test]
fn stage_tags_partition_the_key_space() {
    let program = program_key("hotspot", &Params::tiny());
    assert_eq!(program.stage, Stage::Program);
    assert_eq!(stations_key(program, None).stage, Stage::Stations);
    let analysis = analysis_key(program, &AnalyzeOptions::default());
    assert_eq!(analysis.stage, Stage::Analysis);
    assert_eq!(
        report_key(analysis, ReportFormat::Json).stage,
        Stage::Report
    );
    let verification = verification_key(program, &VerifyOptions::default());
    assert_eq!(verification.stage, Stage::Verification);
    assert_eq!(
        run_key("hotspot", &Params::tiny(), &MachineSpec::InOrder).stage,
        Stage::Run
    );
    assert_ne!(
        verification.hash, analysis.hash,
        "verification and analysis stages must not alias"
    );
}

/// Every `Params` field must contribute to the program key — a field
/// that does not hash is a field whose change silently serves stale
/// artifacts. (The `StableKey` impls destructure exhaustively, so *new*
/// fields are compile errors until they are hashed; this test guards the
/// hashing of the fields that exist today.)
#[test]
fn every_params_field_changes_the_key() {
    let base = Params::tiny();
    let baseline = program_key("hotspot", &base);

    let variants = [
        Params {
            scale: diag_workloads::Scale::Small,
            ..base
        },
        base.with_threads(2),
        base.with_simt(true),
        Params { seed: 1, ..base },
    ];
    for (i, v) in variants.iter().enumerate() {
        assert_ne!(
            program_key("hotspot", v).hash,
            baseline.hash,
            "Params variant #{i} did not change the key"
        );
    }
    assert_ne!(
        program_key("nn", &base).hash,
        baseline.hash,
        "workload name did not change the key"
    );
}

#[test]
fn config_and_options_fields_change_their_keys() {
    let program = program_key("hotspot", &Params::tiny());

    let base_cfg = DiagConfig::f4c32();
    let mut cfg = base_cfg.clone();
    cfg.enable_reuse = !cfg.enable_reuse;
    assert_ne!(
        stations_key(program, Some(&cfg)).hash,
        stations_key(program, Some(&base_cfg)).hash,
        "DiagConfig change did not change the stations key"
    );
    assert_ne!(
        stations_key(program, None).hash,
        stations_key(program, Some(&base_cfg)).hash,
        "None config must not alias Some(config)"
    );

    let base_opts = AnalyzeOptions::default();
    let mut opts = AnalyzeOptions::default();
    opts.threads += 1;
    assert_ne!(
        analysis_key(program, &opts).hash,
        analysis_key(program, &base_opts).hash,
        "AnalyzeOptions change did not change the analysis key"
    );

    let analysis = analysis_key(program, &base_opts);
    assert_ne!(
        report_key(analysis, ReportFormat::Text).hash,
        report_key(analysis, ReportFormat::Json).hash,
        "report format did not change the report key"
    );

    let base_vopts = VerifyOptions::default();
    let threads_vopts = VerifyOptions {
        threads: base_vopts.threads + 1,
        ..base_vopts
    };
    let trap_vopts = VerifyOptions {
        trap_vector: Some(0x200),
        ..base_vopts
    };
    let base_vkey = verification_key(program, &base_vopts);
    assert_ne!(
        verification_key(program, &threads_vopts).hash,
        base_vkey.hash,
        "VerifyOptions::threads did not change the verification key"
    );
    assert_ne!(
        verification_key(program, &trap_vopts).hash,
        base_vkey.hash,
        "VerifyOptions::trap_vector did not change the verification key"
    );
}

/// Flipping any single `DiagConfig` field must change `run_key` — a
/// field that does not hash is a field whose change silently serves a
/// stale run. One mutation per field, applied to the F4C32 base.
#[test]
fn every_diag_config_field_changes_the_run_key() {
    let params = Params::tiny();
    let key_of = |cfg: DiagConfig| run_key("hotspot", &params, &MachineSpec::Diag(cfg)).hash;
    let base = DiagConfig::f4c32();
    let baseline = key_of(base.clone());

    type Mutation = Box<dyn Fn(&mut DiagConfig)>;
    let mutations: Vec<(&str, Mutation)> = vec![
        ("name", Box::new(|c| c.name.push('X'))),
        ("pes_per_cluster", Box::new(|c| c.pes_per_cluster += 8)),
        ("clusters", Box::new(|c| c.clusters /= 2)),
        ("ring_clusters", Box::new(|c| c.ring_clusters += 2)),
        (
            "lane_buffer_interval",
            Box::new(|c| c.lane_buffer_interval /= 2),
        ),
        ("fp_enabled", Box::new(|c| c.fp_enabled = !c.fp_enabled)),
        ("freq_ghz", Box::new(|c| c.freq_ghz += 0.5)),
        ("l1i", Box::new(|c| c.l1i.ways += 1)),
        ("l1d", Box::new(|c| c.l1d.size_bytes *= 2)),
        ("l2", Box::new(|c| c.l2 = None)),
        ("lsu_depth", Box::new(|c| c.lsu_depth /= 2)),
        ("memlane_capacity", Box::new(|c| c.memlane_capacity *= 2)),
        ("line_load_cycles", Box::new(|c| c.line_load_cycles += 1)),
        ("max_cycles", Box::new(|c| c.max_cycles /= 2)),
        (
            "enable_reuse",
            Box::new(|c| c.enable_reuse = !c.enable_reuse),
        ),
        ("enable_simt", Box::new(|c| c.enable_simt = !c.enable_simt)),
        ("trap_vector", Box::new(|c| c.trap_vector = Some(0x100))),
        (
            "interrupt_at",
            Box::new(|c| c.interrupt_at = Some((50, 0x100))),
        ),
        ("commit_width", Box::new(|c| c.commit_width /= 2)),
        (
            "speculative_datapaths",
            Box::new(|c| c.speculative_datapaths = !c.speculative_datapaths),
        ),
        (
            "collect_trace",
            Box::new(|c| c.collect_trace = !c.collect_trace),
        ),
    ];
    for (field, mutate) in mutations {
        let mut cfg = base.clone();
        mutate(&mut cfg);
        assert_ne!(
            key_of(cfg),
            baseline,
            "DiagConfig::{field} did not change the run key"
        );
    }
}

/// Machine kinds (and the baseline core count) partition the run-key
/// space: the kind discriminant is folded before the fields.
#[test]
fn machine_kinds_partition_the_run_key_space() {
    let params = Params::tiny();
    let diag = run_key("hotspot", &params, &MachineSpec::Diag(DiagConfig::f4c32()));
    let ooo = run_key("hotspot", &params, &MachineSpec::Ooo(12));
    let ooo1 = run_key("hotspot", &params, &MachineSpec::Ooo(1));
    let inorder = run_key("hotspot", &params, &MachineSpec::InOrder);
    assert_ne!(diag.hash, ooo.hash);
    assert_ne!(diag.hash, inorder.hash);
    assert_ne!(ooo.hash, inorder.hash);
    assert_ne!(ooo.hash, ooo1.hash, "core count must change the key");
    assert_ne!(
        run_key("nn", &params, &MachineSpec::InOrder).hash,
        inorder.hash,
        "workload name must change the key"
    );
    assert_ne!(
        run_key(
            "hotspot",
            &Params::tiny().with_threads(2),
            &MachineSpec::InOrder
        )
        .hash,
        inorder.hash,
        "params must change the key"
    );
}
