//! The in-memory artifact layer: one typed store per pipeline stage.
//!
//! Each store maps a key hash to a once-initialized cell. Concurrent
//! requests for the same key (the sweep runner's worker pool) block on the
//! one in-flight build instead of duplicating it; every later request is a
//! hit that clones an `Arc`. Build failures are cached too — stage inputs
//! fully determine the outcome, so retrying an identical failed build
//! would only repeat the work to reproduce the same message.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

type Cell<T> = Arc<OnceLock<Result<Arc<T>, String>>>;

/// Hit/build counters of one stage store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageCounters {
    /// Requests served from an already-initialized cell.
    pub hits: u64,
    /// Requests that ran the build closure.
    pub builds: u64,
}

/// A content-addressed, once-per-key store for one artifact type.
#[derive(Debug)]
pub struct StageStore<T> {
    cells: Mutex<HashMap<u64, Cell<T>>>,
    hits: AtomicU64,
    builds: AtomicU64,
}

impl<T> Default for StageStore<T> {
    fn default() -> StageStore<T> {
        StageStore::new()
    }
}

impl<T> StageStore<T> {
    /// An empty store.
    pub fn new() -> StageStore<T> {
        StageStore {
            cells: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            builds: AtomicU64::new(0),
        }
    }

    /// The artifact for `key`, building it with `build` exactly once per
    /// key per store lifetime. Returns the build's result (shared) and
    /// whether *this* call ran the build.
    ///
    /// # Errors
    ///
    /// Returns the build error, first-hand or cached.
    pub fn get_or_build<F>(&self, key: u64, build: F) -> Result<(Arc<T>, bool), String>
    where
        F: FnOnce() -> Result<Arc<T>, String>,
    {
        let cell = {
            // A panic elsewhere never corrupts the map (insertions are
            // atomic per entry), so recover from poisoning instead of
            // cascading the panic into every later request.
            let mut cells = self.cells.lock().unwrap_or_else(PoisonError::into_inner);
            Arc::clone(cells.entry(key).or_default())
        };
        // The map lock is released before building: a slow build blocks
        // only same-key requests (on the OnceLock), never the whole store.
        let mut built = false;
        let result = cell
            .get_or_init(|| {
                built = true;
                build()
            })
            .clone();
        if built {
            self.builds.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        result.map(|arc| (arc, built))
    }

    /// The cached artifact for `key`, if a build already completed.
    pub fn peek(&self, key: u64) -> Option<Arc<T>> {
        let cell = {
            let cells = self.cells.lock().unwrap_or_else(PoisonError::into_inner);
            Arc::clone(cells.get(&key)?)
        };
        cell.get().and_then(|r| r.as_ref().ok().cloned())
    }

    /// Counters since construction.
    pub fn counters(&self) -> StageCounters {
        StageCounters {
            hits: self.hits.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_once_then_hits() {
        let store: StageStore<u32> = StageStore::new();
        let (v, built) = store.get_or_build(7, || Ok(Arc::new(42))).unwrap();
        assert_eq!((*v, built), (42, true));
        let (v, built) = store
            .get_or_build(7, || panic!("must not rebuild"))
            .unwrap();
        assert_eq!((*v, built), (42, false));
        assert_eq!(store.counters(), StageCounters { hits: 1, builds: 1 });
    }

    #[test]
    fn failures_are_cached() {
        let store: StageStore<u32> = StageStore::new();
        let err = store
            .get_or_build(1, || Err("boom".to_string()))
            .unwrap_err();
        assert_eq!(err, "boom");
        let err = store
            .get_or_build(1, || panic!("must not rebuild"))
            .unwrap_err();
        assert_eq!(err, "boom");
    }

    #[test]
    fn peek_sees_only_successes() {
        let store: StageStore<u32> = StageStore::new();
        assert!(store.peek(5).is_none());
        let _ = store.get_or_build(5, || Ok(Arc::new(9)));
        assert_eq!(store.peek(5).as_deref(), Some(&9));
        let _ = store.get_or_build(6, || Err("no".to_string()));
        assert!(store.peek(6).is_none());
    }

    #[test]
    fn concurrent_same_key_builds_once() {
        let store: Arc<StageStore<u64>> = Arc::new(StageStore::new());
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let store = Arc::clone(&store);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    store.get_or_build(3, || Ok(Arc::new(11))).unwrap().0
                })
            })
            .collect();
        for h in handles {
            assert_eq!(*h.join().unwrap(), 11);
        }
        assert_eq!(store.counters().builds, 1);
        assert_eq!(store.counters().hits, 7);
    }
}
