//! # diag-pipeline — the staged, content-addressed preparation pipeline
//!
//! Everything the workspace runs is prepared through the same chain:
//!
//! ```text
//! WorkloadSpec + Params ──→ Program (assembly + inputs + verify)
//! Program + DiagConfig ──→ StationTable (text lowering)
//! Program + AnalyzeOptions ──→ Analysis (+ rendered reports)
//! Workload + Params + MachineSpec ──→ RunStats (memoized runs)
//! ```
//!
//! Historically every harness subcommand, sweep job, and example re-ran
//! this chain from scratch. This crate models each stage as a
//! *content-addressed artifact*: a stable 64-bit structural hash of the
//! typed stage inputs ([`key`]) names the result, an in-memory store
//! ([`store`]) shares one build per key across a whole process (including
//! the parallel sweep runner's workers), and an on-disk blob layer
//! ([`disk`], [`blob`]) carries images and reports across processes —
//! versioned, checksummed, LRU-bounded, and safe to delete at any time.
//!
//! The one entry point consumers hold is the [`Session`].
//!
//! # Examples
//!
//! ```
//! use diag_pipeline::Session;
//! use diag_workloads::{find, Params};
//!
//! let session = Session::in_memory();
//! let spec = find("hotspot").expect("registered workload");
//! let params = Params::tiny();
//! let first = session.workload(&spec, &params)?;
//! let again = session.workload(&spec, &params)?;
//! // Same Arc: the workload was assembled exactly once.
//! assert!(std::sync::Arc::ptr_eq(&first, &again));
//! # Ok::<(), String>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod blob;
pub mod disk;
pub mod key;
pub mod session;
pub mod store;

pub use disk::{DiskCache, DiskStats};
pub use key::{
    analysis_key, program_key, report_key, run_key, stations_key, verification_key, ArtifactKey,
    ReportFormat, StableHasher, StableKey, Stage, SCHEMA_VERSION,
};
pub use session::{CacheCounters, Session};
pub use store::{StageCounters, StageStore};
