//! The [`Session`]: one artifact store shared by everything a process
//! prepares.
//!
//! A `Session` owns the in-memory stage stores and (optionally) the
//! on-disk blob layer, and exposes one method per pipeline stage. Callers
//! never check "is this cached?" — they ask for the artifact and the
//! session returns the shared copy, building at most once per key:
//!
//! - [`Session::workload`] — `WorkloadSpec + Params → BuiltWorkload`
//!   (assembly + input generation + verify closure). Memory-only: the
//!   verify closure cannot round-trip through disk.
//! - [`Session::program`] — the bare [`Program`] image. Served from the
//!   built workload when present, else from a disk blob (no assembly!),
//!   else by building the workload.
//! - [`Session::stations`] — `Program + DiagConfig → StationTable`
//!   lowering, shared by every machine that mounts the same program.
//! - [`Session::analysis`] / [`Session::analysis_report`] — static
//!   analysis and its rendered reports; reports also persist as blobs.
//! - [`Session::verification`] / [`Session::verification_report`] — the
//!   abstract-interpretation verifier's facts; verifications persist as
//!   blobs so warm `--strict` runs never re-run the fixpoint.
//! - [`Session::cached_run`] / [`Session::record_run`] — memoized
//!   [`RunStats`] of completed, verified simulation runs keyed by
//!   `run_key(workload, params, machine_spec)`; a warm resubmission
//!   skips simulation entirely. Only successes are memoized: a failed
//!   run produces no artifact, and its typed failure taxonomy
//!   (`RunError` upstream) does not round-trip through a string cache.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use diag_analyze::{analyze, json_report, text_report, Analysis, AnalyzeOptions};
use diag_asm::Program;
use diag_core::DiagConfig;
use diag_isa::StationTable;
use diag_sim::RunStats;
use diag_workloads::{BuiltWorkload, Params, WorkloadSpec};

use crate::blob::{
    decode_program, decode_run_stats, decode_verification, encode_program, encode_run_stats,
    encode_verification,
};
use crate::disk::DiskCache;
use crate::key::{
    analysis_key, program_key, report_key, stations_key, verification_key, ArtifactKey,
    ReportFormat, Stage,
};
use crate::store::{StageCounters, StageStore};

/// Hit/build counters across every layer of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Built-workload stage (assembly + verify closure).
    pub workloads: StageCounters,
    /// Program-image stage (builds here are clones or blob decodes, not
    /// assemblies — `diag_workloads::build_calls` counts those).
    pub programs: StageCounters,
    /// Station-table lowering stage.
    pub stations: StageCounters,
    /// Static-analysis stage.
    pub analyses: StageCounters,
    /// Static-verification stage.
    pub verifications: StageCounters,
    /// Rendered-report stage.
    pub reports: StageCounters,
    /// Run-stage memoization (hits = simulations skipped, builds =
    /// simulated runs recorded).
    pub runs: StageCounters,
    /// Artifacts served from on-disk blobs.
    pub disk_hits: u64,
    /// Blobs written to disk.
    pub disk_writes: u64,
    /// Blobs evicted from disk to stay under the byte budget.
    pub disk_evictions: u64,
}

impl CacheCounters {
    /// Total in-memory hits across all stages.
    pub fn hits(&self) -> u64 {
        self.workloads.hits
            + self.programs.hits
            + self.stations.hits
            + self.analyses.hits
            + self.verifications.hits
            + self.reports.hits
            + self.runs.hits
    }

    /// Total builds across all stages.
    pub fn builds(&self) -> u64 {
        self.workloads.builds
            + self.programs.builds
            + self.stations.builds
            + self.analyses.builds
            + self.verifications.builds
            + self.reports.builds
            + self.runs.builds
    }

    /// One-line summary for status output.
    pub fn summary(&self) -> String {
        format!(
            "cache: {} hits, {} builds (workloads {}/{}, stations {}/{}, analyses {}/{}, \
             verifications {}/{}, reports {}/{}, runs {}/{}; disk {} hits, {} writes, \
             {} evictions)",
            self.hits(),
            self.builds(),
            self.workloads.hits,
            self.workloads.builds,
            self.stations.hits,
            self.stations.builds,
            self.analyses.hits,
            self.analyses.builds,
            self.verifications.hits,
            self.verifications.builds,
            self.reports.hits,
            self.reports.builds,
            self.runs.hits,
            self.runs.builds,
            self.disk_hits,
            self.disk_writes,
            self.disk_evictions,
        )
    }
}

/// A process-wide artifact store over the preparation pipeline.
#[derive(Debug, Default)]
pub struct Session {
    workloads: StageStore<BuiltWorkload>,
    programs: StageStore<Program>,
    stations: StageStore<StationTable>,
    analyses: StageStore<Analysis>,
    verifications: StageStore<diag_verify::Verification>,
    reports: StageStore<String>,
    // Run memoization has its own tiny store rather than a StageStore:
    // only successes are recorded (a StageStore caches failures, which
    // would flatten the caller's typed RunError taxonomy into strings),
    // and RunStats is small and Copy so no Arc sharing is needed.
    runs: Mutex<HashMap<u64, RunStats>>,
    run_hits: AtomicU64,
    run_builds: AtomicU64,
    disk: Option<DiskCache>,
    disk_hits: AtomicU64,
    disk_writes: AtomicU64,
}

impl Session {
    /// A session with no on-disk layer (unit tests, `--no-cache`).
    pub fn in_memory() -> Session {
        Session::default()
    }

    /// A session backed by `disk` for cross-process artifact reuse.
    pub fn with_disk(disk: DiskCache) -> Session {
        Session {
            disk: Some(disk),
            ..Session::default()
        }
    }

    /// A session over the conventional cache directory
    /// ([`DiskCache::default_dir`]); degrades to in-memory if the
    /// directory cannot be created.
    pub fn open_default() -> Session {
        match DiskCache::open(DiskCache::default_dir(), DiskCache::DEFAULT_BUDGET) {
            Ok(disk) => Session::with_disk(disk),
            Err(_) => Session::in_memory(),
        }
    }

    /// The on-disk layer, if this session has one.
    pub fn disk(&self) -> Option<&DiskCache> {
        self.disk.as_ref()
    }

    /// The built workload (program + verify closure) for
    /// `(spec, params)`, assembling at most once per key.
    ///
    /// # Errors
    ///
    /// Returns the build error, first-hand or cached.
    pub fn workload(
        &self,
        spec: &WorkloadSpec,
        params: &Params,
    ) -> Result<Arc<BuiltWorkload>, String> {
        let key = program_key(spec.name, params);
        let (built, fresh) = self.workloads.get_or_build(key.hash, || {
            let wl = spec.build(params).map_err(|e| e.to_string())?;
            Ok(Arc::new(wl))
        })?;
        if fresh {
            // Persist the image so future processes can analyze without
            // assembling (the verify closure itself cannot persist).
            if let Some(disk) = &self.disk {
                disk.store(key, &encode_program(&built.program));
                self.disk_writes.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(built)
    }

    /// The bare program image for `(spec, params)`. Prefers the built
    /// workload already in memory, then an on-disk blob, and only then
    /// assembles — so analysis-only consumers never pay for input
    /// generation twice across processes.
    ///
    /// # Errors
    ///
    /// Returns the workload build error if assembly is needed and fails.
    pub fn program(&self, spec: &WorkloadSpec, params: &Params) -> Result<Arc<Program>, String> {
        let key = program_key(spec.name, params);
        if let Some(wl) = self.workloads.peek(key.hash) {
            return Ok(self
                .programs
                .get_or_build(key.hash, || Ok(Arc::new(wl.program.clone())))?
                .0);
        }
        let (program, _) = self.programs.get_or_build(key.hash, || {
            if let Some(disk) = &self.disk {
                if let Some(payload) = disk.load(key) {
                    if let Some(program) = decode_program(&payload) {
                        self.disk_hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(Arc::new(program));
                    }
                }
            }
            let wl = self.workload(spec, params)?;
            Ok(Arc::new(wl.program.clone()))
        })?;
        Ok(program)
    }

    /// The whole-text [`StationTable`] lowering of `(spec, params)`,
    /// shared by every machine that mounts the same program. `config` is
    /// the DiAG geometry the table serves (`None` for the baselines).
    ///
    /// # Errors
    ///
    /// Returns the upstream program error if the image must be built and
    /// fails.
    pub fn stations(
        &self,
        spec: &WorkloadSpec,
        params: &Params,
        config: Option<&DiagConfig>,
    ) -> Result<Arc<StationTable>, String> {
        let key = stations_key(program_key(spec.name, params), config);
        let (table, _) = self.stations.get_or_build(key.hash, || {
            let program = self.program(spec, params)?;
            Ok(Arc::new(StationTable::build(
                program.text_base(),
                program.text(),
            )))
        })?;
        Ok(table)
    }

    /// The static analysis of `(spec, params)` under `opts`.
    ///
    /// # Errors
    ///
    /// Returns the upstream program error if the image must be built and
    /// fails.
    pub fn analysis(
        &self,
        spec: &WorkloadSpec,
        params: &Params,
        opts: &AnalyzeOptions,
    ) -> Result<Arc<Analysis>, String> {
        let key = analysis_key(program_key(spec.name, params), opts);
        let (analysis, _) = self.analyses.get_or_build(key.hash, || {
            let program = self.program(spec, params)?;
            Ok(Arc::new(analyze(&program, opts)))
        })?;
        Ok(analysis)
    }

    /// The rendered analysis report, persisted as a disk blob so warm
    /// runs reproduce it byte-for-byte.
    ///
    /// # Errors
    ///
    /// Returns the upstream program error if the image must be built and
    /// fails.
    pub fn analysis_report(
        &self,
        spec: &WorkloadSpec,
        params: &Params,
        opts: &AnalyzeOptions,
        format: ReportFormat,
    ) -> Result<Arc<String>, String> {
        let key = report_key(analysis_key(program_key(spec.name, params), opts), format);
        let (report, _) = self.reports.get_or_build(key.hash, || {
            if let Some(disk) = &self.disk {
                if let Some(payload) = disk.load(key) {
                    if let Ok(text) = String::from_utf8(payload) {
                        self.disk_hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(Arc::new(text));
                    }
                }
            }
            let program = self.program(spec, params)?;
            let analysis = self.analysis(spec, params, opts)?;
            let text = match format {
                ReportFormat::Text => text_report(spec.name, &program, &analysis),
                ReportFormat::Json => json_report(spec.name, &analysis),
            };
            if let Some(disk) = &self.disk {
                disk.store(key, text.as_bytes());
                self.disk_writes.fetch_add(1, Ordering::Relaxed);
            }
            Ok(Arc::new(text))
        })?;
        Ok(report)
    }

    /// The static verification of `(spec, params)` under `opts`. Served
    /// from memory, then from an on-disk blob (no fixpoint run!), and
    /// only then by running the abstract interpreter —
    /// `diag_verify::fixpoint_runs()` stays flat on warm paths.
    ///
    /// # Errors
    ///
    /// Returns the upstream program error if the image must be built and
    /// fails.
    pub fn verification(
        &self,
        spec: &WorkloadSpec,
        params: &Params,
        opts: &diag_verify::VerifyOptions,
    ) -> Result<Arc<diag_verify::Verification>, String> {
        let key = verification_key(program_key(spec.name, params), opts);
        let (verification, _) = self.verifications.get_or_build(key.hash, || {
            if let Some(disk) = &self.disk {
                if let Some(payload) = disk.load(key) {
                    if let Some(v) = decode_verification(&payload) {
                        self.disk_hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(Arc::new(v));
                    }
                }
            }
            let program = self.program(spec, params)?;
            let v = diag_verify::verify(&program, opts);
            if let Some(disk) = &self.disk {
                disk.store(key, &encode_verification(&v));
                self.disk_writes.fetch_add(1, Ordering::Relaxed);
            }
            Ok(Arc::new(v))
        })?;
        Ok(verification)
    }

    /// The rendered verification report, persisted as a disk blob so
    /// warm runs reproduce it byte-for-byte.
    ///
    /// # Errors
    ///
    /// Returns the upstream program error if the image must be built and
    /// fails.
    pub fn verification_report(
        &self,
        spec: &WorkloadSpec,
        params: &Params,
        opts: &diag_verify::VerifyOptions,
        format: ReportFormat,
    ) -> Result<Arc<String>, String> {
        let key = report_key(
            verification_key(program_key(spec.name, params), opts),
            format,
        );
        let (report, _) = self.reports.get_or_build(key.hash, || {
            if let Some(disk) = &self.disk {
                if let Some(payload) = disk.load(key) {
                    if let Ok(text) = String::from_utf8(payload) {
                        self.disk_hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(Arc::new(text));
                    }
                }
            }
            let program = self.program(spec, params)?;
            let verification = self.verification(spec, params, opts)?;
            let text = match format {
                ReportFormat::Text => diag_verify::text_report(spec.name, &program, &verification),
                ReportFormat::Json => diag_verify::json_report(spec.name, &verification),
            };
            if let Some(disk) = &self.disk {
                disk.store(key, text.as_bytes());
                self.disk_writes.fetch_add(1, Ordering::Relaxed);
            }
            Ok(Arc::new(text))
        })?;
        Ok(report)
    }

    /// The memoized statistics of a completed, verified run, if this
    /// session (or its disk layer) has them. `key` must be a
    /// [`Stage::Run`] key from [`crate::run_key`]. A hit counts on the
    /// run-stage counters; the caller skips simulation entirely.
    pub fn cached_run(&self, key: ArtifactKey) -> Option<RunStats> {
        debug_assert_eq!(key.stage, Stage::Run);
        {
            let runs = self.runs.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(stats) = runs.get(&key.hash) {
                self.run_hits.fetch_add(1, Ordering::Relaxed);
                return Some(*stats);
            }
        }
        let disk = self.disk.as_ref()?;
        let stats = decode_run_stats(&disk.load(key)?)?;
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
        self.run_hits.fetch_add(1, Ordering::Relaxed);
        self.runs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key.hash, stats);
        Some(stats)
    }

    /// Records the statistics of a freshly simulated, verified run under
    /// `key` (a [`Stage::Run`] key), counting one run-stage build and
    /// persisting a disk blob when this session has a disk layer.
    /// Concurrent same-key simulations both record; the values are
    /// identical (machines are deterministic), so last-write-wins is
    /// harmless.
    pub fn record_run(&self, key: ArtifactKey, stats: RunStats) {
        debug_assert_eq!(key.stage, Stage::Run);
        self.run_builds.fetch_add(1, Ordering::Relaxed);
        self.runs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key.hash, stats);
        if let Some(disk) = &self.disk {
            disk.store(key, &encode_run_stats(&stats));
            self.disk_writes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counters across all layers since this session was created.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            workloads: self.workloads.counters(),
            programs: self.programs.counters(),
            stations: self.stations.counters(),
            analyses: self.analyses.counters(),
            verifications: self.verifications.counters(),
            reports: self.reports.counters(),
            runs: StageCounters {
                hits: self.run_hits.load(Ordering::Relaxed),
                builds: self.run_builds.load(Ordering::Relaxed),
            },
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_writes: self.disk_writes.load(Ordering::Relaxed),
            disk_evictions: self.disk.as_ref().map_or(0, DiskCache::evictions),
        }
    }

    /// Publish the session's cache counters into `registry` as gauges,
    /// one family per fact: absolute hit/build levels per stage, a
    /// derived hit ratio in permille (integer math, so the exposition
    /// stays deterministic), and the disk layer's hit/write/eviction
    /// totals. Call before snapshotting — gauges are set, not
    /// incremented, so repeated exports are idempotent.
    pub fn export_telemetry(&self, registry: &diag_telemetry::Registry) {
        let c = self.counters();
        let stages: [(&str, StageCounters); 7] = [
            ("workloads", c.workloads),
            ("programs", c.programs),
            ("stations", c.stations),
            ("analyses", c.analyses),
            ("verifications", c.verifications),
            ("reports", c.reports),
            ("runs", c.runs),
        ];
        for (stage, sc) in stages {
            let labels = [("stage", stage)];
            registry
                .gauge("diag_cache_stage_hits", &labels)
                .set(sc.hits);
            registry
                .gauge("diag_cache_stage_builds", &labels)
                .set(sc.builds);
            let total = sc.hits + sc.builds;
            let permille = (sc.hits * 1000).checked_div(total).unwrap_or(0);
            registry
                .gauge("diag_cache_stage_hit_ratio_permille", &labels)
                .set(permille);
        }
        registry.gauge("diag_cache_disk_hits", &[]).set(c.disk_hits);
        registry
            .gauge("diag_cache_disk_writes", &[])
            .set(c.disk_writes);
        registry
            .gauge("diag_cache_disk_evictions", &[])
            .set(c.disk_evictions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_workloads::find;

    #[test]
    fn workload_assembles_once() {
        let session = Session::in_memory();
        let spec = find("hotspot").expect("registered");
        let params = Params::tiny();
        let before = diag_workloads::build_calls();
        let a = session.workload(&spec, &params).unwrap();
        let b = session.workload(&spec, &params).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(diag_workloads::build_calls() - before, 1);
    }

    #[test]
    fn stations_lower_once_and_key_on_config() {
        let session = Session::in_memory();
        let spec = find("hotspot").expect("registered");
        let params = Params::tiny();
        let a = session.stations(&spec, &params, None).unwrap();
        let b = session.stations(&spec, &params, None).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let diag = DiagConfig::f4c32();
        let c = session.stations(&spec, &params, Some(&diag)).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "config is part of the key");
    }

    #[test]
    fn analysis_and_report_are_shared() {
        let session = Session::in_memory();
        let spec = find("nn").expect("registered");
        let params = Params::tiny();
        let opts = AnalyzeOptions::default();
        let a = session.analysis(&spec, &params, &opts).unwrap();
        let b = session.analysis(&spec, &params, &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let t1 = session
            .analysis_report(&spec, &params, &opts, ReportFormat::Text)
            .unwrap();
        let t2 = session
            .analysis_report(&spec, &params, &opts, ReportFormat::Text)
            .unwrap();
        assert!(Arc::ptr_eq(&t1, &t2));
        assert!(t1.contains("nn"));
    }

    #[test]
    fn run_memoization_counts_and_persists() {
        let dir = std::env::temp_dir().join(format!("diag-run-memo-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = crate::run_key("hotspot", &Params::tiny(), &diag_core::MachineSpec::InOrder);
        let stats = RunStats {
            cycles: 777,
            committed: 111,
            ..RunStats::default()
        };

        let cold = Session::with_disk(DiskCache::open(&dir, DiskCache::DEFAULT_BUDGET).unwrap());
        assert_eq!(cold.cached_run(key), None, "miss counts nothing");
        assert_eq!(cold.counters().runs, StageCounters::default());
        cold.record_run(key, stats);
        assert_eq!(cold.cached_run(key), Some(stats));
        let c = cold.counters();
        assert_eq!((c.runs.hits, c.runs.builds), (1, 1));
        assert_eq!(c.disk_writes, 1);

        // A fresh session over the same directory serves the run from
        // its blob — a disk hit plus a run hit, zero builds.
        let warm = Session::with_disk(DiskCache::open(&dir, DiskCache::DEFAULT_BUDGET).unwrap());
        assert_eq!(warm.cached_run(key), Some(stats));
        let c = warm.counters();
        assert_eq!((c.runs.hits, c.runs.builds), (1, 0));
        assert_eq!(c.disk_hits, 1);

        // In-memory sessions memoize within the process only.
        let mem = Session::in_memory();
        assert_eq!(mem.cached_run(key), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn telemetry_export_mirrors_counters() {
        let session = Session::in_memory();
        let spec = find("hotspot").expect("registered");
        let params = Params::tiny();
        let _ = session.workload(&spec, &params).unwrap();
        let _ = session.workload(&spec, &params).unwrap();
        let registry = diag_telemetry::Registry::new();
        session.export_telemetry(&registry);
        let labels = [("stage", "workloads")];
        assert_eq!(registry.gauge("diag_cache_stage_hits", &labels).get(), 1);
        assert_eq!(registry.gauge("diag_cache_stage_builds", &labels).get(), 1);
        assert_eq!(
            registry
                .gauge("diag_cache_stage_hit_ratio_permille", &labels)
                .get(),
            500
        );
        // Gauges are set, not incremented: re-export is idempotent.
        session.export_telemetry(&registry);
        assert_eq!(registry.gauge("diag_cache_stage_hits", &labels).get(), 1);
        assert_eq!(registry.gauge("diag_cache_disk_evictions", &[]).get(), 0);
    }

    #[test]
    fn disk_layer_serves_programs_across_sessions() {
        let dir = std::env::temp_dir().join(format!("diag-session-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = find("hotspot").expect("registered");
        let params = Params::tiny();

        let cold = Session::with_disk(DiskCache::open(&dir, DiskCache::DEFAULT_BUDGET).unwrap());
        let built = cold.workload(&spec, &params).unwrap();
        assert_eq!(cold.counters().disk_writes, 1);

        // A fresh session (fresh memory layer) over the same directory
        // gets the image from disk without assembling.
        let warm = Session::with_disk(DiskCache::open(&dir, DiskCache::DEFAULT_BUDGET).unwrap());
        let before = diag_workloads::build_calls();
        let image = warm.program(&spec, &params).unwrap();
        assert_eq!(diag_workloads::build_calls(), before, "no assembly");
        assert_eq!(warm.counters().disk_hits, 1);
        assert_eq!(*image, built.program);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
