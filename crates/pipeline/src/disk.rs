//! The on-disk artifact layer.
//!
//! Blobs live as one file per key under a cache directory (default
//! `target/diag-cache/`), written atomically (temp file + rename) and
//! bounded by a byte budget with least-recently-used eviction: every load
//! refreshes the file's modification time, and after every store the
//! oldest files are deleted until the directory fits the budget again.
//! All operations are best-effort — an unwritable or corrupt cache
//! degrades to a rebuild, never to an error the caller sees.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::SystemTime;

use crate::blob::{frame, unframe};
use crate::key::ArtifactKey;

/// File extension of artifact blobs.
const BLOB_EXT: &str = "blob";

/// Aggregate size of the on-disk cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskStats {
    /// Number of blob files.
    pub files: u64,
    /// Total blob bytes.
    pub bytes: u64,
}

/// A directory of framed artifact blobs with an LRU byte budget.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    budget_bytes: u64,
    evictions: AtomicU64,
}

impl DiskCache {
    /// Default eviction budget: plenty for every workload × scale ×
    /// config artifact in the workspace, small enough to stay polite in
    /// `target/`.
    pub const DEFAULT_BUDGET: u64 = 64 << 20;

    /// The conventional cache location: `target/diag-cache` under the
    /// enclosing workspace root (the nearest ancestor of the working
    /// directory holding a `Cargo.lock`), so every process of one
    /// checkout shares a cache no matter which crate it runs from.
    /// `CARGO_TARGET_DIR` is honored, and a process outside any
    /// workspace falls back to the working directory.
    pub fn default_dir() -> PathBuf {
        if let Some(target) = std::env::var_os("CARGO_TARGET_DIR") {
            return PathBuf::from(target).join("diag-cache");
        }
        let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        loop {
            if dir.join("Cargo.lock").exists() {
                return dir.join("target/diag-cache");
            }
            if !dir.pop() {
                return PathBuf::from("target/diag-cache");
            }
        }
    }

    /// Opens (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>, budget_bytes: u64) -> io::Result<DiskCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DiskCache {
            dir,
            budget_bytes,
            evictions: AtomicU64::new(0),
        })
    }

    /// Blobs this handle has evicted to stay under budget. Per handle,
    /// not per directory: a fresh process starts at zero.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, key: ArtifactKey) -> PathBuf {
        self.dir.join(format!("{key}.{BLOB_EXT}"))
    }

    /// Loads and validates the payload stored for `key`. A blob that
    /// fails validation (wrong magic/schema/key, truncation, checksum
    /// mismatch) is deleted so the slot rebuilds cleanly.
    pub fn load(&self, key: ArtifactKey) -> Option<Vec<u8>> {
        let path = self.path(key);
        let bytes = fs::read(&path).ok()?;
        match unframe(key, &bytes) {
            Some(payload) => {
                // Refresh recency so the LRU sweep keeps hot artifacts.
                if let Ok(f) = fs::File::open(&path) {
                    let _ = f.set_modified(SystemTime::now());
                }
                Some(payload)
            }
            None => {
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Stores `payload` for `key` (atomic rename), then evicts
    /// least-recently-used blobs until the cache fits its budget.
    /// Best-effort: I/O failures leave the cache cold, nothing more.
    pub fn store(&self, key: ArtifactKey, payload: &[u8]) {
        let blob = frame(key, payload);
        let path = self.path(key);
        let tmp = self.dir.join(format!("{key}.tmp"));
        if fs::write(&tmp, &blob).is_ok() && fs::rename(&tmp, &path).is_err() {
            let _ = fs::remove_file(&tmp);
        }
        self.evict();
    }

    /// Current file and byte totals.
    pub fn stats(&self) -> DiskStats {
        let mut stats = DiskStats::default();
        for (_, len, _) in self.entries() {
            stats.files += 1;
            stats.bytes += len;
        }
        stats
    }

    /// Deletes every blob. Returns the number of files removed.
    pub fn clear(&self) -> u64 {
        let mut removed = 0;
        for (path, _, _) in self.entries() {
            if fs::remove_file(path).is_ok() {
                removed += 1;
            }
        }
        removed
    }

    /// Blob files with size and modification time, unsorted.
    fn entries(&self) -> Vec<(PathBuf, u64, SystemTime)> {
        let Ok(dir) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        dir.filter_map(|e| {
            let e = e.ok()?;
            let path = e.path();
            if path.extension().and_then(|x| x.to_str()) != Some(BLOB_EXT) {
                return None;
            }
            let meta = e.metadata().ok()?;
            let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
            Some((path, meta.len(), mtime))
        })
        .collect()
    }

    /// Deletes oldest-first until the directory fits the budget.
    fn evict(&self) {
        let mut entries = self.entries();
        let mut total: u64 = entries.iter().map(|(_, len, _)| len).sum();
        if total <= self.budget_bytes {
            return;
        }
        entries.sort_by_key(|&(_, _, mtime)| mtime);
        for (path, len, _) in entries {
            if total <= self.budget_bytes {
                break;
            }
            if fs::remove_file(path).is_ok() {
                total -= len;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::program_key;
    use diag_workloads::Params;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("diag-pipeline-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_load_clear() {
        let dir = temp_dir("slc");
        let cache = DiskCache::open(&dir, DiskCache::DEFAULT_BUDGET).unwrap();
        let key = program_key("hotspot", &Params::tiny());
        assert_eq!(cache.load(key), None);
        cache.store(key, b"payload");
        assert_eq!(cache.load(key), Some(b"payload".to_vec()));
        assert_eq!(cache.stats().files, 1);
        assert_eq!(cache.clear(), 1);
        assert_eq!(cache.load(key), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_blob_is_deleted_and_missed() {
        let dir = temp_dir("corrupt");
        let cache = DiskCache::open(&dir, DiskCache::DEFAULT_BUDGET).unwrap();
        let key = program_key("nn", &Params::tiny());
        cache.store(key, b"payload");
        // Truncate the file mid-payload.
        let path = cache.path(key);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert_eq!(cache.load(key), None);
        assert!(!path.exists(), "corrupt blob should be deleted");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_respects_budget_and_recency() {
        let dir = temp_dir("evict");
        // Budget of ~2 blobs of 64B payload (frame overhead is 37B).
        let cache = DiskCache::open(&dir, 250).unwrap();
        let keys: Vec<_> = (0..3)
            .map(|i| {
                program_key(
                    "hotspot",
                    &Params {
                        seed: i,
                        ..Params::tiny()
                    },
                )
            })
            .collect();
        cache.store(keys[0], &[0u8; 64]);
        cache.store(keys[1], &[1u8; 64]);
        // Make key 0 fresher than key 1 before the overflowing store.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(cache.load(keys[0]).is_some());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(cache.evictions(), 0);
        cache.store(keys[2], &[2u8; 64]);
        assert!(cache.stats().bytes <= 250);
        assert_eq!(cache.load(keys[1]), None, "LRU blob should be evicted");
        assert!(cache.load(keys[2]).is_some(), "fresh blob survives");
        assert_eq!(cache.evictions(), 1, "one blob evicted, counted once");
        let _ = fs::remove_dir_all(&dir);
    }
}
