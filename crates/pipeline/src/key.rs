//! Stable structural hashing and artifact keys.
//!
//! Artifact identity must survive process boundaries, so keys are computed
//! with a fixed algorithm (64-bit FNV-1a) over a *structural* encoding of
//! the stage inputs — never with [`std::hash::DefaultHasher`], whose output
//! is randomized per process. Every [`StableKey`] implementation destructures
//! its type exhaustively (no `..` patterns), so adding a field to any keyed
//! input is a compile error here until the hash is taught about it — the
//! mechanism that keeps stale cache hits impossible as the workspace grows.

use diag_analyze::AnalyzeOptions;
use diag_core::{DiagConfig, MachineSpec};
use diag_mem::CacheConfig;
use diag_workloads::{Params, Scale};

use std::fmt;

/// Version of the key schema and blob payload encodings. Bump whenever a
/// [`StableKey`] encoding or a blob format changes shape *without* a field
/// change forcing it (e.g. reordering writes): old on-disk artifacts then
/// miss instead of decoding garbage.
pub const SCHEMA_VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a structural byte encoding.
///
/// Deterministic across processes, platforms, and compiler versions —
/// the property the on-disk artifact cache depends on.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    /// A hasher at the FNV offset basis.
    pub fn new() -> StableHasher {
        StableHasher { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Absorbs a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `usize`, widened to 64 bits so 32- and 64-bit hosts agree.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs a boolean.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Absorbs an `f64` by bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a string, length-prefixed so `("ab","c")` and `("a","bc")`
    /// hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> StableHasher {
        StableHasher::new()
    }
}

/// A type whose value can be folded into an artifact key.
///
/// Implementations must destructure `self` exhaustively (compile-time
/// completeness) and write every field in a fixed order.
pub trait StableKey {
    /// Folds this value into `h`.
    fn stable_hash(&self, h: &mut StableHasher);
}

impl StableKey for bool {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_bool(*self);
    }
}

impl StableKey for u32 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u32(*self);
    }
}

impl StableKey for u64 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(*self);
    }
}

impl StableKey for usize {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_usize(*self);
    }
}

impl StableKey for f64 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_f64(*self);
    }
}

impl StableKey for str {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(self);
    }
}

impl StableKey for String {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(self);
    }
}

impl<T: StableKey> StableKey for Option<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            None => h.write_u8(0),
            Some(v) => {
                h.write_u8(1);
                v.stable_hash(h);
            }
        }
    }
}

impl<A: StableKey, B: StableKey> StableKey for (A, B) {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.0.stable_hash(h);
        self.1.stable_hash(h);
    }
}

impl StableKey for Scale {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u8(match self {
            Scale::Tiny => 0,
            Scale::Small => 1,
            Scale::Full => 2,
        });
    }
}

impl StableKey for Params {
    fn stable_hash(&self, h: &mut StableHasher) {
        // Exhaustive: a new Params field fails to compile here until the
        // key learns about it.
        let Params {
            scale,
            threads,
            simt,
            seed,
        } = self;
        scale.stable_hash(h);
        threads.stable_hash(h);
        simt.stable_hash(h);
        seed.stable_hash(h);
    }
}

impl StableKey for CacheConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        let CacheConfig {
            size_bytes,
            line_bytes,
            ways,
            hit_latency,
            banks,
        } = self;
        size_bytes.stable_hash(h);
        line_bytes.stable_hash(h);
        ways.stable_hash(h);
        hit_latency.stable_hash(h);
        banks.stable_hash(h);
    }
}

impl StableKey for DiagConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        let DiagConfig {
            name,
            pes_per_cluster,
            clusters,
            ring_clusters,
            lane_buffer_interval,
            fp_enabled,
            freq_ghz,
            l1i,
            l1d,
            l2,
            lsu_depth,
            memlane_capacity,
            line_load_cycles,
            max_cycles,
            enable_reuse,
            enable_simt,
            trap_vector,
            interrupt_at,
            commit_width,
            speculative_datapaths,
            collect_trace,
        } = self;
        name.stable_hash(h);
        pes_per_cluster.stable_hash(h);
        clusters.stable_hash(h);
        ring_clusters.stable_hash(h);
        lane_buffer_interval.stable_hash(h);
        fp_enabled.stable_hash(h);
        freq_ghz.stable_hash(h);
        l1i.stable_hash(h);
        l1d.stable_hash(h);
        l2.stable_hash(h);
        lsu_depth.stable_hash(h);
        memlane_capacity.stable_hash(h);
        line_load_cycles.stable_hash(h);
        max_cycles.stable_hash(h);
        enable_reuse.stable_hash(h);
        enable_simt.stable_hash(h);
        trap_vector.stable_hash(h);
        interrupt_at.stable_hash(h);
        commit_width.stable_hash(h);
        speculative_datapaths.stable_hash(h);
        collect_trace.stable_hash(h);
    }
}

impl StableKey for MachineSpec {
    fn stable_hash(&self, h: &mut StableHasher) {
        // Exhaustive match: a new machine kind fails to compile here
        // until the key learns about it. The kind discriminant is folded
        // first so `Diag` and a hypothetical baseline with colliding
        // field encodings can never share a hash.
        match self {
            MachineSpec::Diag(cfg) => {
                h.write_u8(1);
                cfg.stable_hash(h);
            }
            MachineSpec::Ooo(cores) => {
                h.write_u8(2);
                cores.stable_hash(h);
            }
            MachineSpec::InOrder => h.write_u8(3),
        }
    }
}

impl StableKey for AnalyzeOptions {
    fn stable_hash(&self, h: &mut StableHasher) {
        let AnalyzeOptions { config, threads } = self;
        config.stable_hash(h);
        threads.stable_hash(h);
    }
}

/// Preparation stage an artifact belongs to. Part of the key, so a
/// program and an analysis of the same inputs can never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// `WorkloadSpec + Params → Program` (workload assembly).
    Program,
    /// `Program + DiagConfig → StationTable` (text lowering).
    Stations,
    /// `Program + AnalyzeOptions → Analysis` (static analysis).
    Analysis,
    /// A rendered analysis or verification report (text or JSON).
    Report,
    /// `Program + VerifyOptions → Verification` (abstract interpretation).
    Verification,
    /// `Workload + Params + MachineSpec → RunStats` (a completed,
    /// verified simulation run — the terminal artifact of the chain).
    Run,
}

impl Stage {
    /// Short tag used in key hashes, file names, and stat lines.
    pub fn tag(self) -> &'static str {
        match self {
            Stage::Program => "program",
            Stage::Stations => "stations",
            Stage::Analysis => "analysis",
            Stage::Report => "report",
            Stage::Verification => "verification",
            Stage::Run => "run",
        }
    }

    /// One-byte stage code for blob framing.
    pub fn code(self) -> u8 {
        match self {
            Stage::Program => 1,
            Stage::Stations => 2,
            Stage::Analysis => 3,
            Stage::Report => 4,
            Stage::Verification => 5,
            Stage::Run => 6,
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// Content-addressed identity of one prepared artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    /// The preparation stage.
    pub stage: Stage,
    /// Stable structural hash of the stage inputs (schema version,
    /// upstream keys, and every field of the typed parameters).
    pub hash: u64,
}

impl fmt::Display for ArtifactKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{:016x}", self.stage, self.hash)
    }
}

fn stage_hasher(stage: Stage) -> StableHasher {
    let mut h = StableHasher::new();
    h.write_u32(SCHEMA_VERSION);
    h.write_str(stage.tag());
    h
}

/// Key of the program stage: `WorkloadSpec + Params → Program`.
pub fn program_key(workload: &str, params: &Params) -> ArtifactKey {
    let mut h = stage_hasher(Stage::Program);
    h.write_str(workload);
    params.stable_hash(&mut h);
    ArtifactKey {
        stage: Stage::Program,
        hash: h.finish(),
    }
}

/// Key of the stations stage: `Program + DiagConfig → StationTable`.
///
/// `config` is the DiAG geometry the table will serve, or `None` for the
/// baseline machines' whole-text lowering (today the lowering itself is
/// geometry-independent, but the key reserves the distinction so a future
/// geometry-aware lowering invalidates cleanly).
pub fn stations_key(program: ArtifactKey, config: Option<&DiagConfig>) -> ArtifactKey {
    let mut h = stage_hasher(Stage::Stations);
    h.write_u64(program.hash);
    match config {
        None => h.write_u8(0),
        Some(c) => {
            h.write_u8(1);
            c.stable_hash(&mut h);
        }
    }
    ArtifactKey {
        stage: Stage::Stations,
        hash: h.finish(),
    }
}

/// Key of the analysis stage: `Program + AnalyzeOptions → Analysis`.
pub fn analysis_key(program: ArtifactKey, opts: &AnalyzeOptions) -> ArtifactKey {
    let mut h = stage_hasher(Stage::Analysis);
    h.write_u64(program.hash);
    opts.stable_hash(&mut h);
    ArtifactKey {
        stage: Stage::Analysis,
        hash: h.finish(),
    }
}

impl StableKey for diag_verify::VerifyOptions {
    fn stable_hash(&self, h: &mut StableHasher) {
        let diag_verify::VerifyOptions {
            threads,
            trap_vector,
        } = self;
        threads.stable_hash(h);
        trap_vector.stable_hash(h);
    }
}

/// Key of the verification stage: `Program + VerifyOptions → Verification`.
pub fn verification_key(program: ArtifactKey, opts: &diag_verify::VerifyOptions) -> ArtifactKey {
    let mut h = stage_hasher(Stage::Verification);
    h.write_u64(program.hash);
    opts.stable_hash(&mut h);
    ArtifactKey {
        stage: Stage::Verification,
        hash: h.finish(),
    }
}

/// Key of the run stage: `Workload + Params + MachineSpec → RunStats`.
///
/// Keyed on the *inputs* (workload name, build/run parameters, and the
/// full machine identity) rather than the program artifact, so a warm
/// resubmission needs no assembly before it can hit. The thread count and
/// SIMT switch ride inside `params`; every `DiagConfig` field rides
/// inside `machine` — flipping any single one changes the key.
pub fn run_key(workload: &str, params: &Params, machine: &MachineSpec) -> ArtifactKey {
    let mut h = stage_hasher(Stage::Run);
    h.write_str(workload);
    params.stable_hash(&mut h);
    machine.stable_hash(&mut h);
    ArtifactKey {
        stage: Stage::Run,
        hash: h.finish(),
    }
}

/// Rendered-report flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReportFormat {
    /// Human-readable text report.
    Text,
    /// Machine-readable JSON report.
    Json,
}

impl ReportFormat {
    /// Short tag folded into the report key.
    pub fn tag(self) -> &'static str {
        match self {
            ReportFormat::Text => "text",
            ReportFormat::Json => "json",
        }
    }
}

/// Key of a rendered analysis report.
pub fn report_key(analysis: ArtifactKey, format: ReportFormat) -> ArtifactKey {
    let mut h = stage_hasher(Stage::Report);
    h.write_u64(analysis.hash);
    h.write_str(format.tag());
    ArtifactKey {
        stage: Stage::Report,
        hash: h.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vector() {
        // Standard FNV-1a test vectors.
        let mut h = StableHasher::new();
        h.write_bytes(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = StableHasher::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn keys_are_stage_disjoint() {
        let params = Params::tiny();
        let p = program_key("hotspot", &params);
        let s = stations_key(p, None);
        let a = analysis_key(p, &AnalyzeOptions::default());
        assert_ne!(p.hash, s.hash);
        assert_ne!(p.hash, a.hash);
        assert_ne!(s.hash, a.hash);
    }

    #[test]
    fn display_embeds_stage() {
        let k = program_key("nn", &Params::tiny());
        let text = k.to_string();
        assert!(text.starts_with("program-"));
        assert_eq!(text.len(), "program-".len() + 16);
    }
}
