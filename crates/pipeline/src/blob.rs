//! Versioned, checksummed blob framing and the `Program` payload codec.
//!
//! On-disk artifacts are self-describing: an 8-byte magic, the key schema
//! version, the stage code, the full 64-bit key, a length-prefixed payload,
//! and a trailing FNV-1a checksum over everything before it. A reader that
//! finds *anything* out of place — wrong magic, old schema, mismatched key,
//! short file, bad checksum — treats the blob as absent, so a corrupt or
//! truncated cache entry costs one rebuild, never a wrong result.

use std::collections::BTreeMap;

use diag_asm::Program;

use crate::key::{ArtifactKey, StableHasher, SCHEMA_VERSION};

/// Blob file magic: "DIAGART" + format revision digit.
pub const MAGIC: [u8; 8] = *b"DIAGART1";

/// Frames `payload` as a self-describing blob for `key`.
pub fn frame(key: ArtifactKey, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 40);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
    out.push(key.stage.code());
    out.extend_from_slice(&key.hash.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let mut h = StableHasher::new();
    h.write_bytes(&out);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out
}

/// Validates a framed blob against the expected `key` and returns its
/// payload, or `None` if any part of the frame is wrong.
pub fn unframe(key: ArtifactKey, bytes: &[u8]) -> Option<Vec<u8>> {
    // magic(8) + schema(4) + stage(1) + key(8) + len(8) + checksum(8)
    const OVERHEAD: usize = 37;
    if bytes.len() < OVERHEAD || bytes[..8] != MAGIC {
        return None;
    }
    let schema = u32::from_le_bytes(bytes[8..12].try_into().ok()?);
    if schema != SCHEMA_VERSION || bytes[12] != key.stage.code() {
        return None;
    }
    let hash = u64::from_le_bytes(bytes[13..21].try_into().ok()?);
    if hash != key.hash {
        return None;
    }
    let len = u64::from_le_bytes(bytes[21..29].try_into().ok()?) as usize;
    if bytes.len() != OVERHEAD + len {
        return None;
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let mut h = StableHasher::new();
    h.write_bytes(body);
    if h.finish().to_le_bytes() != tail {
        return None;
    }
    Some(body[OVERHEAD - 8..].to_vec())
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Option<u8> {
        let v = *self.bytes.get(self.at)?;
        self.at += 1;
        Some(v)
    }

    fn u32(&mut self) -> Option<u32> {
        let v = u32::from_le_bytes(self.bytes.get(self.at..self.at + 4)?.try_into().ok()?);
        self.at += 4;
        Some(v)
    }

    fn u64(&mut self) -> Option<u64> {
        let v = u64::from_le_bytes(self.bytes.get(self.at..self.at + 8)?.try_into().ok()?);
        self.at += 8;
        Some(v)
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.bytes.get(self.at..self.at + n)?;
        self.at += n;
        Some(s)
    }

    fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

/// Serializes a [`Program`] payload: segment bases, entry point, text
/// words, data bytes, and the symbol table — everything [`Program`]
/// observes, so the decoded image is `==` to the original.
pub fn encode_program(p: &Program) -> Vec<u8> {
    let mut out = Vec::new();
    push_u32(&mut out, p.text_base());
    push_u32(&mut out, p.data_base());
    push_u32(&mut out, p.entry());
    push_u32(&mut out, p.text_len() as u32);
    for &word in p.text() {
        push_u32(&mut out, word);
    }
    push_u32(&mut out, p.data().len() as u32);
    out.extend_from_slice(p.data());
    let symbols: Vec<(&str, u32)> = p.symbols().collect();
    push_u32(&mut out, symbols.len() as u32);
    for (name, addr) in symbols {
        push_u32(&mut out, name.len() as u32);
        out.extend_from_slice(name.as_bytes());
        push_u32(&mut out, addr);
    }
    out
}

/// Decodes an [`encode_program`] payload, or `None` if it is malformed.
pub fn decode_program(bytes: &[u8]) -> Option<Program> {
    let mut r = Reader { bytes, at: 0 };
    let text_base = r.u32()?;
    let data_base = r.u32()?;
    let entry = r.u32()?;
    let text_len = r.u32()? as usize;
    let mut text = Vec::with_capacity(text_len);
    for _ in 0..text_len {
        text.push(r.u32()?);
    }
    let data_len = r.u32()? as usize;
    let data = r.take(data_len)?.to_vec();
    let sym_count = r.u32()? as usize;
    let mut symbols = BTreeMap::new();
    for _ in 0..sym_count {
        let name_len = r.u32()? as usize;
        let name = String::from_utf8(r.take(name_len)?.to_vec()).ok()?;
        let addr = r.u32()?;
        symbols.insert(name, addr);
    }
    if !r.done() {
        return None;
    }
    Some(Program::from_parts(
        text, text_base, data, data_base, entry, symbols,
    ))
}

fn push_itv(out: &mut Vec<u8>, itv: &diag_verify::Itv) {
    push_u32(out, itv.lo);
    push_u32(out, itv.hi);
    out.push(itv.tz);
}

fn push_opt_itv(out: &mut Vec<u8>, itv: &Option<diag_verify::Itv>) {
    match itv {
        None => out.push(0),
        Some(i) => {
            out.push(1);
            push_itv(out, i);
        }
    }
}

fn read_itv(r: &mut Reader<'_>) -> Option<diag_verify::Itv> {
    Some(diag_verify::Itv {
        lo: r.u32()?,
        hi: r.u32()?,
        tz: r.u8()?,
    })
}

fn read_opt_itv(r: &mut Reader<'_>) -> Option<Option<diag_verify::Itv>> {
    match r.u8()? {
        0 => Some(None),
        1 => Some(Some(read_itv(r)?)),
        _ => None,
    }
}

fn fact_kind_code(kind: diag_verify::FactKind) -> u8 {
    kind.code()
}

fn fact_kind_from(code: u8) -> Option<diag_verify::FactKind> {
    use diag_verify::FactKind;
    Some(match code {
        0 => FactKind::MemBounds,
        1 => FactKind::MemAlign,
        2 => FactKind::BranchTarget,
        3 => FactKind::TripCount,
        4 => FactKind::ConstFold,
        5 => FactKind::Unreachable,
        _ => return None,
    })
}

fn verdict_code(v: diag_verify::Verdict) -> u8 {
    match v {
        diag_verify::Verdict::Proved => 0,
        diag_verify::Verdict::Refuted => 1,
        diag_verify::Verdict::Unknown => 2,
    }
}

fn verdict_from(code: u8) -> Option<diag_verify::Verdict> {
    use diag_verify::Verdict;
    Some(match code {
        0 => Verdict::Proved,
        1 => Verdict::Refuted,
        2 => Verdict::Unknown,
        _ => return None,
    })
}

/// Serializes a [`diag_verify::Verification`] payload: engine statistics,
/// the per-PC interval map, all facts, and loop trip bounds — everything
/// the reports and the soundness harness consume, so a decoded
/// verification serves `--strict` runs without re-running the fixpoint.
pub fn encode_verification(v: &diag_verify::Verification) -> Vec<u8> {
    let mut out = Vec::new();
    push_u32(&mut out, v.threads as u32);
    out.push(u8::from(v.imprecise_indirect));
    push_u64(&mut out, v.iterations);
    push_u64(&mut out, v.widenings);
    push_u32(&mut out, v.pcs.len() as u32);
    for (&pc, iv) in &v.pcs {
        push_u32(&mut out, pc);
        push_opt_itv(&mut out, &iv.dest);
        push_opt_itv(&mut out, &iv.addr);
    }
    push_u32(&mut out, v.facts.len() as u32);
    for f in &v.facts {
        push_u32(&mut out, f.pc);
        out.push(fact_kind_code(f.kind));
        out.push(verdict_code(f.verdict));
        push_opt_itv(&mut out, &f.witness);
        push_u32(&mut out, f.detail.len() as u32);
        out.extend_from_slice(f.detail.as_bytes());
    }
    push_u32(&mut out, v.loops.len() as u32);
    for t in &v.loops {
        push_u32(&mut out, t.head_pc);
        push_u32(&mut out, t.latch_pc);
        match t.entry_pc {
            None => out.push(0),
            Some(pc) => {
                out.push(1);
                push_u32(&mut out, pc);
            }
        }
        match t.iterations {
            None => out.push(0),
            Some((lo, hi)) => {
                out.push(1);
                push_u64(&mut out, lo);
                push_u64(&mut out, hi);
            }
        }
    }
    out
}

/// Decodes an [`encode_verification`] payload, or `None` if malformed.
pub fn decode_verification(bytes: &[u8]) -> Option<diag_verify::Verification> {
    let mut r = Reader { bytes, at: 0 };
    let threads = r.u32()? as usize;
    let imprecise_indirect = match r.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    let iterations = r.u64()?;
    let widenings = r.u64()?;
    let pc_count = r.u32()? as usize;
    let mut pcs = BTreeMap::new();
    for _ in 0..pc_count {
        let pc = r.u32()?;
        let dest = read_opt_itv(&mut r)?;
        let addr = read_opt_itv(&mut r)?;
        pcs.insert(pc, diag_verify::PcIntervals { dest, addr });
    }
    let fact_count = r.u32()? as usize;
    let mut facts = Vec::with_capacity(fact_count);
    for _ in 0..fact_count {
        let pc = r.u32()?;
        let kind = fact_kind_from(r.u8()?)?;
        let verdict = verdict_from(r.u8()?)?;
        let witness = read_opt_itv(&mut r)?;
        let detail_len = r.u32()? as usize;
        let detail = String::from_utf8(r.take(detail_len)?.to_vec()).ok()?;
        facts.push(diag_verify::Fact {
            pc,
            kind,
            verdict,
            witness,
            detail,
        });
    }
    let loop_count = r.u32()? as usize;
    let mut loops = Vec::with_capacity(loop_count);
    for _ in 0..loop_count {
        let head_pc = r.u32()?;
        let latch_pc = r.u32()?;
        let entry_pc = match r.u8()? {
            0 => None,
            1 => Some(r.u32()?),
            _ => return None,
        };
        let iterations = match r.u8()? {
            0 => None,
            1 => Some((r.u64()?, r.u64()?)),
            _ => return None,
        };
        loops.push(diag_verify::LoopTrip {
            head_pc,
            latch_pc,
            entry_pc,
            iterations,
        });
    }
    if !r.done() {
        return None;
    }
    Some(diag_verify::Verification {
        threads,
        imprecise_indirect,
        iterations,
        widenings,
        pcs,
        facts,
        loops,
    })
}

/// Serializes a [`diag_sim::RunStats`] payload: cycles, committed
/// instructions, thread count, the stall breakdown, every activity
/// counter (exhaustively destructured, so a new field is a compile error
/// here until the codec learns about it), and the modelled frequency.
pub fn encode_run_stats(s: &diag_sim::RunStats) -> Vec<u8> {
    let diag_sim::RunStats {
        cycles,
        committed,
        threads,
        stalls,
        activity,
        freq_ghz,
    } = s;
    let diag_sim::StallBreakdown {
        memory,
        control,
        structural,
    } = stalls;
    let diag_sim::Activity {
        busy_cycles,
        pe_active_cycles,
        pe_resident_cycles,
        fpu_active_cycles,
        int_ops,
        fp_ops,
        loads,
        stores,
        reg_writes,
        lane_transports,
        memlane_hits,
        bus_beats,
        line_fetches,
        decodes,
        reuse_commits,
        renames,
        dispatches,
        issues,
        rob_writes,
        bpred_lookups,
        mispredicts,
        l1d_accesses,
        l1d_misses,
        l2_accesses,
        l2_misses,
    } = activity;
    let mut out = Vec::new();
    for v in [
        *cycles,
        *committed,
        *threads,
        *memory,
        *control,
        *structural,
        *busy_cycles,
        *pe_active_cycles,
        *pe_resident_cycles,
        *fpu_active_cycles,
        *int_ops,
        *fp_ops,
        *loads,
        *stores,
        *reg_writes,
        *lane_transports,
        *memlane_hits,
        *bus_beats,
        *line_fetches,
        *decodes,
        *reuse_commits,
        *renames,
        *dispatches,
        *issues,
        *rob_writes,
        *bpred_lookups,
        *mispredicts,
        *l1d_accesses,
        *l1d_misses,
        *l2_accesses,
        *l2_misses,
        freq_ghz.to_bits(),
    ] {
        push_u64(&mut out, v);
    }
    out
}

/// Decodes an [`encode_run_stats`] payload, or `None` if malformed.
pub fn decode_run_stats(bytes: &[u8]) -> Option<diag_sim::RunStats> {
    let mut r = Reader { bytes, at: 0 };
    let stats = diag_sim::RunStats {
        cycles: r.u64()?,
        committed: r.u64()?,
        threads: r.u64()?,
        stalls: diag_sim::StallBreakdown {
            memory: r.u64()?,
            control: r.u64()?,
            structural: r.u64()?,
        },
        activity: diag_sim::Activity {
            busy_cycles: r.u64()?,
            pe_active_cycles: r.u64()?,
            pe_resident_cycles: r.u64()?,
            fpu_active_cycles: r.u64()?,
            int_ops: r.u64()?,
            fp_ops: r.u64()?,
            loads: r.u64()?,
            stores: r.u64()?,
            reg_writes: r.u64()?,
            lane_transports: r.u64()?,
            memlane_hits: r.u64()?,
            bus_beats: r.u64()?,
            line_fetches: r.u64()?,
            decodes: r.u64()?,
            reuse_commits: r.u64()?,
            renames: r.u64()?,
            dispatches: r.u64()?,
            issues: r.u64()?,
            rob_writes: r.u64()?,
            bpred_lookups: r.u64()?,
            mispredicts: r.u64()?,
            l1d_accesses: r.u64()?,
            l1d_misses: r.u64()?,
            l2_accesses: r.u64()?,
            l2_misses: r.u64()?,
        },
        freq_ghz: f64::from_bits(r.u64()?),
    };
    if !r.done() {
        return None;
    }
    Some(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::program_key;
    use diag_workloads::Params;

    fn sample_program() -> Program {
        let mut symbols = BTreeMap::new();
        symbols.insert("start".to_string(), 0x1000);
        symbols.insert("loop".to_string(), 0x1008);
        Program::from_parts(
            vec![0x0000_0013, 0x0000_0073],
            0x1000,
            vec![1, 2, 3, 4, 5],
            0x0010_0000,
            0x1000,
            symbols,
        )
    }

    #[test]
    fn program_round_trips_exactly() {
        let p = sample_program();
        let decoded = decode_program(&encode_program(&p)).expect("decodes");
        assert_eq!(p, decoded);
    }

    #[test]
    fn frame_round_trips() {
        let key = program_key("hotspot", &Params::tiny());
        let payload = encode_program(&sample_program());
        let blob = frame(key, &payload);
        assert_eq!(unframe(key, &blob), Some(payload));
    }

    #[test]
    fn frame_rejects_tampering() {
        let key = program_key("hotspot", &Params::tiny());
        let payload = encode_program(&sample_program());
        let good = frame(key, &payload);

        // Truncation.
        assert_eq!(unframe(key, &good[..good.len() - 1]), None);
        // Flipped payload byte (checksum catches it).
        let mut bad = good.clone();
        bad[40] ^= 0x01;
        assert_eq!(unframe(key, &bad), None);
        // Wrong key.
        let other = program_key("nn", &Params::tiny());
        assert_eq!(unframe(other, &good), None);
        // Wrong magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(unframe(key, &bad), None);
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut payload = encode_program(&sample_program());
        payload.push(0);
        assert_eq!(decode_program(&payload), None);
    }

    #[test]
    fn run_stats_round_trip_exactly() {
        let stats = diag_sim::RunStats {
            cycles: 123_456,
            committed: 98_765,
            threads: 12,
            stalls: diag_sim::StallBreakdown {
                memory: 11,
                control: 7,
                structural: 3,
            },
            activity: diag_sim::Activity {
                busy_cycles: 1,
                pe_active_cycles: 2,
                pe_resident_cycles: 3,
                fpu_active_cycles: 4,
                int_ops: 5,
                fp_ops: 6,
                loads: 7,
                stores: 8,
                reg_writes: 9,
                lane_transports: 10,
                memlane_hits: 11,
                bus_beats: 12,
                line_fetches: 13,
                decodes: 14,
                reuse_commits: 15,
                renames: 16,
                dispatches: 17,
                issues: 18,
                rob_writes: 19,
                bpred_lookups: 20,
                mispredicts: 21,
                l1d_accesses: 22,
                l1d_misses: 23,
                l2_accesses: 24,
                l2_misses: 25,
            },
            freq_ghz: 2.0,
        };
        let payload = encode_run_stats(&stats);
        let decoded = decode_run_stats(&payload).expect("decodes");
        assert_eq!(decoded, stats);
        // Re-encoding must be byte-identical (warm path serves these bytes).
        assert_eq!(encode_run_stats(&decoded), payload);
        let mut truncated = payload.clone();
        truncated.pop();
        assert!(decode_run_stats(&truncated).is_none());
        let mut padded = payload;
        padded.push(0);
        assert!(decode_run_stats(&padded).is_none());
    }

    #[test]
    fn verification_round_trips_exactly() {
        let program = diag_asm::assemble(
            "li t0, 0\nloop:\naddi t0, t0, 1\nblt t0, a1, loop\nsw t0, 0(gp)\necall\n",
        )
        .unwrap();
        let v = diag_verify::verify(
            &program,
            &diag_verify::VerifyOptions {
                threads: 3,
                trap_vector: None,
            },
        );
        let payload = encode_verification(&v);
        let d = decode_verification(&payload).expect("decodes");
        // Re-encoding the decoded value must be byte-identical (the
        // warm-cache path serves exactly these bytes).
        assert_eq!(encode_verification(&d), payload);
        assert_eq!(d.threads, v.threads);
        assert_eq!(d.facts.len(), v.facts.len());
        assert_eq!(d.pcs.len(), v.pcs.len());
        assert_eq!(d.loops.len(), v.loops.len());
        assert_eq!(d.loops[0].iterations, v.loops[0].iterations);
        let mut truncated = payload.clone();
        truncated.pop();
        assert!(decode_verification(&truncated).is_none());
    }
}
