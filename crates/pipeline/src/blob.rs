//! Versioned, checksummed blob framing and the `Program` payload codec.
//!
//! On-disk artifacts are self-describing: an 8-byte magic, the key schema
//! version, the stage code, the full 64-bit key, a length-prefixed payload,
//! and a trailing FNV-1a checksum over everything before it. A reader that
//! finds *anything* out of place — wrong magic, old schema, mismatched key,
//! short file, bad checksum — treats the blob as absent, so a corrupt or
//! truncated cache entry costs one rebuild, never a wrong result.

use std::collections::BTreeMap;

use diag_asm::Program;

use crate::key::{ArtifactKey, StableHasher, SCHEMA_VERSION};

/// Blob file magic: "DIAGART" + format revision digit.
pub const MAGIC: [u8; 8] = *b"DIAGART1";

/// Frames `payload` as a self-describing blob for `key`.
pub fn frame(key: ArtifactKey, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 40);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
    out.push(key.stage.code());
    out.extend_from_slice(&key.hash.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let mut h = StableHasher::new();
    h.write_bytes(&out);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out
}

/// Validates a framed blob against the expected `key` and returns its
/// payload, or `None` if any part of the frame is wrong.
pub fn unframe(key: ArtifactKey, bytes: &[u8]) -> Option<Vec<u8>> {
    // magic(8) + schema(4) + stage(1) + key(8) + len(8) + checksum(8)
    const OVERHEAD: usize = 37;
    if bytes.len() < OVERHEAD || bytes[..8] != MAGIC {
        return None;
    }
    let schema = u32::from_le_bytes(bytes[8..12].try_into().ok()?);
    if schema != SCHEMA_VERSION || bytes[12] != key.stage.code() {
        return None;
    }
    let hash = u64::from_le_bytes(bytes[13..21].try_into().ok()?);
    if hash != key.hash {
        return None;
    }
    let len = u64::from_le_bytes(bytes[21..29].try_into().ok()?) as usize;
    if bytes.len() != OVERHEAD + len {
        return None;
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let mut h = StableHasher::new();
    h.write_bytes(body);
    if h.finish().to_le_bytes() != tail {
        return None;
    }
    Some(body[OVERHEAD - 8..].to_vec())
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn u32(&mut self) -> Option<u32> {
        let v = u32::from_le_bytes(self.bytes.get(self.at..self.at + 4)?.try_into().ok()?);
        self.at += 4;
        Some(v)
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.bytes.get(self.at..self.at + n)?;
        self.at += n;
        Some(s)
    }

    fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

/// Serializes a [`Program`] payload: segment bases, entry point, text
/// words, data bytes, and the symbol table — everything [`Program`]
/// observes, so the decoded image is `==` to the original.
pub fn encode_program(p: &Program) -> Vec<u8> {
    let mut out = Vec::new();
    push_u32(&mut out, p.text_base());
    push_u32(&mut out, p.data_base());
    push_u32(&mut out, p.entry());
    push_u32(&mut out, p.text_len() as u32);
    for &word in p.text() {
        push_u32(&mut out, word);
    }
    push_u32(&mut out, p.data().len() as u32);
    out.extend_from_slice(p.data());
    let symbols: Vec<(&str, u32)> = p.symbols().collect();
    push_u32(&mut out, symbols.len() as u32);
    for (name, addr) in symbols {
        push_u32(&mut out, name.len() as u32);
        out.extend_from_slice(name.as_bytes());
        push_u32(&mut out, addr);
    }
    out
}

/// Decodes an [`encode_program`] payload, or `None` if it is malformed.
pub fn decode_program(bytes: &[u8]) -> Option<Program> {
    let mut r = Reader { bytes, at: 0 };
    let text_base = r.u32()?;
    let data_base = r.u32()?;
    let entry = r.u32()?;
    let text_len = r.u32()? as usize;
    let mut text = Vec::with_capacity(text_len);
    for _ in 0..text_len {
        text.push(r.u32()?);
    }
    let data_len = r.u32()? as usize;
    let data = r.take(data_len)?.to_vec();
    let sym_count = r.u32()? as usize;
    let mut symbols = BTreeMap::new();
    for _ in 0..sym_count {
        let name_len = r.u32()? as usize;
        let name = String::from_utf8(r.take(name_len)?.to_vec()).ok()?;
        let addr = r.u32()?;
        symbols.insert(name, addr);
    }
    if !r.done() {
        return None;
    }
    Some(Program::from_parts(
        text, text_base, data, data_base, entry, symbols,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::program_key;
    use diag_workloads::Params;

    fn sample_program() -> Program {
        let mut symbols = BTreeMap::new();
        symbols.insert("start".to_string(), 0x1000);
        symbols.insert("loop".to_string(), 0x1008);
        Program::from_parts(
            vec![0x0000_0013, 0x0000_0073],
            0x1000,
            vec![1, 2, 3, 4, 5],
            0x0010_0000,
            0x1000,
            symbols,
        )
    }

    #[test]
    fn program_round_trips_exactly() {
        let p = sample_program();
        let decoded = decode_program(&encode_program(&p)).expect("decodes");
        assert_eq!(p, decoded);
    }

    #[test]
    fn frame_round_trips() {
        let key = program_key("hotspot", &Params::tiny());
        let payload = encode_program(&sample_program());
        let blob = frame(key, &payload);
        assert_eq!(unframe(key, &blob), Some(payload));
    }

    #[test]
    fn frame_rejects_tampering() {
        let key = program_key("hotspot", &Params::tiny());
        let payload = encode_program(&sample_program());
        let good = frame(key, &payload);

        // Truncation.
        assert_eq!(unframe(key, &good[..good.len() - 1]), None);
        // Flipped payload byte (checksum catches it).
        let mut bad = good.clone();
        bad[40] ^= 0x01;
        assert_eq!(unframe(key, &bad), None);
        // Wrong key.
        let other = program_key("nn", &Params::tiny());
        assert_eq!(unframe(other, &good), None);
        // Wrong magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(unframe(key, &bad), None);
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut payload = encode_program(&sample_program());
        payload.push(0);
        assert_eq!(decode_program(&payload), None);
    }
}
