//! # diag-power — area and energy models for the DiAG reproduction
//!
//! Reproduces the paper's power/area methodology (§6.1, §7.4): component
//! constants from the Table 3 Synopsys 45 nm synthesis ([`components`]),
//! an activity-based DiAG energy model with clock-gated PEs/FPUs and
//! always-powered register lanes ([`DiagEnergyModel`]), a McPAT-style
//! per-event model for the out-of-order baseline
//! ([`BaselineEnergyModel`]), CACTI-flavoured cache area/energy
//! estimation ([`cacti`], [`MemoryEnergy`]), and plain-text reporting
//! helpers ([`TextTable`]).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cacti;
pub mod components;
mod energy;
mod report;

pub use energy::{BaselineEnergyModel, DiagEnergyModel, EnergyBreakdown, MemoryEnergy};
pub use report::{geomean, ratio, TextTable};
