//! Component area and power constants from the paper's Table 3.
//!
//! The paper synthesized DiAG with Synopsys Design Compiler against a
//! FreePDK 45 nm library and reported the breakdown below ("assumes all
//! PEs are powered on every cycle", §6.1.3); caches were modelled with
//! CACTI and are not part of the synthesized design. The hierarchy roll-up
//! in [`table3`] regenerates every row.

/// One component's synthesis figures.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentSpec {
    /// Component name as it appears in Table 3.
    pub name: &'static str,
    /// Area in µm².
    pub area_um2: f64,
    /// Total power in mW at the 1 GHz synthesis clock, all-on.
    pub power_mw: f64,
    /// Whether the value is partially estimated rather than synthesized
    /// (the rows the paper marks with `*`).
    pub estimated: bool,
}

/// `RV_DECODER`: the per-PE RISC-V instruction decoder.
pub const RV_DECODER: ComponentSpec = ComponentSpec {
    name: "RV_DECODER",
    area_um2: 244.6,
    power_mw: 0.019,
    estimated: false,
};

/// `INT ALU`: the per-PE 32-bit integer ALU.
pub const INT_ALU: ComponentSpec = ComponentSpec {
    name: "INT ALU",
    area_um2: 1375.4,
    power_mw: 0.774,
    estimated: false,
};

/// `FPU (MUL / DIV)`: the per-PE single-precision floating-point unit.
pub const FPU: ComponentSpec = ComponentSpec {
    name: "FPU (MUL / DIV)",
    area_um2: 66592.0,
    power_mw: 105.2,
    estimated: false,
};

/// `REGLANE`: one register-lane crossing (multiplexers + wires + buffer
/// share) per PE.
pub const REGLANE: ComponentSpec = ComponentSpec {
    name: "REGLANE",
    area_um2: 15731.0,
    power_mw: 3.063,
    estimated: false,
};

/// `PE (w/ FPU)`: one processing element including its FPU.
pub const PE: ComponentSpec = ComponentSpec {
    name: "PE (w/ FPU)",
    area_um2: 97014.0,
    power_mw: 120.4,
    estimated: false,
};

/// `PCLUSTER`: one 16-PE processing cluster.
pub const PCLUSTER: ComponentSpec = ComponentSpec {
    name: "PCLUSTER",
    area_um2: 2_208_000.0,
    power_mw: 2_104.0,
    estimated: true,
};

/// `F4C32 (TOP)`: the full 32-cluster processor.
pub const TOP_F4C32: ComponentSpec = ComponentSpec {
    name: "F4C32 (TOP)",
    area_um2: 93_070_000.0,
    power_mw: 74_300.0,
    estimated: true,
};

/// The paper's synthesis clock in GHz, at which Table 3 powers convert to
/// energy: `1 mW / 1 GHz = 1 pJ/cycle`.
pub const SYNTHESIS_GHZ: f64 = 1.0;

/// One Table 3 row with derived per-cycle energy.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// The component.
    pub spec: ComponentSpec,
    /// Area in mm² for display.
    pub area_mm2: f64,
    /// All-on dynamic energy per cycle in pJ at the synthesis clock.
    pub energy_pj_per_cycle: f64,
}

/// Regenerates Table 3, top-down.
pub fn table3() -> Vec<Table3Row> {
    [TOP_F4C32, PCLUSTER, PE, REGLANE, INT_ALU, FPU, RV_DECODER]
        .into_iter()
        .map(|spec| Table3Row {
            area_mm2: spec.area_um2 / 1e6,
            energy_pj_per_cycle: spec.power_mw / SYNTHESIS_GHZ,
            spec,
        })
        .collect()
}

/// Sanity checks relating the hierarchy levels, mirroring the paper's §6.1
/// prose. Returns `(fpu_share_of_pe, reglane_share_of_cluster, fpu_share_of_cluster)`.
pub fn hierarchy_shares() -> (f64, f64, f64) {
    let fpu_of_pe = FPU.area_um2 / PE.area_um2;
    let lanes_per_cluster = 16.0 + 7.0; // one crossing per PE + buffer segments
    let reglane_of_cluster = REGLANE.area_um2 * lanes_per_cluster / PCLUSTER.area_um2;
    let fpu_of_cluster = FPU.area_um2 * 16.0 / PCLUSTER.area_um2;
    (fpu_of_pe, reglane_of_cluster, fpu_of_cluster)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_prose_shares_hold() {
        // §6.1.1: "Area is dominated by floating-point units that each
        // occupy 68% of a PE and together occupy 48% of a processing
        // cluster. Register lanes account for 16.3% of a processing
        // cluster."
        let (fpu_pe, lanes_cluster, fpu_cluster) = hierarchy_shares();
        assert!(
            (fpu_pe - 0.68).abs() < 0.02,
            "FPU share of PE = {fpu_pe:.3}"
        );
        assert!(
            (fpu_cluster - 0.48).abs() < 0.01,
            "FPU share of cluster = {fpu_cluster:.3}"
        );
        assert!(
            (lanes_cluster - 0.163).abs() < 0.01,
            "lane share of cluster = {lanes_cluster:.3}"
        );
    }

    #[test]
    fn cluster_rolls_up_from_pes() {
        // 16 PEs are ~70% of a cluster; the rest is lanes, LSU, control.
        let pes = PE.area_um2 * 16.0;
        assert!(pes < PCLUSTER.area_um2);
        assert!(pes > PCLUSTER.area_um2 * 0.6);
        // Power likewise.
        let pe_power = PE.power_mw * 16.0;
        assert!(pe_power < PCLUSTER.power_mw);
        assert!(pe_power > PCLUSTER.power_mw * 0.85);
    }

    #[test]
    fn top_rolls_up_from_clusters() {
        // 32 clusters account for ~76% of TOP area (§6.1: the rest is the
        // bus, the central control, and integration overhead).
        let clusters = PCLUSTER.area_um2 * 32.0;
        assert!(clusters < TOP_F4C32.area_um2);
        assert!(clusters > TOP_F4C32.area_um2 * 0.70);
        let cluster_power = PCLUSTER.power_mw * 32.0;
        assert!(cluster_power < TOP_F4C32.power_mw);
        assert!(cluster_power > TOP_F4C32.power_mw * 0.85);
    }

    #[test]
    fn table3_has_all_rows() {
        let rows = table3();
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0].spec.name, "F4C32 (TOP)");
        assert!((rows[0].area_mm2 - 93.07).abs() < 0.01);
        // 1 mW at 1 GHz = 1 pJ/cycle.
        let pe = rows.iter().find(|r| r.spec.name == "PE (w/ FPU)").unwrap();
        assert!((pe.energy_pj_per_cycle - 120.4).abs() < 1e-9);
    }
}
