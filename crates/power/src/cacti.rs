//! CACTI-flavoured cache area and energy estimation at 45 nm.
//!
//! The paper models its caches "separately with CACTI \[25\]" — they are
//! not part of the synthesized design or Table 3. This module provides
//! analytic estimates in the same spirit: area from SRAM bit-cell density
//! plus peripheral overhead, access energy from capacity and
//! associativity, scaled to published CACTI 45 nm data points (a 32 KB
//! 4-way cache ≈ 0.85 mm², ~35 pJ/read; a 4 MB 8-way cache ≈ 19 mm²,
//! ~180 pJ/read).

use diag_mem::CacheConfig;

/// 45 nm 6T SRAM bit-cell area in µm² (typical published value ~0.3;
/// effective density halves with ECC, redundancy, and array overhead).
const BIT_CELL_UM2: f64 = 0.55;
/// Peripheral (decoder, sense amps, tag comparators) overhead as a
/// fraction of the data-array area, shrinking with capacity.
fn peripheral_overhead(size_bytes: f64) -> f64 {
    // 60 % for tiny arrays down to ~15 % for multi-megabyte arrays.
    (0.6 / (size_bytes / 8192.0).log2().max(1.0)).clamp(0.15, 0.6)
}

/// Estimated silicon area and per-access energy of one cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheEstimate {
    /// Data + tag array area in mm².
    pub area_mm2: f64,
    /// Dynamic energy per read access in pJ.
    pub read_pj: f64,
    /// Leakage power in mW.
    pub leakage_mw: f64,
}

/// Estimates a cache's area and energy from its geometry.
///
/// # Examples
///
/// ```
/// use diag_mem::CacheConfig;
/// use diag_power::cacti::estimate;
///
/// let l1 = estimate(&CacheConfig::l1d(64));
/// let l2 = estimate(&CacheConfig::l2(4));
/// assert!(l2.area_mm2 > 10.0 * l1.area_mm2, "L2 is far larger");
/// assert!(l2.read_pj > l1.read_pj, "bigger arrays cost more per access");
/// ```
pub fn estimate(config: &CacheConfig) -> CacheEstimate {
    let bits = config.size_bytes as f64 * 8.0;
    // Tag bits: ~(32 - log2(sets) - log2(line)) per line, plus state.
    let lines = (config.size_bytes / config.line_bytes) as f64;
    let tag_bits_per_line =
        34.0 - (config.sets() as f64).log2() - (config.line_bytes as f64).log2();
    let total_bits = bits + lines * tag_bits_per_line.max(8.0);
    let array_mm2 = total_bits * BIT_CELL_UM2 / 1e6;
    let area_mm2 = array_mm2 * (1.0 + peripheral_overhead(config.size_bytes as f64));

    // Energy: bitline energy grows sublinearly with capacity (large
    // arrays are banked); associativity reads `ways` tag comparators in
    // parallel. Anchored so that 32 KB/4-way ≈ 35 pJ and 4 MB/8-way ≈
    // 250 pJ, bracketing published CACTI 45 nm points.
    let kb = config.size_bytes as f64 / 1024.0;
    let read_pj = 7.1 * kb.powf(0.38) * (1.0 + 0.08 * config.ways as f64);

    // Leakage ~0.01 mW per KB at 45 nm high-performance cells.
    let leakage_mw = 0.011 * kb;
    CacheEstimate {
        area_mm2,
        read_pj,
        leakage_mw,
    }
}

/// Estimates for the full cache hierarchy of a DiAG configuration:
/// `(l1i, l1d, l2)`.
pub fn hierarchy(
    l1i: &CacheConfig,
    l1d: &CacheConfig,
    l2: Option<&CacheConfig>,
) -> (CacheEstimate, CacheEstimate, Option<CacheEstimate>) {
    (estimate(l1i), estimate(l1d), l2.map(estimate))
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_mem::CacheConfig;

    #[test]
    fn anchored_to_cacti_data_points() {
        let l1 = estimate(&CacheConfig {
            size_bytes: 32 << 10,
            line_bytes: 64,
            ways: 4,
            hit_latency: 3,
            banks: 4,
        });
        assert!(
            (0.15..1.0).contains(&l1.area_mm2),
            "32KB area = {} mm2",
            l1.area_mm2
        );
        assert!(
            (25.0..55.0).contains(&l1.read_pj),
            "32KB read = {} pJ",
            l1.read_pj
        );

        let l2 = estimate(&CacheConfig::l2(4));
        assert!(
            (12.0..30.0).contains(&l2.area_mm2),
            "4MB area = {} mm2",
            l2.area_mm2
        );
        assert!(
            (150.0..300.0).contains(&l2.read_pj),
            "4MB read = {} pJ",
            l2.read_pj
        );
    }

    #[test]
    fn monotone_in_capacity() {
        let mut last = estimate(&CacheConfig::l1d(32));
        for kib in [64, 128, 256] {
            let next = estimate(&CacheConfig::l1d(kib));
            assert!(next.area_mm2 > last.area_mm2);
            assert!(next.read_pj > last.read_pj);
            assert!(next.leakage_mw > last.leakage_mw);
            last = next;
        }
    }

    #[test]
    fn associativity_costs_energy() {
        let base = CacheConfig {
            size_bytes: 64 << 10,
            line_bytes: 64,
            ways: 2,
            hit_latency: 3,
            banks: 4,
        };
        let wide = CacheConfig { ways: 8, ..base };
        assert!(estimate(&wide).read_pj > estimate(&base).read_pj);
    }

    #[test]
    fn hierarchy_reports_all_levels() {
        let (i, d, l2) = hierarchy(
            &CacheConfig::l1i_32k(),
            &CacheConfig::l1d(128),
            Some(&CacheConfig::l2(4)),
        );
        assert!(i.area_mm2 > 0.0 && d.area_mm2 > i.area_mm2 * 0.5);
        assert!(l2.unwrap().area_mm2 > d.area_mm2);
        let (_, _, none) = hierarchy(&CacheConfig::l1i_32k(), &CacheConfig::l1d(32), None);
        assert!(none.is_none());
    }

    #[test]
    fn paper_f4c32_caches_are_a_fraction_of_the_fabric() {
        // The paper's 93 mm² TOP excludes caches; sanity-check that the
        // modelled hierarchy (32K I + 128K D + 4M L2) adds a plausible
        // ~20-30 mm² on top rather than dwarfing the fabric.
        let (i, d, l2) = hierarchy(
            &CacheConfig::l1i_32k(),
            &CacheConfig::l1d(128),
            Some(&CacheConfig::l2(4)),
        );
        let total = i.area_mm2 + d.area_mm2 + l2.unwrap().area_mm2;
        assert!((15.0..40.0).contains(&total), "cache area = {total} mm2");
        assert!(total < 93.07, "caches stay smaller than the DiAG fabric");
    }
}
