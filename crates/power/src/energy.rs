//! Activity-based energy models for DiAG and the out-of-order baseline.
//!
//! The methodology follows the paper (§6.1.3, §7.1, §7.4): per-component
//! energies from the Table 3 synthesis numbers, multiplied by the
//! component utilization the simulator records each run; disabled PEs and
//! FPUs are clock-gated and charged only leakage; register lanes, memory,
//! and control of resident clusters are always powered. The baseline uses
//! a McPAT-style per-event model in which front-end control structures
//! dominate per-instruction energy (§1 cites compute as low as 3% of CPU
//! power).

use diag_sim::RunStats;

use crate::components;

/// Energy of one run, split into the paper's Figure 11 categories.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Floating-point units (clock-gated when idle).
    pub fpu_nj: f64,
    /// Register lanes including integer ALUs (Figure 11 groups them).
    pub lanes_nj: f64,
    /// Memory: LSUs, caches, DRAM, bus data movement.
    pub memory_nj: f64,
    /// Control: fetch/decode (DiAG) or the whole front end (baseline),
    /// ring/core control, leakage of always-on logic.
    pub control_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.fpu_nj + self.lanes_nj + self.memory_nj + self.control_nj
    }

    /// Percentage shares `(fpu, lanes, memory, control)` — Figure 11's
    /// stacked bars.
    pub fn shares(&self) -> (f64, f64, f64, f64) {
        let t = self.total_nj();
        if t == 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        (
            self.fpu_nj / t * 100.0,
            self.lanes_nj / t * 100.0,
            self.memory_nj / t * 100.0,
            self.control_nj / t * 100.0,
        )
    }

    /// Energy efficiency, defined as the paper does (§7.4): the inverse of
    /// total energy spent during execution.
    pub fn efficiency(&self) -> f64 {
        1.0 / self.total_nj()
    }
}

/// Per-event energies (pJ) shared by both machines for the memory
/// hierarchy, CACTI-flavoured at 45 nm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryEnergy {
    /// One L1D access.
    pub l1d_pj: f64,
    /// One L2 access.
    pub l2_pj: f64,
    /// One DRAM line transfer.
    pub dram_pj: f64,
    /// One I-line fetch (L1I read + predecode).
    pub iline_pj: f64,
    /// One 512-bit bus beat.
    pub bus_beat_pj: f64,
}

impl Default for MemoryEnergy {
    fn default() -> MemoryEnergy {
        MemoryEnergy {
            l1d_pj: 35.0,
            l2_pj: 180.0,
            dram_pj: 2600.0,
            iline_pj: 60.0,
            bus_beat_pj: 25.0,
        }
    }
}

/// Energy model for a DiAG processor (Table 3-derived).
#[derive(Debug, Clone, PartialEq)]
pub struct DiagEnergyModel {
    /// FPU dynamic energy per active cycle (Table 3: 105.2 mW @ 1 GHz).
    pub fpu_active_pj: f64,
    /// PE non-FPU dynamic energy per active cycle (PE minus FPU, minus the
    /// lane crossing): ALU, operand latches, local control.
    pub pe_active_pj: f64,
    /// Register-lane energy per lane write.
    pub lane_write_pj: f64,
    /// Register-lane energy per buffered-segment transport.
    pub lane_hop_pj: f64,
    /// Always-on power of one resident PE's lane crossing and latches, per
    /// cycle (REGLANE static + PE leakage).
    pub resident_pj_per_pe_cycle: f64,
    /// Decode energy per instruction (RV_DECODER plus assignment latch).
    pub decode_pj: f64,
    /// Ring control unit + scheduling table per cycle.
    pub control_pj_per_cycle: f64,
    /// Memory-hierarchy events.
    pub mem: MemoryEnergy,
}

impl Default for DiagEnergyModel {
    fn default() -> DiagEnergyModel {
        DiagEnergyModel {
            fpu_active_pj: components::FPU.power_mw,
            // PE (120.4) minus FPU (105.2) minus REGLANE (3.063) ≈ 12.1 pJ
            // of ALU + latch + local-control switching per active cycle.
            pe_active_pj: components::PE.power_mw
                - components::FPU.power_mw
                - components::REGLANE.power_mw,
            lane_write_pj: components::REGLANE.power_mw,
            lane_hop_pj: components::REGLANE.power_mw / 2.0,
            // Paper §7.3.1: lanes and control always powered; FPUs leak
            // very little when gated. One resident PE ≈ one REGLANE at
            // ~40% switching-equivalent plus ~1 pJ PE leakage.
            resident_pj_per_pe_cycle: 0.4 * components::REGLANE.power_mw + 1.0,
            decode_pj: components::RV_DECODER.power_mw + 2.0,
            control_pj_per_cycle: 45.0,
            mem: MemoryEnergy::default(),
        }
    }
}

impl DiagEnergyModel {
    /// Computes the run's energy breakdown from simulator activity.
    pub fn energy(&self, stats: &RunStats) -> EnergyBreakdown {
        let a = &stats.activity;
        let fpu_nj = a.fpu_active_cycles as f64 * self.fpu_active_pj / 1000.0;
        let lanes_nj = (a.pe_active_cycles as f64 * self.pe_active_pj
            + a.reg_writes as f64 * self.lane_write_pj
            + a.lane_transports as f64 * self.lane_hop_pj
            + a.pe_resident_cycles as f64 * self.resident_pj_per_pe_cycle)
            / 1000.0;
        let memory_nj = (a.l1d_accesses as f64 * self.mem.l1d_pj
            + a.l2_accesses as f64 * self.mem.l2_pj
            + a.l2_misses as f64 * self.mem.dram_pj
            + a.bus_beats as f64 * self.mem.bus_beat_pj
            + a.memlane_hits as f64 * self.mem.l1d_pj * 0.2)
            / 1000.0;
        let control_nj = (a.decodes as f64 * self.decode_pj
            + a.line_fetches as f64 * self.mem.iline_pj
            + stats.cycles as f64 * self.control_pj_per_cycle)
            / 1000.0;
        EnergyBreakdown {
            fpu_nj,
            lanes_nj,
            memory_nj,
            control_nj,
        }
    }
}

/// McPAT-style per-event energy model for the out-of-order baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEnergyModel {
    /// Fetch (I-cache read share + predecode) per instruction.
    pub fetch_pj: f64,
    /// Decode per instruction.
    pub decode_pj: f64,
    /// Rename (RAT read/write + free list) per instruction.
    pub rename_pj: f64,
    /// Dispatch + issue-queue write per instruction.
    pub dispatch_pj: f64,
    /// Issue wakeup/select per issued instruction.
    pub issue_pj: f64,
    /// Reorder-buffer write + commit per instruction.
    pub rob_pj: f64,
    /// Physical register file read/write per instruction.
    pub regfile_pj: f64,
    /// Bypass network per executed instruction.
    pub bypass_pj: f64,
    /// Branch predictor lookup/update.
    pub bpred_pj: f64,
    /// Integer ALU op (same 45 nm datapath as DiAG).
    pub int_op_pj: f64,
    /// FP op per active cycle (same FPU as DiAG).
    pub fpu_active_pj: f64,
    /// Static power per core, pJ per cycle.
    pub static_pj_per_cycle: f64,
    /// Memory-hierarchy events.
    pub mem: MemoryEnergy,
}

impl Default for BaselineEnergyModel {
    fn default() -> BaselineEnergyModel {
        BaselineEnergyModel {
            fetch_pj: 32.0,
            decode_pj: 9.0,
            rename_pj: 14.0,
            dispatch_pj: 11.0,
            issue_pj: 16.0,
            rob_pj: 13.0,
            regfile_pj: 12.0,
            bypass_pj: 6.0,
            bpred_pj: 4.0,
            int_op_pj: components::INT_ALU.power_mw + 11.0,
            fpu_active_pj: components::FPU.power_mw,
            static_pj_per_cycle: 110.0,
            mem: MemoryEnergy::default(),
        }
    }
}

impl BaselineEnergyModel {
    /// Computes the run's energy breakdown from simulator activity. The
    /// "lanes" category holds the execution datapath (ALUs, register file,
    /// bypass) so shares remain comparable with DiAG's Figure 11 bars.
    pub fn energy(&self, stats: &RunStats) -> EnergyBreakdown {
        let a = &stats.activity;
        let cores = stats.threads.clamp(1, 12) as f64;
        let fpu_nj = a.fpu_active_cycles as f64 * self.fpu_active_pj / 1000.0;
        let lanes_nj = (a.int_ops as f64 * self.int_op_pj
            + a.reg_writes as f64 * self.regfile_pj
            + a.issues as f64 * self.bypass_pj)
            / 1000.0;
        let memory_nj = (a.l1d_accesses as f64 * self.mem.l1d_pj
            + a.l2_accesses as f64 * self.mem.l2_pj
            + a.l2_misses as f64 * self.mem.dram_pj
            + a.memlane_hits as f64 * self.mem.l1d_pj * 0.2)
            / 1000.0;
        let control_nj = (a.decodes as f64
            * (self.fetch_pj + self.decode_pj + self.rename_pj + self.dispatch_pj + self.rob_pj)
            + a.issues as f64 * self.issue_pj
            + a.bpred_lookups as f64 * self.bpred_pj
            + a.line_fetches as f64 * self.mem.iline_pj
            + stats.cycles as f64 * self.static_pj_per_cycle * cores)
            / 1000.0;
        EnergyBreakdown {
            fpu_nj,
            lanes_nj,
            memory_nj,
            control_nj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_sim::Activity;

    fn compute_heavy_stats() -> RunStats {
        RunStats {
            cycles: 10_000,
            committed: 30_000,
            threads: 1,
            freq_ghz: 2.0,
            activity: Activity {
                pe_active_cycles: 40_000,
                pe_resident_cycles: 320_000, // 32 PEs resident
                fpu_active_cycles: 20_000,
                int_ops: 10_000,
                fp_ops: 5_000,
                loads: 3_000,
                stores: 2_000,
                reg_writes: 25_000,
                lane_transports: 12_000,
                decodes: 40,
                reuse_commits: 29_000,
                line_fetches: 4,
                l1d_accesses: 5_000,
                l1d_misses: 50,
                l2_accesses: 50,
                l2_misses: 10,
                issues: 30_000,
                bpred_lookups: 5_000,
                ..Activity::default()
            },
            ..RunStats::default()
        }
    }

    #[test]
    fn diag_compute_heavy_spends_mostly_on_fpu_and_lanes() {
        let e = DiagEnergyModel::default().energy(&compute_heavy_stats());
        let (fpu, lanes, mem, ctl) = e.shares();
        // Paper §7.3.1: "In compute-heavy benchmarks, DiAG expends close
        // to half of total energy consumed on the functional units …
        // however the 20% overhead on register lanes is nontrivial."
        assert!(fpu > 35.0, "FPU share {fpu:.1}%");
        assert!(lanes > 10.0 && lanes < 45.0, "lane share {lanes:.1}%");
        assert!(mem < 30.0, "memory share {mem:.1}%");
        assert!(ctl < 25.0, "control share {ctl:.1}%");
    }

    #[test]
    fn baseline_control_dominates() {
        // Same architectural work on the baseline: every instruction pays
        // the full front end.
        let mut stats = compute_heavy_stats();
        stats.activity.decodes = 30_000;
        stats.activity.renames = 30_000;
        stats.activity.reuse_commits = 0;
        stats.activity.pe_resident_cycles = 0;
        stats.activity.lane_transports = 0;
        let e = BaselineEnergyModel::default().energy(&stats);
        let (_, _, _, ctl) = e.shares();
        assert!(ctl > 45.0, "baseline control share {ctl:.1}%");
    }

    #[test]
    fn diag_beats_baseline_on_reused_compute() {
        let diag_stats = compute_heavy_stats();
        let mut base_stats = compute_heavy_stats();
        base_stats.activity.decodes = 30_000;
        base_stats.activity.pe_resident_cycles = 0;
        base_stats.activity.lane_transports = 0;
        let e_diag = DiagEnergyModel::default().energy(&diag_stats);
        let e_base = BaselineEnergyModel::default().energy(&base_stats);
        let ratio = e_diag.efficiency() / e_base.efficiency();
        assert!(
            ratio > 1.1 && ratio < 3.5,
            "efficiency improvement should be material but bounded: {ratio:.2}x"
        );
    }

    #[test]
    fn shares_sum_to_hundred() {
        let e = DiagEnergyModel::default().energy(&compute_heavy_stats());
        let (a, b, c, d) = e.shares();
        assert!((a + b + c + d - 100.0).abs() < 1e-9);
        assert!(e.total_nj() > 0.0);
        assert!(e.efficiency() > 0.0);
    }

    #[test]
    fn empty_run_is_zero() {
        let e = DiagEnergyModel::default().energy(&RunStats::default());
        assert_eq!(e.total_nj(), 0.0);
        assert_eq!(e.shares(), (0.0, 0.0, 0.0, 0.0));
    }
}
