//! Plain-text report formatting for tables and figure series.

use std::fmt::Write;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> TextTable {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header's.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut TextTable {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}", cell, width = widths[i] + 2);
                let _ = i;
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let rule: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(rule.min(cols * 40)));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

/// Formats a ratio as the paper writes them (`1.18x`).
pub fn ratio(value: f64) -> String {
    format!("{value:.2}x")
}

/// Geometric mean of a nonempty slice (the paper averages relative
/// performance multiplicatively).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "22222"]);
        let text = t.render();
        assert!(text.contains("name"));
        assert!(text.contains("alpha"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn ratio_format() {
        assert_eq!(ratio(1.18), "1.18x");
        assert_eq!(ratio(0.905), "0.91x");
    }
}
