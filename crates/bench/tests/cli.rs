//! CLI contract tests for the `harness` binary: the help text documents
//! every subcommand, and unknown flags are rejected with the usage exit
//! code rather than being silently ignored.

use std::process::Command;

fn harness() -> Command {
    Command::new(env!("CARGO_BIN_EXE_harness"))
}

/// A fresh scratch directory unique to `test` (plain std; no tempdir
/// crate in this workspace).
fn scratch(test: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("diag-cli-{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_documents_the_bench_subcommand() {
    let out = harness().arg("--help").output().unwrap();
    let text =
        String::from_utf8_lossy(&out.stdout).to_string() + &String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("bench"), "help must list `bench`: {text}");
    assert!(
        text.contains("--quick") && text.contains("--baseline"),
        "help must list bench options: {text}"
    );
}

#[test]
fn bench_rejects_unknown_flags() {
    let out = harness()
        .args(["bench", "--no-such-flag"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "unknown flag must exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("unknown flag"),
        "stderr must name the rejection: {err}"
    );
}

#[test]
fn bench_rejects_unknown_workloads() {
    let out = harness()
        .args(["bench", "definitely-not-a-workload"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn help_documents_the_profile_subcommand() {
    let out = harness().arg("--help").output().unwrap();
    let text =
        String::from_utf8_lossy(&out.stdout).to_string() + &String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("profile"), "help must list `profile`: {text}");
    assert!(
        text.contains("--top") && text.contains("folded") && text.contains("profile diff"),
        "help must list profile options and the diff mode: {text}"
    );
}

#[test]
fn profile_rejects_unknown_flags_and_formats() {
    let out = harness()
        .args(["profile", "hotspot", "--no-such-flag"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "unknown flag must exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flag"), "{err}");

    let out = harness()
        .args(["profile", "hotspot", "--format", "xml"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "unknown format must exit 2");
}

#[test]
fn out_paths_create_missing_parent_directories() {
    let dir = scratch("mkdirs");
    // Both exporters that take --out must create intermediate dirs.
    let profile_out = dir.join("a/b/profile.json");
    let out = harness()
        .args(["profile", "hotspot", "--quick", "--format", "json", "--out"])
        .arg(&profile_out)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&profile_out).expect("profile written");
    assert!(json.contains("diag-profile-v1"), "schema header: {json}");
    assert!(json.contains("\"host\""), "host metadata header: {json}");

    let trace_out = dir.join("c/d/trace.jsonl");
    let out = harness()
        .args(["trace", "hotspot", "--quick", "--format", "jsonl", "--out"])
        .arg(&trace_out)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(trace_out.exists(), "trace written into created dirs");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn profile_diff_of_identical_profiles_reports_no_changes() {
    let dir = scratch("diff");
    let path = dir.join("p.json");
    let out = harness()
        .args(["profile", "hotspot", "--quick", "--format", "json", "--out"])
        .arg(&path)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = harness()
        .args(["profile", "diff"])
        .arg(&path)
        .arg(&path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("no per-PC self-cycle changes"),
        "self-diff must be empty: {text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_json_carries_host_metadata() {
    let dir = scratch("benchhost");
    let path = dir.join("bench.json");
    let out = harness()
        .args(["bench", "hotspot", "--quick", "--repeat", "1", "--out"])
        .arg(&path)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&path).expect("bench written");
    for key in [
        "\"host\"",
        "\"rustc\"",
        "\"git_rev\"",
        "\"thin_lto\"",
        "\"repeat\"",
    ] {
        assert!(json.contains(key), "bench JSON must carry {key}: {json}");
    }
    // The baseline parser must still accept reports with the new header.
    diag_bench::hostbench::BenchBaseline::parse(&json).expect("baseline parses");
    let _ = std::fs::remove_dir_all(&dir);
}
