//! CLI contract tests for the `harness` binary: the help text documents
//! every subcommand, and unknown flags are rejected with the usage exit
//! code rather than being silently ignored.

use std::process::Command;

fn harness() -> Command {
    Command::new(env!("CARGO_BIN_EXE_harness"))
}

/// A fresh scratch directory unique to `test` (plain std; no tempdir
/// crate in this workspace).
fn scratch(test: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("diag-cli-{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_documents_the_bench_subcommand() {
    let out = harness().arg("--help").output().unwrap();
    let text =
        String::from_utf8_lossy(&out.stdout).to_string() + &String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("bench"), "help must list `bench`: {text}");
    assert!(
        text.contains("--quick") && text.contains("--baseline"),
        "help must list bench options: {text}"
    );
}

#[test]
fn bench_rejects_unknown_flags() {
    let out = harness()
        .args(["bench", "--no-such-flag"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "unknown flag must exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("unknown flag"),
        "stderr must name the rejection: {err}"
    );
}

#[test]
fn bench_rejects_unknown_workloads() {
    let out = harness()
        .args(["bench", "definitely-not-a-workload"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn help_documents_the_profile_subcommand() {
    let out = harness().arg("--help").output().unwrap();
    let text =
        String::from_utf8_lossy(&out.stdout).to_string() + &String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("profile"), "help must list `profile`: {text}");
    assert!(
        text.contains("--top") && text.contains("folded") && text.contains("profile diff"),
        "help must list profile options and the diff mode: {text}"
    );
}

#[test]
fn profile_rejects_unknown_flags_and_formats() {
    let out = harness()
        .args(["profile", "hotspot", "--no-such-flag"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "unknown flag must exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flag"), "{err}");

    let out = harness()
        .args(["profile", "hotspot", "--format", "xml"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "unknown format must exit 2");
}

#[test]
fn out_paths_create_missing_parent_directories() {
    let dir = scratch("mkdirs");
    // Both exporters that take --out must create intermediate dirs.
    let profile_out = dir.join("a/b/profile.json");
    let out = harness()
        .args(["profile", "hotspot", "--quick", "--format", "json", "--out"])
        .arg(&profile_out)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&profile_out).expect("profile written");
    assert!(json.contains("diag-profile-v1"), "schema header: {json}");
    assert!(json.contains("\"host\""), "host metadata header: {json}");

    let trace_out = dir.join("c/d/trace.jsonl");
    let out = harness()
        .args(["trace", "hotspot", "--quick", "--format", "jsonl", "--out"])
        .arg(&trace_out)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(trace_out.exists(), "trace written into created dirs");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn profile_diff_of_identical_profiles_reports_no_changes() {
    let dir = scratch("diff");
    let path = dir.join("p.json");
    let out = harness()
        .args(["profile", "hotspot", "--quick", "--format", "json", "--out"])
        .arg(&path)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = harness()
        .args(["profile", "diff"])
        .arg(&path)
        .arg(&path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("no per-PC self-cycle changes"),
        "self-diff must be empty: {text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_json_carries_host_metadata() {
    let dir = scratch("benchhost");
    let path = dir.join("bench.json");
    let out = harness()
        .args(["bench", "hotspot", "--quick", "--repeat", "1", "--out"])
        .arg(&path)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&path).expect("bench written");
    for key in [
        "\"host\"",
        "\"rustc\"",
        "\"git_rev\"",
        "\"thin_lto\"",
        "\"repeat\"",
        "\"cache_hits\"",
        "\"cache_builds\"",
        "\"cache_disk_hits\"",
        "\"cache_disk_writes\"",
    ] {
        assert!(json.contains(key), "bench JSON must carry {key}: {json}");
    }
    // The baseline parser must still accept reports with the new header.
    diag_bench::hostbench::BenchBaseline::parse(&json).expect("baseline parses");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Runs the harness with the given args, asserting exit 0, and returns
/// (stdout, stderr).
fn run_ok(args: &[&str]) -> (Vec<u8>, String) {
    let out = harness().args(args).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "harness {args:?}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    (out.stdout, String::from_utf8_lossy(&out.stderr).to_string())
}

#[test]
fn scale_flag_is_uniform_and_validated() {
    // `analyze` historically hard-coded tiny inputs; now every
    // subcommand takes --scale and rejects unknown values.
    let dir = scratch("scale");
    let cache = dir.join("cache");
    let cache = cache.to_str().unwrap();
    let (tiny, _) = run_ok(&[
        "analyze",
        "hotspot",
        "--json",
        "--scale",
        "tiny",
        "--cache-dir",
        cache,
    ]);
    let (quick, _) = run_ok(&["analyze", "hotspot", "--json", "--cache-dir", cache]);
    assert_eq!(tiny, quick, "analyze default scale is tiny");

    let out = harness()
        .args(["sweep", "hotspot", "--scale", "huge"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "unknown scale must exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown scale"), "{err}");

    // `--quick` remains as the tiny alias on sweep-style subcommands.
    let out = harness()
        .args(["run", "table2", "--quick"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cold_and_warm_outputs_are_byte_identical() {
    let dir = scratch("coldwarm");
    let cache = dir.join("cache");
    let cache = cache.to_str().unwrap();

    // analyze: report text comes back from the disk blob on the warm
    // runs and must not differ by a byte.
    let (cold, _) = run_ok(&["analyze", "hotspot", "--json", "--cache-dir", cache]);
    let (warm, warm_err) = run_ok(&["analyze", "hotspot", "--json", "--cache-dir", cache]);
    assert_eq!(cold, warm, "analyze output changed between cold and warm");
    assert!(
        warm_err.contains("disk") && !warm_err.contains("disk 0 hits"),
        "warm run must report disk hits on stderr: {warm_err}"
    );

    // no-cache runs produce the same bytes as cached ones.
    let (uncached, _) = run_ok(&["analyze", "hotspot", "--json", "--no-cache"]);
    assert_eq!(cold, uncached, "--no-cache changed analyze output");

    // sweep and profile: simulation-derived stdout is cache-invariant.
    let sweep_args = [
        "sweep",
        "hotspot",
        "--quick",
        "--jobs",
        "2",
        "--cache-dir",
        cache,
    ];
    let (cold, _) = run_ok(&sweep_args);
    let (warm, _) = run_ok(&sweep_args);
    assert_eq!(cold, warm, "sweep output changed between cold and warm");

    let profile_args = [
        "profile",
        "hotspot",
        "--quick",
        "--format",
        "folded",
        "--cache-dir",
        cache,
    ];
    let (cold, _) = run_ok(&profile_args);
    let (warm, _) = run_ok(&profile_args);
    assert_eq!(cold, warm, "profile output changed between cold and warm");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cache_blobs_are_rebuilt_not_served() {
    let dir = scratch("corruptcli");
    let cache_dir = dir.join("cache");
    let cache = cache_dir.to_str().unwrap();
    let (cold, _) = run_ok(&["analyze", "hotspot", "--json", "--cache-dir", cache]);

    // Truncate every blob mid-payload.
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&cache_dir).expect("cache populated") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|x| x.to_str()) != Some("blob") {
            continue;
        }
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        corrupted += 1;
    }
    assert!(corrupted > 0, "cold run must have written blobs");

    let (rebuilt, _) = run_ok(&["analyze", "hotspot", "--json", "--cache-dir", cache]);
    assert_eq!(
        cold, rebuilt,
        "corrupt blobs must rebuild to identical output"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_subcommand_reports_and_clears() {
    let dir = scratch("cachecmd");
    let cache = dir.join("cache");
    let cache = cache.to_str().unwrap();
    run_ok(&["analyze", "hotspot", "--json", "--cache-dir", cache]);

    let (stats, _) = run_ok(&["cache", "stats", "--cache-dir", cache]);
    let stats = String::from_utf8_lossy(&stats).to_string();
    assert!(!stats.contains(": 0 blobs"), "populated cache: {stats}");

    let (cleared, _) = run_ok(&["cache", "clear", "--cache-dir", cache]);
    let cleared = String::from_utf8_lossy(&cleared).to_string();
    assert!(cleared.contains("removed"), "{cleared}");

    let (stats, _) = run_ok(&["cache", "stats", "--cache-dir", cache]);
    let stats = String::from_utf8_lossy(&stats).to_string();
    assert!(stats.contains(": 0 blobs"), "cleared cache: {stats}");

    // Missing mode is a usage error.
    let out = harness().args(["cache"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}
