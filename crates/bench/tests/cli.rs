//! CLI contract tests for the `harness` binary: the help text documents
//! every subcommand, and unknown flags are rejected with the usage exit
//! code rather than being silently ignored.

use std::process::Command;

fn harness() -> Command {
    Command::new(env!("CARGO_BIN_EXE_harness"))
}

#[test]
fn help_documents_the_bench_subcommand() {
    let out = harness().arg("--help").output().unwrap();
    let text =
        String::from_utf8_lossy(&out.stdout).to_string() + &String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("bench"), "help must list `bench`: {text}");
    assert!(
        text.contains("--quick") && text.contains("--baseline"),
        "help must list bench options: {text}"
    );
}

#[test]
fn bench_rejects_unknown_flags() {
    let out = harness()
        .args(["bench", "--no-such-flag"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "unknown flag must exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("unknown flag"),
        "stderr must name the rejection: {err}"
    );
}

#[test]
fn bench_rejects_unknown_workloads() {
    let out = harness()
        .args(["bench", "definitely-not-a-workload"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}
