//! Criterion microbenchmarks of the simulators themselves: host-side
//! throughput (simulated instructions per wall second) for each machine
//! model on representative kernels, plus per-figure regeneration timing
//! at tiny scale.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use diag_baseline::{InOrder, O3Config, OooCpu};
use diag_bench::runner::{run_verified, MachineKind};
use diag_core::{Diag, DiagConfig};
use diag_sim::Machine;
use diag_workloads::{find, Params, Scale, Suite};

fn machine_throughput(c: &mut Criterion) {
    let spec = find("x264").expect("registered");
    let params = Params::tiny();
    let built = spec.build(&params).expect("build");
    let committed = {
        let mut m = InOrder::new();
        m.run(&built.program, 1).expect("run").committed
    };

    let mut group = c.benchmark_group("simulator_throughput_x264");
    group.throughput(Throughput::Elements(committed));
    group.bench_function("inorder", |b| {
        b.iter(|| {
            let mut m = InOrder::new();
            m.run(&built.program, 1).unwrap()
        })
    });
    group.bench_function("ooo_8wide", |b| {
        b.iter(|| {
            let mut m = OooCpu::new(O3Config::aggressive_8wide(), 1);
            m.run(&built.program, 1).unwrap()
        })
    });
    group.bench_function("diag_f4c2", |b| {
        b.iter(|| {
            let mut m = Diag::new(DiagConfig::f4c2());
            m.run(&built.program, 1).unwrap()
        })
    });
    group.bench_function("diag_f4c32", |b| {
        b.iter(|| {
            let mut m = Diag::new(DiagConfig::f4c32());
            m.run(&built.program, 1).unwrap()
        })
    });
    group.finish();
}

fn workload_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("diag_f4c32_kernels");
    group.sample_size(10);
    for name in ["hotspot", "bfs", "kmeans", "deepsjeng"] {
        let spec = find(name).expect("registered");
        group.bench_function(name, |b| {
            b.iter(|| run_verified(&MachineKind::Diag(DiagConfig::f4c32()), &spec, &Params::tiny()))
        });
    }
    group.finish();
}

fn figure_regeneration(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_regeneration_tiny");
    group.sample_size(10);
    group.bench_function("fig9a", |b| {
        b.iter(|| diag_bench::experiments::fig_single_thread(Suite::Rodinia, Scale::Tiny))
    });
    group.bench_function("fig9b", |b| {
        b.iter(|| diag_bench::experiments::fig_multi_thread(Suite::Rodinia, Scale::Tiny))
    });
    group.bench_function("fig10a", |b| {
        b.iter(|| diag_bench::experiments::fig_single_thread(Suite::Spec, Scale::Tiny))
    });
    group.bench_function("fig10b", |b| {
        b.iter(|| diag_bench::experiments::fig_multi_thread(Suite::Spec, Scale::Tiny))
    });
    group.bench_function("fig11", |b| b.iter(|| diag_bench::experiments::fig11(Scale::Tiny)));
    group.bench_function("fig12", |b| b.iter(|| diag_bench::experiments::fig12(Scale::Tiny)));
    group.bench_function("table1", |b| b.iter(|| diag_bench::experiments::table1(Scale::Tiny)));
    group.bench_function("table2", |b| b.iter(diag_bench::experiments::table2));
    group.bench_function("table3", |b| b.iter(diag_bench::experiments::table3));
    group.bench_function("stalls", |b| b.iter(|| diag_bench::experiments::stalls(Scale::Tiny)));
    group.bench_function("ablation_lane", |b| {
        b.iter(|| diag_bench::experiments::ablation_lane(Scale::Tiny))
    });
    group.bench_function("ablation_reuse", |b| {
        b.iter(|| diag_bench::experiments::ablation_reuse(Scale::Tiny))
    });
    group.bench_function("ablation_simt", |b| {
        b.iter(|| diag_bench::experiments::ablation_simt_interval(Scale::Tiny))
    });
    group.finish();
}

criterion_group!(benches, machine_throughput, workload_sweep, figure_regeneration);
criterion_main!(benches);
