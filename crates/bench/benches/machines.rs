//! Microbenchmarks of the simulators themselves: host-side throughput
//! (simulated instructions per wall second) for each machine model on a
//! representative kernel, plus per-figure regeneration timing at tiny
//! scale — including the serial-vs-parallel sweep comparison.
//!
//! Dependency-free timing harness (`harness = false`): run with
//! `cargo bench -p diag-bench`. Measurements are best-of-N wall-clock
//! loops — coarse, but plenty to catch order-of-magnitude regressions
//! offline.

use std::time::Instant;

use diag_baseline::{InOrder, O3Config, OooCpu};
use diag_bench::runner::{run_verified, MachineSpec};
use diag_bench::sweep::default_jobs;
use diag_core::{Diag, DiagConfig};
use diag_pipeline::Session;
use diag_sim::Machine;
use diag_trace::{NullSink, Tracer, VecSink};
use diag_workloads::{find, Params, Scale, Suite};

/// Times `f` over `reps` runs and returns the best wall-clock seconds.
fn best_of<F: FnMut()>(reps: u32, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn machine_throughput() {
    let spec = find("x264").expect("registered");
    let params = Params::tiny();
    let built = spec.build(&params).expect("build");
    let committed = {
        let mut m = InOrder::new();
        m.run(&built.program, 1).expect("run").committed
    };

    println!("simulator throughput on x264 ({committed} dynamic instructions):");
    let report = |name: &str, secs: f64| {
        println!(
            "  {name:10} {:8.2} ms/run, {:7.2} Minstr/s",
            secs * 1e3,
            committed as f64 / secs / 1e6
        );
    };
    report(
        "inorder",
        best_of(5, || {
            let mut m = InOrder::new();
            m.run(&built.program, 1).unwrap();
        }),
    );
    report(
        "ooo_8wide",
        best_of(5, || {
            let mut m = OooCpu::new(O3Config::aggressive_8wide(), 1);
            m.run(&built.program, 1).unwrap();
        }),
    );
    report(
        "diag_f4c2",
        best_of(5, || {
            let mut m = Diag::new(DiagConfig::f4c2());
            m.run(&built.program, 1).unwrap();
        }),
    );
    report(
        "diag_f4c32",
        best_of(5, || {
            let mut m = Diag::new(DiagConfig::f4c32());
            m.run(&built.program, 1).unwrap();
        }),
    );
}

/// Overhead of the `diag-trace` instrumentation: the same kernel run with
/// the tracer off (the default — `emit` is one branch, the event closure
/// never runs), enabled into a discarding [`NullSink`], and enabled into
/// an in-memory [`VecSink`]. The disabled number is the one the <2 %
/// budget in EXPERIMENTS.md refers to.
fn trace_overhead() {
    let spec = find("srad").expect("registered");
    let built = spec.build(&Params::tiny()).expect("build");
    let timed = |tracer: Option<Tracer>| {
        best_of(7, || {
            let mut m = Diag::new(DiagConfig::f4c32());
            if let Some(t) = &tracer {
                m.set_tracer(t.clone());
            }
            m.run(&built.program, 1).unwrap();
        })
    };
    let off = timed(None);
    let null = timed(Some(Tracer::to_sink(NullSink)));
    let vec = timed(Some(Tracer::to_shared(VecSink::shared())));
    println!("trace overhead on srad (diag_f4c32, tiny):");
    println!("  tracer off      {:8.2} ms (baseline)", off * 1e3);
    println!(
        "  null sink       {:8.2} ms ({:+.1} %)",
        null * 1e3,
        (null / off - 1.0) * 1e2
    );
    println!(
        "  vec sink        {:8.2} ms ({:+.1} %)",
        vec * 1e3,
        (vec / off - 1.0) * 1e2
    );
}

fn workload_sweep() {
    println!("diag_f4c32 kernel runs (tiny scale):");
    for name in ["hotspot", "bfs", "kmeans", "deepsjeng"] {
        let spec = find(name).expect("registered");
        let secs = best_of(3, || {
            run_verified(
                &MachineSpec::Diag(DiagConfig::f4c32()),
                &spec,
                &Params::tiny(),
            )
            .expect("verified run");
        });
        println!("  {name:10} {:8.2} ms", secs * 1e3);
    }
}

/// A figure whose regeneration fans runs out over a job count.
type ParallelFig = (&'static str, fn(usize) -> String);
/// A figure with no run fan-out (analytic tables, serial ablations).
type SerialFig = (&'static str, fn() -> String);

fn figure_regeneration() {
    use diag_bench::experiments as exp;
    let jobs = default_jobs();
    println!("figure regeneration (tiny scale, serial vs --jobs {jobs}):");
    // Each call gets a fresh in-memory session so the timings stay
    // cold-preparation figures, comparable with earlier recordings.
    let figs: [ParallelFig; 8] = [
        ("fig9a", |j| {
            exp::fig_single_thread(&Session::in_memory(), Suite::Rodinia, Scale::Tiny, j)
        }),
        ("fig9b", |j| {
            exp::fig_multi_thread(&Session::in_memory(), Suite::Rodinia, Scale::Tiny, j)
        }),
        ("fig10a", |j| {
            exp::fig_single_thread(&Session::in_memory(), Suite::Spec, Scale::Tiny, j)
        }),
        ("fig10b", |j| {
            exp::fig_multi_thread(&Session::in_memory(), Suite::Spec, Scale::Tiny, j)
        }),
        ("fig11", |j| {
            exp::fig11(&Session::in_memory(), Scale::Tiny, j)
        }),
        ("fig12", |j| {
            exp::fig12(&Session::in_memory(), Scale::Tiny, j)
        }),
        ("table1", |j| {
            exp::table1(&Session::in_memory(), Scale::Tiny, j)
        }),
        ("stalls", |j| {
            exp::stalls(&Session::in_memory(), Scale::Tiny, j)
        }),
    ];
    for (name, f) in figs {
        let serial = best_of(2, || {
            f(1);
        });
        let parallel = best_of(2, || {
            f(jobs);
        });
        println!(
            "  {name:8} serial {:8.2} ms, parallel {:8.2} ms ({:.2}x)",
            serial * 1e3,
            parallel * 1e3,
            serial / parallel
        );
    }
    let others: [SerialFig; 5] = [
        ("table2", exp::table2),
        ("table3", exp::table3),
        ("abl-lane", || {
            exp::ablation_lane(&Session::in_memory(), Scale::Tiny, 1)
        }),
        ("abl-reuse", || {
            exp::ablation_reuse(&Session::in_memory(), Scale::Tiny, 1)
        }),
        ("abl-simt", || {
            exp::ablation_simt_interval(&Session::in_memory(), Scale::Tiny, 1)
        }),
    ];
    for (name, f) in others {
        let secs = best_of(2, || {
            f();
        });
        println!("  {name:8} {:8.2} ms", secs * 1e3);
    }
}

fn main() {
    machine_throughput();
    trace_overhead();
    workload_sweep();
    figure_regeneration();
}
