//! Pretty-printer for saved telemetry expositions.
//!
//! `harness metrics <file>` renders a `diag-telemetry-v1` JSON
//! exposition — either a bare one (as written by `harness sweep
//! --metrics-out`) or the one embedded in a captured `diag-serve`
//! `metrics` frame — as aligned, human-readable text. Keys arrive
//! sorted (the exposition is a JSON object and the parser keeps object
//! keys in a `BTreeMap`), so the rendering is deterministic.

use diag_trace::json::Value;

/// Renders a `diag-telemetry-v1` exposition document as aligned text:
/// one `counters:` / `gauges:` / `histograms:` section per non-empty
/// family, metric keys left-aligned within each section.
///
/// # Errors
///
/// Rejects documents whose `schema` field is missing or not
/// `diag-telemetry-v1`.
pub fn render(doc: &Value) -> Result<String, String> {
    let schema = doc.get("schema").and_then(Value::as_str);
    if schema != Some(diag_telemetry::SCHEMA) {
        return Err(format!(
            "not a {} exposition (schema: {})",
            diag_telemetry::SCHEMA,
            schema.unwrap_or("missing")
        ));
    }
    let mut out = String::new();
    let num = |v: &Value, field: &str| -> u64 {
        v.get(field).and_then(Value::as_num).unwrap_or(0.0) as u64
    };
    if let Some(counters) = doc.get("counters").and_then(Value::as_obj) {
        if !counters.is_empty() {
            let width = counters.keys().map(String::len).max().unwrap_or(0);
            out.push_str("counters:\n");
            for (key, value) in counters {
                let n = value.as_num().unwrap_or(0.0) as u64;
                out.push_str(&format!("  {key:<width$}  {n}\n"));
            }
        }
    }
    if let Some(gauges) = doc.get("gauges").and_then(Value::as_obj) {
        if !gauges.is_empty() {
            let width = gauges.keys().map(String::len).max().unwrap_or(0);
            out.push_str("gauges:\n");
            for (key, value) in gauges {
                out.push_str(&format!(
                    "  {key:<width$}  {} (high {})\n",
                    num(value, "value"),
                    num(value, "high_water")
                ));
            }
        }
    }
    if let Some(hists) = doc.get("histograms").and_then(Value::as_obj) {
        if !hists.is_empty() {
            let width = hists.keys().map(String::len).max().unwrap_or(0);
            out.push_str("histograms:\n");
            for (key, value) in hists {
                out.push_str(&format!(
                    "  {key:<width$}  count {}  mean {}  p50 {}  p90 {}  p99 {}  max {}\n",
                    num(value, "count"),
                    num(value, "mean"),
                    num(value, "p50"),
                    num(value, "p90"),
                    num(value, "p99"),
                    num(value, "max")
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_telemetry::Registry;
    use diag_trace::json;

    #[test]
    fn renders_a_live_exposition_section_per_family() {
        let registry = Registry::new();
        registry.counter("jobs_total", &[("kind", "a")]).add(3);
        registry.gauge("depth", &[]).set(2);
        registry.histogram("latency_ns", &[]).record(1000);
        let doc = json::parse(&registry.snapshot().to_json()).expect("exposition parses");
        let text = render(&doc).expect("renders");
        assert!(
            text.contains("counters:\n  jobs_total{kind=\"a\"}  3\n"),
            "{text}"
        );
        assert!(text.contains("gauges:\n  depth  2 (high 2)\n"), "{text}");
        assert!(text.contains("latency_ns  count 1"), "{text}");
        assert!(text.contains("p99 1023"), "{text}");
    }

    #[test]
    fn empty_registry_renders_empty() {
        let doc = json::parse(&Registry::new().snapshot().to_json()).expect("parses");
        assert_eq!(render(&doc).expect("renders"), "");
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let doc = json::parse("{\"schema\":\"bogus\"}").expect("parses");
        let err = render(&doc).expect_err("rejected");
        assert!(err.contains("bogus"), "{err}");
        let doc = json::parse("{}").expect("parses");
        let err = render(&doc).expect_err("rejected");
        assert!(err.contains("missing"), "{err}");
    }
}
