//! Shared flag parsing for the `harness` subcommands.
//!
//! Historically every subcommand hand-rolled its own `--machine`,
//! `--threads`, `--simt`, `--quick`, and `--out` loops, and they drifted
//! (`analyze` could not change scale at all). This module is the one
//! table-driven parser: a [`CliSpec`] names which common flags a
//! subcommand accepts plus any subcommand-specific extras, and
//! [`parse`] rejects everything else with a message the caller prints
//! before the usage text. The cache flags (`--no-cache`, `--cache-dir`)
//! are global: every subcommand that prepares artifacts accepts them.

use diag_pipeline::{DiskCache, Session};
use diag_workloads::{Params, Scale};

use crate::runner::MachineSpec;
use crate::sweep::default_jobs;

/// Common flags a subcommand can opt into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flag {
    /// `--scale tiny|small|full` and its `--quick` (= `--scale tiny`)
    /// alias.
    Scale,
    /// `--threads N`.
    Threads,
    /// `--simt`.
    Simt,
    /// `--machine SPEC` in the canonical machine grammar —
    /// `diag[:preset][+key=value,...]`, `ooo[:cores]`, or `inorder`
    /// (see [`MachineSpec::parse`]).
    Machine,
    /// `--jobs N`.
    Jobs,
    /// `--strict`.
    Strict,
    /// `--out FILE`.
    Out,
}

/// A subcommand-specific flag the shared parser captures verbatim.
#[derive(Debug, Clone, Copy)]
pub struct Extra {
    /// Flag spelling, e.g. `--format`.
    pub name: &'static str,
    /// Whether the flag consumes the next argument as its value.
    pub takes_value: bool,
}

/// What one subcommand accepts.
#[derive(Debug, Clone, Copy)]
pub struct CliSpec {
    /// Subcommand name (for error messages).
    pub cmd: &'static str,
    /// Accepted common flags.
    pub flags: &'static [Flag],
    /// Accepted subcommand-specific flags.
    pub extras: &'static [Extra],
    /// Scale when neither `--scale` nor `--quick` is given.
    pub default_scale: Scale,
}

/// Parsed arguments of one subcommand invocation.
#[derive(Debug)]
pub struct CommonArgs {
    /// Problem scale (`--scale` / `--quick`, else the spec's default).
    pub scale: Scale,
    /// `--threads` (default 1).
    pub threads: usize,
    /// `--simt`.
    pub simt: bool,
    /// `--machine` (default `diag:f4c32`).
    pub machine: MachineSpec,
    /// `--jobs` (default: host parallelism).
    pub jobs: usize,
    /// `--strict`.
    pub strict: bool,
    /// `--out`.
    pub out: Option<String>,
    /// `--no-cache`: keep the session in memory only.
    pub no_cache: bool,
    /// `--cache-dir`: on-disk cache location override.
    pub cache_dir: Option<String>,
    /// Non-flag arguments, in order (workload/experiment names).
    pub positionals: Vec<String>,
    extras: Vec<(&'static str, String)>,
}

impl CommonArgs {
    /// Whether a flag-style extra (e.g. `--json`) was given.
    pub fn has(&self, name: &str) -> bool {
        self.extras.iter().any(|(n, _)| *n == name)
    }

    /// The value of a value-taking extra (e.g. `--format`), if given.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.extras
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Build/run parameters from the parsed scale, threads, and SIMT
    /// flags.
    pub fn params(&self) -> Params {
        Params::small()
            .with_scale(self.scale)
            .with_threads(self.threads)
            .with_simt(self.simt)
    }

    /// The artifact session this invocation asked for: in-memory under
    /// `--no-cache`, else disk-backed at `--cache-dir` (default
    /// `target/diag-cache/`), degrading to in-memory if the directory
    /// cannot be created.
    pub fn session(&self) -> Session {
        if self.no_cache {
            return Session::in_memory();
        }
        match &self.cache_dir {
            Some(dir) => match DiskCache::open(dir, DiskCache::DEFAULT_BUDGET) {
                Ok(disk) => Session::with_disk(disk),
                Err(_) => Session::in_memory(),
            },
            None => Session::open_default(),
        }
    }
}

fn value_of<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn positive<T: std::str::FromStr>(
    it: &mut std::slice::Iter<'_, String>,
    flag: &str,
) -> Result<T, String> {
    value_of(it, flag)?
        .parse::<T>()
        .map_err(|_| format!("{flag} needs a positive integer"))
}

/// Parses `args` against `spec`.
///
/// # Errors
///
/// Returns a one-line message on an unknown flag, a flag the subcommand
/// does not accept, a missing value, or an unparsable value — the caller
/// prints it and exits with the usage text.
pub fn parse(spec: &CliSpec, args: &[String]) -> Result<CommonArgs, String> {
    let has = |f: Flag| spec.flags.contains(&f);
    let mut out = CommonArgs {
        scale: spec.default_scale,
        threads: 1,
        simt: false,
        machine: MachineSpec::parse("diag")?,
        jobs: default_jobs(),
        strict: false,
        out: None,
        no_cache: false,
        cache_dir: None,
        positionals: Vec::new(),
        extras: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--no-cache" => out.no_cache = true,
            "--cache-dir" => out.cache_dir = Some(value_of(&mut it, "--cache-dir")?.clone()),
            "--scale" if has(Flag::Scale) => {
                out.scale = match value_of(&mut it, "--scale")?.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    other => return Err(format!("unknown scale `{other}` (tiny|small|full)")),
                };
            }
            "--quick" if has(Flag::Scale) => out.scale = Scale::Tiny,
            "--threads" if has(Flag::Threads) => {
                out.threads = positive::<usize>(&mut it, "--threads")?.max(1);
            }
            "--simt" if has(Flag::Simt) => out.simt = true,
            "--machine" if has(Flag::Machine) => {
                let text = value_of(&mut it, "--machine")?;
                out.machine =
                    MachineSpec::parse(text).map_err(|e| format!("--machine {text}: {e}"))?;
            }
            "--jobs" if has(Flag::Jobs) => {
                out.jobs = positive::<usize>(&mut it, "--jobs")?.max(1);
            }
            "--strict" if has(Flag::Strict) => out.strict = true,
            "--out" if has(Flag::Out) => {
                out.out = Some(value_of(&mut it, "--out")?.clone());
            }
            other => {
                if let Some(extra) = spec.extras.iter().find(|e| e.name == other) {
                    let v = if extra.takes_value {
                        value_of(&mut it, extra.name)?.clone()
                    } else {
                        String::new()
                    };
                    out.extras.push((extra.name, v));
                } else if other.starts_with('-') {
                    return Err(format!("unknown flag `{other}`"));
                } else {
                    out.positionals.push(other.to_string());
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    const FULL: CliSpec = CliSpec {
        cmd: "test",
        flags: &[
            Flag::Scale,
            Flag::Threads,
            Flag::Simt,
            Flag::Machine,
            Flag::Jobs,
            Flag::Strict,
            Flag::Out,
        ],
        extras: &[
            Extra {
                name: "--format",
                takes_value: true,
            },
            Extra {
                name: "--json",
                takes_value: false,
            },
        ],
        default_scale: Scale::Small,
    };

    const BARE: CliSpec = CliSpec {
        cmd: "bare",
        flags: &[],
        extras: &[],
        default_scale: Scale::Small,
    };

    #[test]
    fn parses_every_common_flag() {
        let parsed = parse(
            &FULL,
            &args(&[
                "hotspot",
                "--scale",
                "tiny",
                "--threads",
                "4",
                "--simt",
                "--machine",
                "ooo",
                "--jobs",
                "2",
                "--strict",
                "--out",
                "x.json",
                "--no-cache",
            ]),
        )
        .unwrap();
        assert_eq!(parsed.scale, Scale::Tiny);
        assert_eq!(parsed.threads, 4);
        assert!(parsed.simt);
        assert!(matches!(parsed.machine, MachineSpec::Ooo(12)));
        assert_eq!(parsed.jobs, 2);
        assert!(parsed.strict);
        assert_eq!(parsed.out.as_deref(), Some("x.json"));
        assert!(parsed.no_cache);
        assert_eq!(parsed.positionals, ["hotspot"]);
    }

    #[test]
    fn machine_specs_parse_through_the_grammar() {
        let parsed = parse(
            &FULL,
            &args(&["--machine", "diag:f4c2+clusters=8,lsu_depth=4"]),
        )
        .unwrap();
        let MachineSpec::Diag(cfg) = &parsed.machine else {
            panic!("not diag: {:?}", parsed.machine)
        };
        assert_eq!(cfg.clusters, 8);
        assert_eq!(cfg.lsu_depth, 4);
        assert_eq!(parsed.machine.render(), "diag:f4c2+clusters=8,lsu_depth=4");

        let parsed = parse(&FULL, &args(&[])).unwrap();
        assert_eq!(parsed.machine.render(), "diag:f4c32", "default machine");
    }

    #[test]
    fn quick_is_a_scale_alias() {
        let parsed = parse(&FULL, &args(&["--quick"])).unwrap();
        assert_eq!(parsed.scale, Scale::Tiny);
        let parsed = parse(&FULL, &args(&[])).unwrap();
        assert_eq!(parsed.scale, Scale::Small);
    }

    #[test]
    fn rejects_unknown_flags_and_values() {
        assert!(parse(&FULL, &args(&["--no-such"])).is_err());
        assert!(parse(&FULL, &args(&["--scale", "huge"]))
            .unwrap_err()
            .contains("unknown scale"));
        assert!(parse(&FULL, &args(&["--machine", "vax"]))
            .unwrap_err()
            .contains("unknown machine"));
        assert!(parse(&FULL, &args(&["--machine", "diag+clusters=nope"]))
            .unwrap_err()
            .contains("unsigned integer"));
        assert!(parse(&FULL, &args(&["--threads", "many"]))
            .unwrap_err()
            .contains("positive integer"));
        assert!(parse(&FULL, &args(&["--out"]))
            .unwrap_err()
            .contains("needs a value"));
    }

    #[test]
    fn unaccepted_common_flags_are_rejected() {
        // A spec with no flags rejects every common flag it did not opt
        // into — no silent acceptance of `--simt` on `bench`.
        for flag in [
            "--scale",
            "--quick",
            "--threads",
            "--simt",
            "--machine",
            "--jobs",
        ] {
            let err = parse(&BARE, &args(&[flag])).unwrap_err();
            assert!(err.contains("unknown flag"), "{flag}: {err}");
        }
        // The cache flags are global even on a bare spec.
        assert!(parse(&BARE, &args(&["--no-cache"])).is_ok());
    }

    #[test]
    fn extras_are_captured() {
        let parsed = parse(&FULL, &args(&["--json", "--format", "folded"])).unwrap();
        assert!(parsed.has("--json"));
        assert!(!parsed.has("--top"));
        assert_eq!(parsed.value("--format"), Some("folded"));
        assert!(parse(&FULL, &args(&["--format"])).is_err());
    }

    #[test]
    fn params_carry_scale_threads_simt() {
        let parsed = parse(
            &FULL,
            &args(&["--scale", "full", "--threads", "12", "--simt"]),
        )
        .unwrap();
        let p = parsed.params();
        assert_eq!(p.scale, Scale::Full);
        assert_eq!(p.threads, 12);
        assert!(p.simt);
        assert_eq!(p.seed, Params::small().seed, "seed is not CLI-settable");
    }

    #[test]
    fn no_cache_session_has_no_disk() {
        let parsed = parse(&FULL, &args(&["--no-cache"])).unwrap();
        assert!(parsed.session().disk().is_none());
    }
}
