//! One regeneration function per paper table and figure.
//!
//! Every function prints the same rows/series the paper reports, with the
//! paper's published value alongside ours where the paper states one.
//! Absolute cycle counts are not expected to match the authors' testbed;
//! the *shape* — who wins, by roughly what factor — is the reproduction
//! target (see EXPERIMENTS.md).

use diag_core::{Diag, DiagConfig};
use diag_power::{geomean, ratio, BaselineEnergyModel, DiagEnergyModel, TextTable};
use diag_sim::RunStats;
use diag_workloads::{rodinia_specs, spec_specs, Params, Scale, Suite, WorkloadSpec};

use crate::runner::{run_verified, MachineKind, MT_THREADS};

fn params(scale: Scale) -> Params {
    Params { scale, ..Params::small() }
}

fn diag_configs() -> [(usize, DiagConfig); 3] {
    [
        (32, DiagConfig::f4c2()),
        (256, DiagConfig::f4c16()),
        (512, DiagConfig::f4c32()),
    ]
}

/// A SIMT-friendly F4C32: four clusters per ring so the kernels' pipeline
/// regions fit their rings (paper §7.2.1 notes DiAG must be configured
/// "with enough PEs … to unlock its potential with thread pipelining").
fn simt_config() -> DiagConfig {
    let mut cfg = DiagConfig::f4c32();
    cfg.ring_clusters = 4;
    cfg
}

/// Single-thread relative performance across a suite (Figures 9a / 10a).
pub fn fig_single_thread(suite: Suite, scale: Scale) -> String {
    let specs: Vec<WorkloadSpec> = match suite {
        Suite::Rodinia => rodinia_specs(),
        Suite::Spec => spec_specs(),
    };
    let (fig, paper_avgs) = match suite {
        Suite::Rodinia => ("Figure 9a", [0.91, 1.12, 1.12]),
        Suite::Spec => ("Figure 10a", [0.81, 0.97, 0.97]),
    };
    let p = params(scale);
    let baseline = MachineKind::Ooo(1);
    let mut table =
        TextTable::new(["benchmark", "DiAG 32 PE", "DiAG 256 PE", "DiAG 512 PE"]);
    let mut cols: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for spec in &specs {
        let base = run_verified(&baseline, spec, &p);
        let mut row = vec![spec.name.to_string()];
        for (i, (_, cfg)) in diag_configs().into_iter().enumerate() {
            let ours = run_verified(&MachineKind::Diag(cfg), spec, &p);
            let rel = base.cycles as f64 / ours.cycles as f64;
            cols[i].push(rel);
            row.push(ratio(rel));
        }
        table.row(row);
    }
    let mut out = format!(
        "{fig}: single-thread relative performance vs 1-core 8-issue OoO (higher = faster)\n"
    );
    out.push_str(&table.render());
    for (i, pes) in [32, 256, 512].into_iter().enumerate() {
        out.push_str(&format!(
            "geomean {pes} PEs: {} (paper: {:.2}x)\n",
            ratio(geomean(&cols[i])),
            paper_avgs[i]
        ));
    }
    out
}

/// Multi-thread relative performance across a suite (Figures 9b / 10b),
/// with a SIMT-pipelined series for the capable kernels.
pub fn fig_multi_thread(suite: Suite, scale: Scale) -> String {
    let specs: Vec<WorkloadSpec> = match suite {
        Suite::Rodinia => rodinia_specs(),
        Suite::Spec => spec_specs(),
    };
    let (fig, paper_mt, paper_simt) = match suite {
        Suite::Rodinia => ("Figure 9b", 0.95, 1.2),
        Suite::Spec => ("Figure 10b", 0.97, 1.15),
    };
    let p = params(scale).with_threads(MT_THREADS);
    let baseline = MachineKind::Ooo(MT_THREADS);
    let mut table = TextTable::new(["benchmark", "DiAG 16x2", "DiAG +SIMT"]);
    let mut mt = Vec::new();
    let mut simt = Vec::new();
    for spec in &specs {
        let base = run_verified(&baseline, spec, &p);
        let ours = run_verified(&MachineKind::Diag(DiagConfig::f4c32()), spec, &p);
        let rel = base.cycles as f64 / ours.cycles as f64;
        mt.push(rel);
        let simt_cell = if spec.simt_capable {
            let ps = p.with_simt(true);
            let pipelined = run_verified(&MachineKind::Diag(simt_config()), spec, &ps);
            let rel_simt = base.cycles as f64 / pipelined.cycles as f64;
            simt.push(rel_simt);
            ratio(rel_simt)
        } else {
            simt.push(rel);
            "-".to_string()
        };
        table.row([spec.name.to_string(), ratio(rel), simt_cell]);
    }
    let mut out = format!(
        "{fig}: {MT_THREADS}-thread relative performance vs {MT_THREADS}-core OoO (higher = faster)\n"
    );
    out.push_str(&table.render());
    out.push_str(&format!(
        "geomean multi-thread: {} (paper: {paper_mt:.2}x)\n",
        ratio(geomean(&mt))
    ));
    out.push_str(&format!(
        "geomean with SIMT pipelining: {} (paper: {paper_simt:.2}x)\n",
        ratio(geomean(&simt))
    ));
    out
}

/// Figure 11: energy-consumption breakdown by hardware component for four
/// Rodinia benchmarks.
pub fn fig11(scale: Scale) -> String {
    let names = ["backprop", "bfs", "hotspot", "srad"];
    let p = params(scale);
    let model = DiagEnergyModel::default();
    let mut table = TextTable::new(["benchmark", "FPU %", "reg lanes %", "memory %", "control %"]);
    for name in names {
        let spec = diag_workloads::find(name).expect("registered");
        let stats = run_verified(&MachineKind::Diag(DiagConfig::f4c32()), &spec, &p);
        let e = model.energy(&stats);
        let (fpu, lanes, mem, ctl) = e.shares();
        table.row([
            name.to_string(),
            format!("{fpu:.1}"),
            format!("{lanes:.1}"),
            format!("{mem:.1}"),
            format!("{ctl:.1}"),
        ]);
    }
    let mut out = String::from(
        "Figure 11: DiAG F4C32 energy breakdown by component (paper: FPU ~half in \
         compute-heavy kernels, ~20% register lanes; memory dominates graph traversal)\n",
    );
    out.push_str(&table.render());
    out
}

/// Figure 12: Rodinia energy-efficiency improvement over the baseline
/// (inverse total energy; single-thread, multi-thread, and SIMT series).
pub fn fig12(scale: Scale) -> String {
    let diag_model = DiagEnergyModel::default();
    let base_model = BaselineEnergyModel::default();
    let mut table = TextTable::new(["benchmark", "single", "multi", "+SIMT"]);
    let mut single = Vec::new();
    let mut multi = Vec::new();
    let mut simt = Vec::new();
    for spec in rodinia_specs() {
        let p1 = params(scale);
        let b1 = run_verified(&MachineKind::Ooo(1), &spec, &p1);
        let d1 = run_verified(&MachineKind::Diag(DiagConfig::f4c32()), &spec, &p1);
        let r1 = base_model.energy(&b1).total_nj() / diag_model.energy(&d1).total_nj();
        single.push(r1);

        let pm = p1.with_threads(MT_THREADS);
        let bm = run_verified(&MachineKind::Ooo(MT_THREADS), &spec, &pm);
        let dm = run_verified(&MachineKind::Diag(DiagConfig::f4c32()), &spec, &pm);
        let rm = base_model.energy(&bm).total_nj() / diag_model.energy(&dm).total_nj();
        multi.push(rm);

        let rs = if spec.simt_capable {
            let ps = pm.with_simt(true);
            let ds = run_verified(&MachineKind::Diag(simt_config()), &spec, &ps);
            base_model.energy(&bm).total_nj() / diag_model.energy(&ds).total_nj()
        } else {
            rm
        };
        simt.push(rs);
        table.row([
            spec.name.to_string(),
            ratio(r1),
            ratio(rm),
            if spec.simt_capable { ratio(rs) } else { "-".to_string() },
        ]);
    }
    let mut out = String::from(
        "Figure 12: energy-efficiency improvement vs OoO baseline (higher = better)\n",
    );
    out.push_str(&table.render());
    out.push_str(&format!("geomean single-thread: {} (paper: 1.51x)\n", ratio(geomean(&single))));
    out.push_str(&format!("geomean multi-thread:  {} (paper: 1.35x)\n", ratio(geomean(&multi))));
    out.push_str(&format!("geomean with SIMT:     {} (paper: 1.63x)\n", ratio(geomean(&simt))));
    out
}

/// Table 1: per-instruction front-end event rates, measured.
pub fn table1(scale: Scale) -> String {
    let spec = diag_workloads::find("pathfinder").expect("registered");
    let p = params(scale);
    let ooo = run_verified(&MachineKind::Ooo(1), &spec, &p);
    let diag = run_verified(&MachineKind::Diag(DiagConfig::f4c32()), &spec, &p);
    let mut no_reuse = DiagConfig::f4c32();
    no_reuse.enable_reuse = false;
    let initial = run_verified(&MachineKind::Diag(no_reuse), &spec, &p);

    let per = |n: u64, s: &RunStats| format!("{:.3}", n as f64 / s.committed as f64);
    let mut table = TextTable::new(["event / instr", "OoO", "DiAG (no reuse)", "DiAG (reuse)"]);
    table.row([
        "fetched lines".to_string(),
        per(ooo.activity.line_fetches, &ooo),
        per(initial.activity.line_fetches, &initial),
        per(diag.activity.line_fetches, &diag),
    ]);
    table.row([
        "decodes".to_string(),
        per(ooo.activity.decodes, &ooo),
        per(initial.activity.decodes, &initial),
        per(diag.activity.decodes, &diag),
    ]);
    table.row([
        "renames".to_string(),
        per(ooo.activity.renames, &ooo),
        "0 (reg lanes)".to_string(),
        "0 (reg lanes)".to_string(),
    ]);
    table.row([
        "issues/dispatches".to_string(),
        per(ooo.activity.issues, &ooo),
        "0 (dataflow)".to_string(),
        "0 (dataflow)".to_string(),
    ]);
    table.row([
        "ROB writes".to_string(),
        per(ooo.activity.rob_writes, &ooo),
        "0 (PC lane)".to_string(),
        "0 (PC lane)".to_string(),
    ]);
    let mut out = String::from(
        "Table 1: front-end work per committed instruction (paper: DiAG eliminates \
         rename/issue/dispatch entirely; reuse also eliminates fetch and decode)\n",
    );
    out.push_str(&table.render());
    out.push_str(&format!(
        "DiAG reuse fraction on this loop kernel: {:.1}%\n",
        diag.reuse_fraction() * 100.0
    ));
    out
}

/// Table 2: the evaluated DiAG configurations.
pub fn table2() -> String {
    let mut table = TextTable::new([
        "Configuration",
        "ISA",
        "PEs/Cluster",
        "Clusters",
        "Total PEs",
        "Freq (Sim)",
        "L1D",
        "L2",
    ]);
    for cfg in [DiagConfig::i4c2(), DiagConfig::f4c2(), DiagConfig::f4c16(), DiagConfig::f4c32()] {
        table.row([
            cfg.name.clone(),
            if cfg.fp_enabled { "RV32IMF".to_string() } else { "RV32I".to_string() },
            cfg.pes_per_cluster.to_string(),
            cfg.clusters.to_string(),
            cfg.total_pes().to_string(),
            format!("{} GHz", cfg.freq_ghz),
            format!("{} KB", cfg.l1d.size_bytes >> 10),
            cfg.l2.map_or("N/A".to_string(), |l2| format!("{} MB", l2.size_bytes >> 20)),
        ]);
    }
    format!("Table 2: DiAG configurations used for evaluation\n{}", table.render())
}

/// Table 3: hardware area and power breakdown by component.
pub fn table3() -> String {
    let mut table = TextTable::new(["Component", "Area", "Total Power"]);
    for row in diag_power::components::table3() {
        let area = if row.area_mm2 >= 1.0 {
            format!("{:.3} mm2", row.area_mm2)
        } else {
            format!("{:.1} um2", row.spec.area_um2)
        };
        let power = if row.spec.power_mw >= 1000.0 {
            format!("{:.2} W", row.spec.power_mw / 1000.0)
        } else {
            format!("{:.3} mW", row.spec.power_mw)
        };
        let star = if row.spec.estimated { "*" } else { "" };
        table.row([format!("{}{star}", row.spec.name), area, power]);
    }
    let mut out = format!(
        "Table 3: hardware area and power breakdown (FreePDK 45 nm synthesis values \
         from the paper; * = partially estimated)\n{}",
        table.render()
    );
    // The paper models caches separately with CACTI; append our estimates.
    let cfg = DiagConfig::f4c32();
    let (l1i, l1d, l2) = diag_power::cacti::hierarchy(&cfg.l1i, &cfg.l1d, cfg.l2.as_ref());
    let mut caches = TextTable::new(["Cache (CACTI-style)", "Area", "Read energy"]);
    caches.row(["L1I 32KB".to_string(), format!("{:.2} mm2", l1i.area_mm2), format!("{:.0} pJ", l1i.read_pj)]);
    caches.row(["L1D 128KB".to_string(), format!("{:.2} mm2", l1d.area_mm2), format!("{:.0} pJ", l1d.read_pj)]);
    if let Some(l2) = l2 {
        caches.row(["L2 4MB".to_string(), format!("{:.2} mm2", l2.area_mm2), format!("{:.0} pJ", l2.read_pj)]);
    }
    out.push('\n');
    out.push_str(&caches.render());
    out
}

/// §7.3.2: stall-cause breakdown averaged across the Rodinia suite.
pub fn stalls(scale: Scale) -> String {
    let p = params(scale);
    let mut total = diag_sim::StallBreakdown::default();
    for spec in rodinia_specs() {
        let stats = run_verified(&MachineKind::Diag(DiagConfig::f4c32()), &spec, &p);
        total += stats.stalls;
    }
    let (m, c, o) = total.shares();
    let mut table = TextTable::new(["cause", "measured", "paper"]);
    table.row(["memory".to_string(), format!("{m:.1}%"), "73.6%".to_string()]);
    table.row(["control".to_string(), format!("{c:.1}%"), "21.1%".to_string()]);
    table.row(["other (structural)".to_string(), format!("{o:.1}%"), "5.3%".to_string()]);
    format!("Section 7.3.2: DiAG stall-source breakdown over Rodinia\n{}", table.render())
}

/// Ablation: register-lane buffer interval (paper §6.1.2 fixes it at 8).
pub fn ablation_lane(scale: Scale) -> String {
    let spec = diag_workloads::find("srad").expect("registered");
    let p = params(scale);
    let mut table = TextTable::new(["buffer interval (PEs)", "cycles", "IPC"]);
    for interval in [4usize, 8, 16] {
        let mut cfg = DiagConfig::f4c32();
        cfg.lane_buffer_interval = interval;
        let stats = run_verified(&MachineKind::Diag(cfg), &spec, &p);
        table.row([
            interval.to_string(),
            stats.cycles.to_string(),
            format!("{:.3}", stats.ipc()),
        ]);
    }
    format!(
        "Ablation: register-lane buffer interval on srad (paper buffers every 8 PEs, \
         §6.1.2 — fewer buffers = lower latency but longer critical wires)\n{}",
        table.render()
    )
}

/// Ablation: datapath reuse on/off across loop-heavy kernels.
pub fn ablation_reuse(scale: Scale) -> String {
    let p = params(scale);
    let mut table = TextTable::new(["benchmark", "reuse cycles", "no-reuse cycles", "speedup"]);
    for name in ["pathfinder", "hotspot", "x264", "mcf"] {
        let spec = diag_workloads::find(name).expect("registered");
        let on = run_verified(&MachineKind::Diag(DiagConfig::f4c32()), &spec, &p);
        let mut cfg = DiagConfig::f4c32();
        cfg.enable_reuse = false;
        let off = run_verified(&MachineKind::Diag(cfg), &spec, &p);
        table.row([
            name.to_string(),
            on.cycles.to_string(),
            off.cycles.to_string(),
            ratio(off.cycles as f64 / on.cycles as f64),
        ]);
    }
    format!(
        "Ablation: datapath reuse (§4.3.2) on F4C32 — reuse (with its preemptive \
         loop-line loading) eliminates refetch/redecode of resident loops\n{}",
        table.render()
    )
}

/// Ablation: cluster LSU queue depth (§7.3.2 blames "full LSU request
/// queues" for many memory stalls).
pub fn ablation_lsu(scale: Scale) -> String {
    let spec = diag_workloads::find("mcf").expect("registered");
    let p = params(scale);
    let mut table = TextTable::new(["LSU depth", "cycles", "memory-stall cycles"]);
    for depth in [4usize, 8, 16, 32] {
        let mut cfg = DiagConfig::f4c32();
        cfg.lsu_depth = depth;
        let stats = run_verified(&MachineKind::Diag(cfg), &spec, &p);
        table.row([
            depth.to_string(),
            stats.cycles.to_string(),
            stats.stalls.memory.to_string(),
        ]);
    }
    format!(
        "Ablation: cluster LSU outstanding-request depth on mcf (memory-bound) — \
         deeper queues overlap more misses\n{}",
        table.render()
    )
}

/// Ablation: speculative datapath construction on forward branches
/// (paper §7.3.2 future work: "penalties due to unpredictable control
/// flow changes can potentially be ameliorated by simultaneously
/// constructing multiple speculative datapaths").
pub fn ablation_spec(scale: Scale) -> String {
    let p = params(scale);
    let mut table = TextTable::new(["benchmark", "baseline cycles", "speculative cycles", "speedup"]);
    for name in ["xz", "bfs", "nw", "leela"] {
        let spec = diag_workloads::find(name).expect("registered");
        let plain = run_verified(&MachineKind::Diag(DiagConfig::f4c32()), &spec, &p);
        let mut cfg = DiagConfig::f4c32();
        cfg.speculative_datapaths = true;
        let with = run_verified(&MachineKind::Diag(cfg), &spec, &p);
        table.row([
            name.to_string(),
            plain.cycles.to_string(),
            with.cycles.to_string(),
            ratio(plain.cycles as f64 / with.cycles as f64),
        ]);
    }
    // Suite kernels' forward branches are short skips within resident
    // lines, so the mechanism is neutral there; a synthetic kernel whose
    // taken path crosses I-lines shows the benefit.
    let program = far_branch_program();
    // Under cluster-capacity pressure (F4C2: two clusters, three lines of
    // loop) the taken-path line is evicted every iteration.
    let mut plain_m = Diag::new(DiagConfig::f4c2());
    let plain = diag_sim::Machine::run(&mut plain_m, &program, 1).expect("plain run");
    let mut cfg = DiagConfig::f4c2();
    cfg.speculative_datapaths = true;
    let mut spec_m = Diag::new(cfg);
    let with = diag_sim::Machine::run(&mut spec_m, &program, 1).expect("spec run");
    table.row([
        "far-branch (synthetic, F4C2)".to_string(),
        plain.cycles.to_string(),
        with.cycles.to_string(),
        ratio(plain.cycles as f64 / with.cycles as f64),
    ]);
    format!(
        "Ablation: speculative forward-branch datapaths (§7.3.2 future work). \
         Finding: consistently neutral — once the control unit's preemptive \
         line loading (§5.1.3) and datapath residency are modelled, taken \
         forward branches almost always land on lines that are already (or \
         about to be) resident, so there is little left for speculative \
         construction to hide. The paper's hypothesis targets wrong-path \
         flush costs our model does not simulate\n{}",
        table.render()
    )
}

/// A loop whose taken forward branch lands in a different I-line.
fn far_branch_program() -> diag_asm::Program {
    use diag_isa::regs::*;
    let mut b = diag_asm::ProgramBuilder::new();
    b.li(T0, 2000);
    b.li(T2, 0);
    let top = b.bind_new_label();
    let far = b.new_label();
    b.andi(T1, T0, 1);
    b.bnez(T1, far);
    for _ in 0..3 {
        b.addi(T2, T2, 1);
    }
    for _ in 0..20 {
        b.nop();
    }
    b.bind(far);
    b.addi(T0, T0, -1);
    b.bnez(T0, top);
    b.sw(T2, ZERO, 0);
    b.ecall();
    b.build().expect("synthetic kernel assembles")
}

/// Ablation: SIMT initiation interval (paper §5.4's `interval` operand).
pub fn ablation_simt_interval(scale: Scale) -> String {
    // Rebuild hotspot with different intervals by running the pipelined
    // config against the simt binary; the interval is encoded in simt_s,
    // so vary it through a custom build.
    let p = params(scale).with_simt(true);
    let spec = diag_workloads::find("hotspot").expect("registered");
    let mut table = TextTable::new(["machine", "cycles", "IPC"]);
    let seq = run_verified(&MachineKind::Diag(DiagConfig::f4c32()), &spec, &params(scale));
    table.row(["serial loop (reuse)".to_string(), seq.cycles.to_string(), format!("{:.3}", seq.ipc())]);
    let mut cfg = simt_config();
    cfg.ring_clusters = cfg.clusters; // single ring for single thread
    let piped = run_verified(&MachineKind::Diag(cfg), &spec, &p);
    table.row(["SIMT pipelined".to_string(), piped.cycles.to_string(), format!("{:.3}", piped.ipc())]);
    format!(
        "Ablation: thread pipelining vs serial loop execution on hotspot (single \
         thread, §4.4)\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_and_table3_render() {
        let t2 = table2();
        assert!(t2.contains("F4C32"));
        assert!(t2.contains("512"));
        let t3 = table3();
        assert!(t3.contains("REGLANE"));
        assert!(t3.contains("93.07"));
    }

    #[test]
    fn table1_runs_at_tiny_scale() {
        let t = table1(Scale::Tiny);
        assert!(t.contains("reuse fraction"));
        assert!(t.contains("reg lanes"));
    }

    #[test]
    fn fig11_runs_at_tiny_scale() {
        let t = fig11(Scale::Tiny);
        assert!(t.contains("backprop"));
    }

    #[test]
    fn stalls_runs_at_tiny_scale() {
        let t = stalls(Scale::Tiny);
        assert!(t.contains("73.6%"));
    }
}
