//! One regeneration function per paper table and figure.
//!
//! Every function prints the same rows/series the paper reports, with the
//! paper's published value alongside ours where the paper states one.
//! Absolute cycle counts are not expected to match the authors' testbed;
//! the *shape* — who wins, by roughly what factor — is the reproduction
//! target (see EXPERIMENTS.md).
//!
//! Experiments are two-phase: every simulation run is first enqueued into
//! a [`Sweep`], the sweep executes across `jobs`
//! worker threads, and the tables are then assembled from the results in
//! submission order — so the rendered output is byte-identical at any job
//! count, and a failed run shows up as a `FAIL` cell plus a trailing
//! "failed runs" section instead of aborting the whole figure. Every
//! experiment prepares through the caller's artifact [`Session`], so a
//! `harness run all` assembles each workload once across all figures.

use diag_core::{Diag, DiagConfig};
use diag_pipeline::Session;
use diag_power::{geomean, ratio, BaselineEnergyModel, DiagEnergyModel, TextTable};
use diag_sim::RunStats;
use diag_workloads::{rodinia_specs, spec_specs, Params, Scale, Suite, WorkloadSpec};

use crate::runner::{MachineSpec, MT_THREADS};
use crate::sweep::{append_failures, RunId, Sweep};

/// Figure definitions reference workloads by compile-time constant
/// names, so a lookup miss is a typo in this file, not a runtime input.
fn workload(name: &str) -> WorkloadSpec {
    diag_workloads::find(name).unwrap_or_else(|| panic!("workload `{name}` is not registered"))
}

fn params(scale: Scale) -> Params {
    Params {
        scale,
        ..Params::small()
    }
}

fn diag_configs() -> [(usize, DiagConfig); 3] {
    [
        (32, DiagConfig::f4c2()),
        (256, DiagConfig::f4c16()),
        (512, DiagConfig::f4c32()),
    ]
}

/// A SIMT-friendly F4C32: four clusters per ring so the kernels' pipeline
/// regions fit their rings (paper §7.2.1 notes DiAG must be configured
/// "with enough PEs … to unlock its potential with thread pipelining").
fn simt_config() -> DiagConfig {
    let mut cfg = DiagConfig::f4c32();
    cfg.ring_clusters = 4;
    cfg
}

/// Renders a relative-performance cell, or `FAIL` if a run is missing.
fn cell(rel: Option<f64>) -> String {
    rel.map(ratio).unwrap_or_else(|| "FAIL".to_string())
}

/// Single-thread relative performance across a suite (Figures 9a / 10a).
pub fn fig_single_thread(session: &Session, suite: Suite, scale: Scale, jobs: usize) -> String {
    let specs: Vec<WorkloadSpec> = match suite {
        Suite::Rodinia => rodinia_specs(),
        Suite::Spec => spec_specs(),
    };
    let (fig, paper_avgs) = match suite {
        Suite::Rodinia => ("Figure 9a", [0.91, 1.12, 1.12]),
        Suite::Spec => ("Figure 10a", [0.81, 0.97, 0.97]),
    };
    let p = params(scale);

    // Phase 1: enqueue one baseline run plus one run per DiAG size for
    // every kernel.
    let mut sweep = Sweep::new();
    let queued: Vec<(RunId, [RunId; 3])> = specs
        .iter()
        .map(|spec| {
            let base = sweep.add(MachineSpec::Ooo(1), *spec, p);
            let ours = diag_configs().map(|(_, cfg)| sweep.add(MachineSpec::Diag(cfg), *spec, p));
            (base, ours)
        })
        .collect();
    let results = sweep.execute_with(session, jobs);

    // Phase 2: assemble in submission order.
    let mut table = TextTable::new(["benchmark", "DiAG 32 PE", "DiAG 256 PE", "DiAG 512 PE"]);
    let mut cols: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (spec, (base, ours)) in specs.iter().zip(&queued) {
        let mut row = vec![spec.name.to_string()];
        for (i, id) in ours.iter().enumerate() {
            let rel = results.rel(*base, *id);
            if let Some(rel) = rel {
                cols[i].push(rel);
            }
            row.push(cell(rel));
        }
        table.row(row);
    }
    let mut out = format!(
        "{fig}: single-thread relative performance vs 1-core 8-issue OoO (higher = faster)\n"
    );
    out.push_str(&table.render());
    for (i, pes) in [32, 256, 512].into_iter().enumerate() {
        out.push_str(&format!(
            "geomean {pes} PEs: {} (paper: {:.2}x)\n",
            cell((!cols[i].is_empty()).then(|| geomean(&cols[i]))),
            paper_avgs[i]
        ));
    }
    append_failures(&mut out, &results);
    out
}

/// Multi-thread relative performance across a suite (Figures 9b / 10b),
/// with a SIMT-pipelined series for the capable kernels.
pub fn fig_multi_thread(session: &Session, suite: Suite, scale: Scale, jobs: usize) -> String {
    let specs: Vec<WorkloadSpec> = match suite {
        Suite::Rodinia => rodinia_specs(),
        Suite::Spec => spec_specs(),
    };
    let (fig, paper_mt, paper_simt) = match suite {
        Suite::Rodinia => ("Figure 9b", 0.95, 1.2),
        Suite::Spec => ("Figure 10b", 0.97, 1.15),
    };
    let p = params(scale).with_threads(MT_THREADS);

    let mut sweep = Sweep::new();
    let queued: Vec<(RunId, RunId, Option<RunId>)> = specs
        .iter()
        .map(|spec| {
            let base = sweep.add(MachineSpec::Ooo(MT_THREADS), *spec, p);
            let ours = sweep.add(MachineSpec::Diag(DiagConfig::f4c32()), *spec, p);
            let piped = spec
                .simt_capable
                .then(|| sweep.add(MachineSpec::Diag(simt_config()), *spec, p.with_simt(true)));
            (base, ours, piped)
        })
        .collect();
    let results = sweep.execute_with(session, jobs);

    let mut table = TextTable::new(["benchmark", "DiAG 16x2", "DiAG +SIMT"]);
    let mut mt = Vec::new();
    let mut simt = Vec::new();
    for (spec, (base, ours, piped)) in specs.iter().zip(&queued) {
        let rel = results.rel(*base, *ours);
        if let Some(rel) = rel {
            mt.push(rel);
        }
        let simt_cell = match piped {
            Some(piped) => {
                let rel_simt = results.rel(*base, *piped);
                if let Some(rel_simt) = rel_simt {
                    simt.push(rel_simt);
                }
                cell(rel_simt)
            }
            None => {
                if let Some(rel) = rel {
                    simt.push(rel);
                }
                "-".to_string()
            }
        };
        table.row([spec.name.to_string(), cell(rel), simt_cell]);
    }
    let mut out = format!(
        "{fig}: {MT_THREADS}-thread relative performance vs {MT_THREADS}-core OoO (higher = faster)\n"
    );
    out.push_str(&table.render());
    out.push_str(&format!(
        "geomean multi-thread: {} (paper: {paper_mt:.2}x)\n",
        cell((!mt.is_empty()).then(|| geomean(&mt)))
    ));
    out.push_str(&format!(
        "geomean with SIMT pipelining: {} (paper: {paper_simt:.2}x)\n",
        cell((!simt.is_empty()).then(|| geomean(&simt)))
    ));
    append_failures(&mut out, &results);
    out
}

/// Figure 11: energy-consumption breakdown by hardware component for four
/// Rodinia benchmarks.
pub fn fig11(session: &Session, scale: Scale, jobs: usize) -> String {
    let names = ["backprop", "bfs", "hotspot", "srad"];
    let p = params(scale);
    let model = DiagEnergyModel::default();

    let mut sweep = Sweep::new();
    let ids: Vec<RunId> = names
        .iter()
        .map(|name| {
            let spec = workload(name);
            sweep.add(MachineSpec::Diag(DiagConfig::f4c32()), spec, p)
        })
        .collect();
    let results = sweep.execute_with(session, jobs);

    let mut table = TextTable::new(["benchmark", "FPU %", "reg lanes %", "memory %", "control %"]);
    for (name, id) in names.iter().zip(&ids) {
        match results.stats(*id) {
            Some(stats) => {
                let e = model.energy(stats);
                let (fpu, lanes, mem, ctl) = e.shares();
                table.row([
                    name.to_string(),
                    format!("{fpu:.1}"),
                    format!("{lanes:.1}"),
                    format!("{mem:.1}"),
                    format!("{ctl:.1}"),
                ]);
            }
            None => {
                table.row([
                    name.to_string(),
                    "FAIL".to_string(),
                    "FAIL".to_string(),
                    "FAIL".to_string(),
                    "FAIL".to_string(),
                ]);
            }
        }
    }
    let mut out = String::from(
        "Figure 11: DiAG F4C32 energy breakdown by component (paper: FPU ~half in \
         compute-heavy kernels, ~20% register lanes; memory dominates graph traversal)\n",
    );
    out.push_str(&table.render());
    append_failures(&mut out, &results);
    out
}

/// Figure 12: Rodinia energy-efficiency improvement over the baseline
/// (inverse total energy; single-thread, multi-thread, and SIMT series).
pub fn fig12(session: &Session, scale: Scale, jobs: usize) -> String {
    let diag_model = DiagEnergyModel::default();
    let base_model = BaselineEnergyModel::default();
    let specs = rodinia_specs();
    let p1 = params(scale);
    let pm = p1.with_threads(MT_THREADS);

    let mut sweep = Sweep::new();
    let queued: Vec<(RunId, RunId, RunId, RunId, Option<RunId>)> = specs
        .iter()
        .map(|spec| {
            let b1 = sweep.add(MachineSpec::Ooo(1), *spec, p1);
            let d1 = sweep.add(MachineSpec::Diag(DiagConfig::f4c32()), *spec, p1);
            let bm = sweep.add(MachineSpec::Ooo(MT_THREADS), *spec, pm);
            let dm = sweep.add(MachineSpec::Diag(DiagConfig::f4c32()), *spec, pm);
            let ds = spec
                .simt_capable
                .then(|| sweep.add(MachineSpec::Diag(simt_config()), *spec, pm.with_simt(true)));
            (b1, d1, bm, dm, ds)
        })
        .collect();
    let results = sweep.execute_with(session, jobs);

    // Energy-efficiency ratio of a (baseline, DiAG) run pair.
    let eff = |b: RunId, d: RunId| -> Option<f64> {
        Some(
            base_model.energy(results.stats(b)?).total_nj()
                / diag_model.energy(results.stats(d)?).total_nj(),
        )
    };

    let mut table = TextTable::new(["benchmark", "single", "multi", "+SIMT"]);
    let mut single = Vec::new();
    let mut multi = Vec::new();
    let mut simt = Vec::new();
    for (spec, (b1, d1, bm, dm, ds)) in specs.iter().zip(&queued) {
        let r1 = eff(*b1, *d1);
        if let Some(r1) = r1 {
            single.push(r1);
        }
        let rm = eff(*bm, *dm);
        if let Some(rm) = rm {
            multi.push(rm);
        }
        let rs = match ds {
            Some(ds) => eff(*bm, *ds),
            None => rm,
        };
        if let Some(rs) = rs {
            simt.push(rs);
        }
        table.row([
            spec.name.to_string(),
            cell(r1),
            cell(rm),
            if ds.is_some() {
                cell(rs)
            } else {
                "-".to_string()
            },
        ]);
    }
    let mut out = String::from(
        "Figure 12: energy-efficiency improvement vs OoO baseline (higher = better)\n",
    );
    out.push_str(&table.render());
    out.push_str(&format!(
        "geomean single-thread: {} (paper: 1.51x)\n",
        cell((!single.is_empty()).then(|| geomean(&single)))
    ));
    out.push_str(&format!(
        "geomean multi-thread:  {} (paper: 1.35x)\n",
        cell((!multi.is_empty()).then(|| geomean(&multi)))
    ));
    out.push_str(&format!(
        "geomean with SIMT:     {} (paper: 1.63x)\n",
        cell((!simt.is_empty()).then(|| geomean(&simt)))
    ));
    append_failures(&mut out, &results);
    out
}

/// Table 1: per-instruction front-end event rates, measured.
pub fn table1(session: &Session, scale: Scale, jobs: usize) -> String {
    let spec = workload("pathfinder");
    let p = params(scale);
    let mut no_reuse = DiagConfig::f4c32();
    no_reuse.enable_reuse = false;

    let mut sweep = Sweep::new();
    let ooo_id = sweep.add(MachineSpec::Ooo(1), spec, p);
    let diag_id = sweep.add(MachineSpec::Diag(DiagConfig::f4c32()), spec, p);
    let initial_id = sweep.add(MachineSpec::Diag(no_reuse), spec, p);
    let results = sweep.execute_with(session, jobs);
    let (ooo, diag, initial) = (
        results.stats(ooo_id),
        results.stats(diag_id),
        results.stats(initial_id),
    );

    let per = |pick: fn(&RunStats) -> u64, s: Option<&RunStats>| {
        s.map_or_else(
            || "FAIL".to_string(),
            |s| format!("{:.3}", pick(s) as f64 / s.committed as f64),
        )
    };
    let mut table = TextTable::new(["event / instr", "OoO", "DiAG (no reuse)", "DiAG (reuse)"]);
    table.row([
        "fetched lines".to_string(),
        per(|s| s.activity.line_fetches, ooo),
        per(|s| s.activity.line_fetches, initial),
        per(|s| s.activity.line_fetches, diag),
    ]);
    table.row([
        "decodes".to_string(),
        per(|s| s.activity.decodes, ooo),
        per(|s| s.activity.decodes, initial),
        per(|s| s.activity.decodes, diag),
    ]);
    table.row([
        "renames".to_string(),
        per(|s| s.activity.renames, ooo),
        "0 (reg lanes)".to_string(),
        "0 (reg lanes)".to_string(),
    ]);
    table.row([
        "issues/dispatches".to_string(),
        per(|s| s.activity.issues, ooo),
        "0 (dataflow)".to_string(),
        "0 (dataflow)".to_string(),
    ]);
    table.row([
        "ROB writes".to_string(),
        per(|s| s.activity.rob_writes, ooo),
        "0 (PC lane)".to_string(),
        "0 (PC lane)".to_string(),
    ]);
    let mut out = String::from(
        "Table 1: front-end work per committed instruction (paper: DiAG eliminates \
         rename/issue/dispatch entirely; reuse also eliminates fetch and decode)\n",
    );
    out.push_str(&table.render());
    if let Some(diag) = diag {
        out.push_str(&format!(
            "DiAG reuse fraction on this loop kernel: {:.1}%\n",
            diag.reuse_fraction() * 100.0
        ));
    }
    append_failures(&mut out, &results);
    out
}

/// Table 2: the evaluated DiAG configurations.
pub fn table2() -> String {
    let mut table = TextTable::new([
        "Configuration",
        "ISA",
        "PEs/Cluster",
        "Clusters",
        "Total PEs",
        "Freq (Sim)",
        "L1D",
        "L2",
    ]);
    for cfg in [
        DiagConfig::i4c2(),
        DiagConfig::f4c2(),
        DiagConfig::f4c16(),
        DiagConfig::f4c32(),
    ] {
        table.row([
            cfg.name.clone(),
            if cfg.fp_enabled {
                "RV32IMF".to_string()
            } else {
                "RV32I".to_string()
            },
            cfg.pes_per_cluster.to_string(),
            cfg.clusters.to_string(),
            cfg.total_pes().to_string(),
            format!("{} GHz", cfg.freq_ghz),
            format!("{} KB", cfg.l1d.size_bytes >> 10),
            cfg.l2.map_or("N/A".to_string(), |l2| {
                format!("{} MB", l2.size_bytes >> 20)
            }),
        ]);
    }
    format!(
        "Table 2: DiAG configurations used for evaluation\n{}",
        table.render()
    )
}

/// Table 3: hardware area and power breakdown by component.
pub fn table3() -> String {
    let mut table = TextTable::new(["Component", "Area", "Total Power"]);
    for row in diag_power::components::table3() {
        let area = if row.area_mm2 >= 1.0 {
            format!("{:.3} mm2", row.area_mm2)
        } else {
            format!("{:.1} um2", row.spec.area_um2)
        };
        let power = if row.spec.power_mw >= 1000.0 {
            format!("{:.2} W", row.spec.power_mw / 1000.0)
        } else {
            format!("{:.3} mW", row.spec.power_mw)
        };
        let star = if row.spec.estimated { "*" } else { "" };
        table.row([format!("{}{star}", row.spec.name), area, power]);
    }
    let mut out = format!(
        "Table 3: hardware area and power breakdown (FreePDK 45 nm synthesis values \
         from the paper; * = partially estimated)\n{}",
        table.render()
    );
    // The paper models caches separately with CACTI; append our estimates.
    let cfg = DiagConfig::f4c32();
    let (l1i, l1d, l2) = diag_power::cacti::hierarchy(&cfg.l1i, &cfg.l1d, cfg.l2.as_ref());
    let mut caches = TextTable::new(["Cache (CACTI-style)", "Area", "Read energy"]);
    caches.row([
        "L1I 32KB".to_string(),
        format!("{:.2} mm2", l1i.area_mm2),
        format!("{:.0} pJ", l1i.read_pj),
    ]);
    caches.row([
        "L1D 128KB".to_string(),
        format!("{:.2} mm2", l1d.area_mm2),
        format!("{:.0} pJ", l1d.read_pj),
    ]);
    if let Some(l2) = l2 {
        caches.row([
            "L2 4MB".to_string(),
            format!("{:.2} mm2", l2.area_mm2),
            format!("{:.0} pJ", l2.read_pj),
        ]);
    }
    out.push('\n');
    out.push_str(&caches.render());
    out
}

/// §7.3.2: stall-cause breakdown averaged across the Rodinia suite.
pub fn stalls(session: &Session, scale: Scale, jobs: usize) -> String {
    let p = params(scale);
    let specs = rodinia_specs();
    let mut sweep = Sweep::new();
    let ids: Vec<RunId> = specs
        .iter()
        .map(|spec| sweep.add(MachineSpec::Diag(DiagConfig::f4c32()), *spec, p))
        .collect();
    let results = sweep.execute_with(session, jobs);

    let mut total = diag_sim::StallBreakdown::default();
    for id in &ids {
        if let Some(stats) = results.stats(*id) {
            total += stats.stalls;
        }
    }
    let (m, c, o) = total.shares();
    let mut table = TextTable::new(["cause", "measured", "paper"]);
    table.row([
        "memory".to_string(),
        format!("{m:.1}%"),
        "73.6%".to_string(),
    ]);
    table.row([
        "control".to_string(),
        format!("{c:.1}%"),
        "21.1%".to_string(),
    ]);
    table.row([
        "other (structural)".to_string(),
        format!("{o:.1}%"),
        "5.3%".to_string(),
    ]);
    let mut out = format!(
        "Section 7.3.2: DiAG stall-source breakdown over Rodinia\n{}",
        table.render()
    );
    append_failures(&mut out, &results);
    out
}

/// Ablation: register-lane buffer interval (paper §6.1.2 fixes it at 8).
pub fn ablation_lane(session: &Session, scale: Scale, jobs: usize) -> String {
    let spec = workload("srad");
    let p = params(scale);
    let intervals = [4usize, 8, 16];

    let mut sweep = Sweep::new();
    let ids = intervals.map(|interval| {
        let mut cfg = DiagConfig::f4c32();
        cfg.lane_buffer_interval = interval;
        sweep.add(MachineSpec::Diag(cfg), spec, p)
    });
    let results = sweep.execute_with(session, jobs);

    let mut table = TextTable::new(["buffer interval (PEs)", "cycles", "IPC"]);
    for (interval, id) in intervals.iter().zip(&ids) {
        let (cycles, ipc) = results.stats(*id).map_or_else(
            || ("FAIL".to_string(), "FAIL".to_string()),
            |s| (s.cycles.to_string(), format!("{:.3}", s.ipc())),
        );
        table.row([interval.to_string(), cycles, ipc]);
    }
    let mut out = format!(
        "Ablation: register-lane buffer interval on srad (paper buffers every 8 PEs, \
         §6.1.2 — fewer buffers = lower latency but longer critical wires)\n{}",
        table.render()
    );
    append_failures(&mut out, &results);
    out
}

/// Ablation: datapath reuse on/off across loop-heavy kernels.
pub fn ablation_reuse(session: &Session, scale: Scale, jobs: usize) -> String {
    let p = params(scale);
    let names = ["pathfinder", "hotspot", "x264", "mcf"];

    let mut sweep = Sweep::new();
    let ids: Vec<(RunId, RunId)> = names
        .iter()
        .map(|name| {
            let spec = workload(name);
            let on = sweep.add(MachineSpec::Diag(DiagConfig::f4c32()), spec, p);
            let mut cfg = DiagConfig::f4c32();
            cfg.enable_reuse = false;
            let off = sweep.add(MachineSpec::Diag(cfg), spec, p);
            (on, off)
        })
        .collect();
    let results = sweep.execute_with(session, jobs);

    let mut table = TextTable::new(["benchmark", "reuse cycles", "no-reuse cycles", "speedup"]);
    for (name, (on, off)) in names.iter().zip(&ids) {
        let on = results.stats(*on);
        let off = results.stats(*off);
        table.row([
            name.to_string(),
            on.map_or_else(|| "FAIL".to_string(), |s| s.cycles.to_string()),
            off.map_or_else(|| "FAIL".to_string(), |s| s.cycles.to_string()),
            cell(
                on.zip(off)
                    .map(|(on, off)| off.cycles as f64 / on.cycles as f64),
            ),
        ]);
    }
    let mut out = format!(
        "Ablation: datapath reuse (§4.3.2) on F4C32 — reuse (with its preemptive \
         loop-line loading) eliminates refetch/redecode of resident loops\n{}",
        table.render()
    );
    append_failures(&mut out, &results);
    out
}

/// Ablation: cluster LSU queue depth (§7.3.2 blames "full LSU request
/// queues" for many memory stalls).
pub fn ablation_lsu(session: &Session, scale: Scale, jobs: usize) -> String {
    let spec = workload("mcf");
    let p = params(scale);
    let depths = [4usize, 8, 16, 32];

    let mut sweep = Sweep::new();
    let ids = depths.map(|depth| {
        let mut cfg = DiagConfig::f4c32();
        cfg.lsu_depth = depth;
        sweep.add(MachineSpec::Diag(cfg), spec, p)
    });
    let results = sweep.execute_with(session, jobs);

    let mut table = TextTable::new(["LSU depth", "cycles", "memory-stall cycles"]);
    for (depth, id) in depths.iter().zip(&ids) {
        let (cycles, mem) = results.stats(*id).map_or_else(
            || ("FAIL".to_string(), "FAIL".to_string()),
            |s| (s.cycles.to_string(), s.stalls.memory.to_string()),
        );
        table.row([depth.to_string(), cycles, mem]);
    }
    let mut out = format!(
        "Ablation: cluster LSU outstanding-request depth on mcf (memory-bound) — \
         deeper queues overlap more misses\n{}",
        table.render()
    );
    append_failures(&mut out, &results);
    out
}

/// Ablation: speculative datapath construction on forward branches
/// (paper §7.3.2 future work: "penalties due to unpredictable control
/// flow changes can potentially be ameliorated by simultaneously
/// constructing multiple speculative datapaths").
pub fn ablation_spec(session: &Session, scale: Scale, jobs: usize) -> String {
    let p = params(scale);
    let names = ["xz", "bfs", "nw", "leela"];

    let mut sweep = Sweep::new();
    let ids: Vec<(RunId, RunId)> = names
        .iter()
        .map(|name| {
            let spec = workload(name);
            let plain = sweep.add(MachineSpec::Diag(DiagConfig::f4c32()), spec, p);
            let mut cfg = DiagConfig::f4c32();
            cfg.speculative_datapaths = true;
            let with = sweep.add(MachineSpec::Diag(cfg), spec, p);
            (plain, with)
        })
        .collect();
    let results = sweep.execute_with(session, jobs);

    let mut table = TextTable::new([
        "benchmark",
        "baseline cycles",
        "speculative cycles",
        "speedup",
    ]);
    for (name, (plain, with)) in names.iter().zip(&ids) {
        let plain = results.stats(*plain);
        let with = results.stats(*with);
        table.row([
            name.to_string(),
            plain.map_or_else(|| "FAIL".to_string(), |s| s.cycles.to_string()),
            with.map_or_else(|| "FAIL".to_string(), |s| s.cycles.to_string()),
            cell(
                plain
                    .zip(with)
                    .map(|(p, w)| p.cycles as f64 / w.cycles as f64),
            ),
        ]);
    }
    // Suite kernels' forward branches are short skips within resident
    // lines, so the mechanism is neutral there; a synthetic kernel whose
    // taken path crosses I-lines shows the benefit.
    let program = far_branch_program();
    // Under cluster-capacity pressure (F4C2: two clusters, three lines of
    // loop) the taken-path line is evicted every iteration.
    let mut plain_m = Diag::new(DiagConfig::f4c2());
    // lint: allow(unwrap) — fixed synthetic kernel, terminates within max_cycles
    let plain = diag_sim::Machine::run(&mut plain_m, &program, 1).expect("plain run");
    let mut cfg = DiagConfig::f4c2();
    cfg.speculative_datapaths = true;
    let mut spec_m = Diag::new(cfg);
    // lint: allow(unwrap) — fixed synthetic kernel, terminates within max_cycles
    let with = diag_sim::Machine::run(&mut spec_m, &program, 1).expect("spec run");
    table.row([
        "far-branch (synthetic, F4C2)".to_string(),
        plain.cycles.to_string(),
        with.cycles.to_string(),
        ratio(plain.cycles as f64 / with.cycles as f64),
    ]);
    let mut out = format!(
        "Ablation: speculative forward-branch datapaths (§7.3.2 future work). \
         Finding: consistently neutral — once the control unit's preemptive \
         line loading (§5.1.3) and datapath residency are modelled, taken \
         forward branches almost always land on lines that are already (or \
         about to be) resident, so there is little left for speculative \
         construction to hide. The paper's hypothesis targets wrong-path \
         flush costs our model does not simulate\n{}",
        table.render()
    );
    append_failures(&mut out, &results);
    out
}

/// A loop whose taken forward branch lands in a different I-line.
fn far_branch_program() -> diag_asm::Program {
    use diag_isa::regs::*;
    let mut b = diag_asm::ProgramBuilder::new();
    b.li(T0, 2000);
    b.li(T2, 0);
    let top = b.bind_new_label();
    let far = b.new_label();
    b.andi(T1, T0, 1);
    b.bnez(T1, far);
    for _ in 0..3 {
        b.addi(T2, T2, 1);
    }
    for _ in 0..20 {
        b.nop();
    }
    b.bind(far);
    b.addi(T0, T0, -1);
    b.bnez(T0, top);
    b.sw(T2, ZERO, 0);
    b.ecall();
    // lint: allow(unwrap) — compile-time-constant kernel; a build error is a typo here
    b.build().expect("synthetic kernel assembles")
}

/// Ablation: SIMT initiation interval (paper §5.4's `interval` operand).
pub fn ablation_simt_interval(session: &Session, scale: Scale, jobs: usize) -> String {
    // Rebuild hotspot with different intervals by running the pipelined
    // config against the simt binary; the interval is encoded in simt_s,
    // so vary it through a custom build.
    let spec = workload("hotspot");
    let mut piped_cfg = simt_config();
    piped_cfg.ring_clusters = piped_cfg.clusters; // single ring for single thread

    let mut sweep = Sweep::new();
    let seq_id = sweep.add(MachineSpec::Diag(DiagConfig::f4c32()), spec, params(scale));
    let piped_id = sweep.add(
        MachineSpec::Diag(piped_cfg),
        spec,
        params(scale).with_simt(true),
    );
    let results = sweep.execute_with(session, jobs);

    let mut table = TextTable::new(["machine", "cycles", "IPC"]);
    for (label, id) in [
        ("serial loop (reuse)", seq_id),
        ("SIMT pipelined", piped_id),
    ] {
        let (cycles, ipc) = results.stats(id).map_or_else(
            || ("FAIL".to_string(), "FAIL".to_string()),
            |s| (s.cycles.to_string(), format!("{:.3}", s.ipc())),
        );
        table.row([label.to_string(), cycles, ipc]);
    }
    let mut out = format!(
        "Ablation: thread pipelining vs serial loop execution on hotspot (single \
         thread, §4.4)\n{}",
        table.render()
    );
    append_failures(&mut out, &results);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_and_table3_render() {
        let t2 = table2();
        assert!(t2.contains("F4C32"));
        assert!(t2.contains("512"));
        let t3 = table3();
        assert!(t3.contains("REGLANE"));
        assert!(t3.contains("93.07"));
    }

    #[test]
    fn table1_runs_at_tiny_scale() {
        let t = table1(&Session::in_memory(), Scale::Tiny, 2);
        assert!(t.contains("reuse fraction"));
        assert!(t.contains("reg lanes"));
        assert!(!t.contains("FAIL"), "{t}");
    }

    #[test]
    fn fig11_runs_at_tiny_scale() {
        let t = fig11(&Session::in_memory(), Scale::Tiny, 2);
        assert!(t.contains("backprop"));
        assert!(!t.contains("FAIL"), "{t}");
    }

    #[test]
    fn stalls_runs_at_tiny_scale() {
        let t = stalls(&Session::in_memory(), Scale::Tiny, 2);
        assert!(t.contains("73.6%"));
    }

    #[test]
    fn experiment_output_is_identical_at_any_job_count() {
        let serial = ablation_simt_interval(&Session::in_memory(), Scale::Tiny, 1);
        let parallel = ablation_simt_interval(&Session::in_memory(), Scale::Tiny, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn experiment_output_is_identical_with_a_warm_session() {
        // A session that already holds every artifact must not change a
        // figure's rendered bytes — caching affects cost, not content.
        let session = Session::in_memory();
        let cold = table1(&session, Scale::Tiny, 2);
        let warm = table1(&session, Scale::Tiny, 2);
        assert_eq!(cold, warm);
    }
}
