//! Design-space autotuner: drive a grid of DiAG configurations through
//! the parallel sweep runner and report, per workload, the Pareto
//! frontier of cycles vs energy.
//!
//! The paper's §5 calls the cluster count, ring segmentation, lane
//! buffering interval, and LSU depth "parametrizable"; Table 2 fixes one
//! point (F4C32) for the evaluation. `harness tune` explores the
//! neighbourhood instead: every grid point is a full [`MachineSpec`], so
//! each `(workload, params, machine)` run is content-addressed and
//! memoized by the session's run stage — a warm re-tune rebuilds
//! nothing, and enlarging the grid only simulates the new points.
//!
//! Energy comes from the Table 3-derived [`DiagEnergyModel`]; a
//! configuration is on the frontier when no other grid point is at least
//! as fast *and* at least as frugal (with one strict). Output is
//! deterministic: grid order, submission order, and stable tie-breaks
//! make the report byte-identical at any `--jobs` count.

use diag_pipeline::Session;
use diag_power::DiagEnergyModel;
use diag_workloads::{Params, WorkloadSpec};

use crate::runner::MachineSpec;
use crate::sweep::Sweep;

/// One evaluated grid point of one workload.
#[derive(Debug, Clone)]
pub struct TunePoint {
    /// The configuration, in canonical spec form.
    pub machine: String,
    /// Total run cycles.
    pub cycles: u64,
    /// Total energy of the run under the DiAG model, in nanojoules.
    pub energy_nj: f64,
    /// Whether the point survived Pareto filtering.
    pub on_frontier: bool,
}

/// Every grid point of one workload, frontier-annotated.
#[derive(Debug, Clone)]
pub struct WorkloadFrontier {
    /// Workload name.
    pub workload: String,
    /// All evaluated points, in grid order.
    pub points: Vec<TunePoint>,
    /// Grid points whose run failed, with the error text.
    pub failed: Vec<String>,
}

impl WorkloadFrontier {
    /// The frontier points, fastest first (ties keep grid order).
    pub fn frontier(&self) -> Vec<&TunePoint> {
        let mut f: Vec<&TunePoint> = self.points.iter().filter(|p| p.on_frontier).collect();
        f.sort_by_key(|p| p.cycles);
        f
    }
}

/// A whole `harness tune` result: one frontier per workload.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// Per-workload frontiers, in workload order.
    pub frontiers: Vec<WorkloadFrontier>,
}

impl TuneReport {
    /// Renders the deterministic text report: per workload, the Pareto
    /// frontier (fastest first) and a one-line dominated/failed tally.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for wf in &self.frontiers {
            let frontier = wf.frontier();
            let dominated = wf.points.len() - frontier.len();
            out.push_str(&format!(
                "{}: {} grid points, {} on the cycles/energy frontier\n",
                wf.workload,
                wf.points.len() + wf.failed.len(),
                frontier.len()
            ));
            let mut table = diag_power::TextTable::new(["machine", "cycles", "energy (nJ)"]);
            for p in frontier {
                table.row([
                    p.machine.clone(),
                    p.cycles.to_string(),
                    format!("{:.1}", p.energy_nj),
                ]);
            }
            out.push_str(&table.render());
            out.push_str(&format!(
                "dominated: {dominated}  failed: {}\n",
                wf.failed.len()
            ));
            for f in &wf.failed {
                out.push_str(&format!("  failed: {f}\n"));
            }
            out.push('\n');
        }
        out
    }
}

/// The default exploration grid around F4C32: clusters × ring
/// segmentation × lane buffering interval × LSU depth (the §5
/// parametrizable axes), 36 valid configurations.
pub fn default_grid() -> Vec<MachineSpec> {
    let mut grid = Vec::new();
    for clusters in [8usize, 16, 32] {
        for ring_clusters in [2usize, 4] {
            for lane_buffer_interval in [8usize, 16] {
                for lsu_depth in [4usize, 8, 16] {
                    let text = format!(
                        "diag:f4c32+clusters={clusters},ring_clusters={ring_clusters},\
                         lane_buffer_interval={lane_buffer_interval},lsu_depth={lsu_depth}"
                    );
                    match MachineSpec::parse(&text) {
                        Ok(spec) => grid.push(spec),
                        Err(e) => unreachable!("default grid point `{text}` invalid: {e}"),
                    }
                }
            }
        }
    }
    grid
}

/// Parses a `--grid` override: semicolon-separated machine specs, each
/// in the canonical grammar, all of which must be DiAG configurations
/// (the energy axis is the DiAG model).
///
/// # Errors
///
/// Returns a one-line message on an empty grid, an unparsable spec, or a
/// non-DiAG entry.
pub fn parse_grid(text: &str) -> Result<Vec<MachineSpec>, String> {
    let mut grid = Vec::new();
    for part in text.split(';').filter(|p| !p.trim().is_empty()) {
        let spec = MachineSpec::parse(part.trim()).map_err(|e| format!("--grid {part}: {e}"))?;
        if !matches!(spec, MachineSpec::Diag(_)) {
            return Err(format!(
                "--grid {part}: tune explores DiAG configurations only"
            ));
        }
        grid.push(spec);
    }
    if grid.is_empty() {
        return Err("--grid needs at least one machine spec".to_string());
    }
    Ok(grid)
}

/// Marks the Pareto-optimal points of `(cycles, energy)` pairs: a point
/// is dominated when another is no worse on both axes and strictly
/// better on at least one.
fn pareto(points: &[(u64, f64)]) -> Vec<bool> {
    points
        .iter()
        .map(|&(c, e)| {
            !points
                .iter()
                .any(|&(oc, oe)| (oc <= c && oe <= e) && (oc < c || oe < e))
        })
        .collect()
}

/// Runs every `(workload, grid point)` pair through the parallel sweep
/// runner against `session` and assembles per-workload frontiers. Runs
/// already in the session's run-stage memo (from a previous tune, a
/// sweep, or the disk cache) are served without simulating.
pub fn tune(
    session: &Session,
    specs: &[WorkloadSpec],
    grid: &[MachineSpec],
    params: &Params,
    jobs: usize,
) -> TuneReport {
    let mut queue = Sweep::new();
    let mut ids = Vec::new();
    for spec in specs {
        let row: Vec<_> = grid
            .iter()
            .map(|m| (m.render(), queue.add(m.clone(), *spec, *params)))
            .collect();
        ids.push((spec.name.to_string(), row));
    }
    let results = queue.execute_with(session, jobs);
    let model = DiagEnergyModel::default();
    let mut frontiers = Vec::new();
    for (workload, row) in ids {
        let mut points = Vec::new();
        let mut failed = Vec::new();
        for (machine, id) in row {
            match results.get(id) {
                Ok(stats) => points.push(TunePoint {
                    machine,
                    cycles: stats.cycles,
                    energy_nj: model.energy(stats).total_nj(),
                    on_frontier: false,
                }),
                Err(e) => failed.push(e.to_string()),
            }
        }
        let axes: Vec<(u64, f64)> = points.iter().map(|p| (p.cycles, p.energy_nj)).collect();
        for (p, on) in points.iter_mut().zip(pareto(&axes)) {
            p.on_frontier = on;
        }
        frontiers.push(WorkloadFrontier {
            workload,
            points,
            failed,
        });
    }
    TuneReport { frontiers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_workloads::find;

    #[test]
    fn default_grid_is_large_and_valid() {
        let grid = default_grid();
        assert!(grid.len() >= 24, "grid has {} points", grid.len());
        for spec in &grid {
            let MachineSpec::Diag(cfg) = spec else {
                panic!("non-diag grid point")
            };
            cfg.validate().unwrap();
            // Round-trips through the canonical grammar.
            assert_eq!(MachineSpec::parse(&spec.render()).unwrap(), *spec);
        }
    }

    #[test]
    fn pareto_keeps_exactly_the_non_dominated() {
        let marks = pareto(&[(10, 5.0), (8, 7.0), (12, 6.0), (8, 7.0), (7, 4.0)]);
        // (7,4) dominates everything else; equal duplicates both fall.
        assert_eq!(marks, vec![false, false, false, false, true]);
        let marks = pareto(&[(10, 5.0), (5, 10.0), (7, 7.0)]);
        assert_eq!(marks, vec![true, true, true], "a true frontier survives");
    }

    #[test]
    fn grid_override_parses_and_rejects() {
        let grid = parse_grid("diag:f4c2; diag:f4c2+lsu_depth=4").unwrap();
        assert_eq!(grid.len(), 2);
        assert!(parse_grid("").is_err());
        assert!(parse_grid("ooo").unwrap_err().contains("DiAG"));
        assert!(parse_grid("diag+clusters=zero").is_err());
    }

    #[test]
    fn tune_is_deterministic_and_warm_tune_rebuilds_nothing() {
        let session = Session::in_memory();
        let specs = [find("hotspot").unwrap()];
        let grid = parse_grid("diag:f4c2;diag:f4c2+lsu_depth=4;diag:f4c2+lsu_depth=2").unwrap();
        let params = Params::tiny();

        let cold = tune(&session, &specs, &grid, &params, 2);
        let built = session.counters().runs.builds;
        assert_eq!(built, 3, "every grid point simulates once");
        assert!(!cold.frontiers[0].points.is_empty());
        assert!(
            cold.frontiers[0].points.iter().any(|p| p.on_frontier),
            "some point is always on the frontier"
        );

        let warm = tune(&session, &specs, &grid, &params, 2);
        assert_eq!(
            session.counters().runs.builds,
            built,
            "warm tune must not rebuild any run"
        );
        assert_eq!(warm.render(), cold.render(), "report is deterministic");
    }
}
