//! Host build metadata stamped into benchmark and profile reports.
//!
//! A `BENCH_sim.json` from three months ago is only comparable to
//! today's if you know what produced it: the compiler version, the
//! commit, and whether the build used the workspace's thin-LTO release
//! profile. This module collects those facts once per process (the
//! compiler and git probes shell out) and hands them to the exporters as
//! ordered `(key, value)` pairs. Every probe degrades to `"unknown"` —
//! reports must render identically on hosts without `git` or `rustc` on
//! the `PATH`.

use std::process::Command;
use std::sync::OnceLock;

use diag_pipeline::CacheCounters;

/// Runs `cmd args...` and returns its first line of stdout, trimmed,
/// when the command exists and exits successfully.
fn probe(cmd: &str, args: &[&str]) -> Option<String> {
    let out = Command::new(cmd).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8_lossy(&out.stdout);
    let line = text.lines().next()?.trim();
    if line.is_empty() {
        None
    } else {
        Some(line.to_string())
    }
}

/// Host metadata as ordered `(key, value)` pairs:
///
/// - `rustc` — `rustc --version` of the toolchain on the `PATH` (the
///   toolchain that built this binary, under the usual cargo workflow);
/// - `git_rev` — `git rev-parse --short HEAD` of the working directory;
/// - `thin_lto` — whether this binary was built with the workspace's
///   release profile (`lto = "thin"`); debug builds report `false`.
///
/// Probed once per process; missing tools yield `"unknown"`.
pub fn host_entries() -> &'static [(String, String)] {
    static ENTRIES: OnceLock<Vec<(String, String)>> = OnceLock::new();
    ENTRIES.get_or_init(|| {
        let unknown = || "unknown".to_string();
        vec![
            (
                "rustc".to_string(),
                probe("rustc", &["--version"]).unwrap_or_else(unknown),
            ),
            (
                "git_rev".to_string(),
                probe("git", &["rev-parse", "--short", "HEAD"]).unwrap_or_else(unknown),
            ),
            (
                "thin_lto".to_string(),
                (!cfg!(debug_assertions)).to_string(),
            ),
        ]
    })
}

/// [`host_entries`] plus the run's `repeat` count, for report headers
/// that record how many timing repetitions produced each row.
pub fn host_entries_with_repeat(repeat: u32) -> Vec<(String, String)> {
    let mut entries = host_entries().to_vec();
    entries.push(("repeat".to_string(), repeat.to_string()));
    entries
}

/// Artifact-cache counters as ordered `(key, value)` pairs, appended to
/// the host block by both `BENCH_sim.json` and the `diag-serve` `status`
/// frame — one source of truth for the keys and their order.
pub fn cache_entries(cache: &CacheCounters) -> Vec<(String, String)> {
    vec![
        ("cache_hits".to_string(), cache.hits().to_string()),
        ("cache_builds".to_string(), cache.builds().to_string()),
        ("cache_disk_hits".to_string(), cache.disk_hits.to_string()),
        (
            "cache_disk_writes".to_string(),
            cache.disk_writes.to_string(),
        ),
        (
            "cache_disk_evictions".to_string(),
            cache.disk_evictions.to_string(),
        ),
    ]
}

/// Renders ordered `(key, value)` pairs as a single-line JSON object
/// with string values — the `"host": {...}` block every report embeds.
pub fn render_host_object(entries: &[(String, String)]) -> String {
    format!(
        "{{{}}}",
        entries
            .iter()
            .map(|(k, v)| format!(
                "\"{k}\": \"{}\"",
                v.replace('\\', "\\\\").replace('"', "\\\"")
            ))
            .collect::<Vec<_>>()
            .join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_are_stable_and_complete() {
        let a = host_entries();
        let b = host_entries();
        assert_eq!(a, b, "probes must run once and cache");
        let keys: Vec<&str> = a.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["rustc", "git_rev", "thin_lto"]);
        assert!(a.iter().all(|(_, v)| !v.is_empty()));
    }

    #[test]
    fn repeat_count_is_appended() {
        let entries = host_entries_with_repeat(7);
        assert_eq!(
            entries.last(),
            Some(&("repeat".to_string(), "7".to_string()))
        );
    }

    #[test]
    fn cache_entries_have_fixed_keys() {
        let keys: Vec<String> = cache_entries(&CacheCounters::default())
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(
            keys,
            [
                "cache_hits",
                "cache_builds",
                "cache_disk_hits",
                "cache_disk_writes",
                "cache_disk_evictions"
            ]
        );
    }

    #[test]
    fn host_object_renders_escaped_json() {
        let entries = vec![
            ("rustc".to_string(), "rustc 1.0".to_string()),
            ("note".to_string(), "a \"quoted\" \\ thing".to_string()),
        ];
        let obj = render_host_object(&entries);
        assert_eq!(
            obj,
            "{\"rustc\": \"rustc 1.0\", \"note\": \"a \\\"quoted\\\" \\\\ thing\"}"
        );
        diag_trace::json::parse(&obj).expect("valid JSON");
    }
}
