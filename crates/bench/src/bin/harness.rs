//! Experiment harness CLI: regenerates the paper's tables and figures.
//!
//! ```text
//! harness <experiment> [--quick] [--jobs N] [--strict]
//! harness all [--quick] [--jobs N] [--strict]
//! harness analyze [workload ...|all] [--json] [--threads N] [--simt]
//! ```
//!
//! Experiments: `table1 table2 table3 fig9a fig9b fig10a fig10b fig11
//! fig12 stalls ablation-lane ablation-reuse ablation-simt ablation-lsu ablation-spec`.
//! `--quick` runs tiny inputs (for smoke testing); the default is the
//! benchmarking scale. `--jobs N` shards the simulation runs of each
//! experiment over N worker threads (default: the host's available
//! parallelism); results are byte-identical at any job count. `--strict`
//! exits non-zero if any individual run failed (failures are otherwise
//! reported inline and the remaining rows still render).
//!
//! `analyze` runs the static dataflow analyzer ([`diag_analyze`]) over the
//! named workloads (default: all) without simulating a cycle, printing one
//! text report per kernel — or one JSON object per line with `--json` — and
//! exits non-zero if any kernel has a warning- or error-severity finding.

use diag_bench::experiments;
use diag_workloads::{Scale, Suite};

fn usage() -> ! {
    eprintln!(
        "usage: harness <experiment|all> [--quick] [--jobs N] [--strict]\n\
         \x20      harness analyze [workload ...|all] [--json] [--threads N] [--simt]\n\
         experiments: table1 table2 table3 fig9a fig9b fig10a fig10b fig11 fig12 \
         stalls ablation-lane ablation-reuse ablation-simt ablation-lsu ablation-spec"
    );
    std::process::exit(2)
}

/// The `analyze` subcommand: static analysis over bundled workloads.
/// Returns the process exit code.
fn analyze_cmd(args: &[String]) -> i32 {
    let mut json = false;
    let mut threads = 1usize;
    let mut simt = false;
    let mut names: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--simt" => simt = true,
            "--threads" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--threads needs a positive integer");
                    usage();
                };
                threads = n.max(1);
            }
            other if other.starts_with("--") => usage(),
            other => names.push(other),
        }
    }
    let specs: Vec<diag_workloads::WorkloadSpec> = if names.is_empty() || names == ["all"] {
        diag_workloads::all()
    } else {
        names
            .iter()
            .map(|n| {
                diag_workloads::find(n).unwrap_or_else(|| {
                    eprintln!("unknown workload `{n}`");
                    usage();
                })
            })
            .collect()
    };

    let opts = diag_analyze::AnalyzeOptions {
        config: diag_core::DiagConfig::f4c32(),
        threads,
    };
    let params = diag_workloads::Params::tiny()
        .with_threads(threads)
        .with_simt(simt);
    let mut worst: Option<diag_analyze::Severity> = None;
    for spec in &specs {
        if simt && !spec.simt_capable {
            continue;
        }
        let built = match spec.build(&params) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{}: build failed: {e}", spec.name);
                return 1;
            }
        };
        let analysis = diag_analyze::analyze(&built.program, &opts);
        if json {
            println!("{}", diag_analyze::json_report(spec.name, &analysis));
        } else {
            print!(
                "{}",
                diag_analyze::text_report(spec.name, &built.program, &analysis)
            );
        }
        worst = worst.max(analysis.max_severity());
    }
    if worst >= Some(diag_analyze::Severity::Warning) {
        eprintln!("analyze: findings at warning severity or above (see reports)");
        1
    } else {
        0
    }
}

fn run(name: &str, scale: Scale, jobs: usize) -> Option<String> {
    let out = match name {
        "table1" => experiments::table1(scale, jobs),
        "table2" => experiments::table2(),
        "table3" => experiments::table3(),
        "fig9a" => experiments::fig_single_thread(Suite::Rodinia, scale, jobs),
        "fig9b" => experiments::fig_multi_thread(Suite::Rodinia, scale, jobs),
        "fig10a" => experiments::fig_single_thread(Suite::Spec, scale, jobs),
        "fig10b" => experiments::fig_multi_thread(Suite::Spec, scale, jobs),
        "fig11" => experiments::fig11(scale, jobs),
        "fig12" => experiments::fig12(scale, jobs),
        "stalls" => experiments::stalls(scale, jobs),
        "ablation-lane" => experiments::ablation_lane(scale, jobs),
        "ablation-reuse" => experiments::ablation_reuse(scale, jobs),
        "ablation-simt" => experiments::ablation_simt_interval(scale, jobs),
        "ablation-lsu" => experiments::ablation_lsu(scale, jobs),
        "ablation-spec" => experiments::ablation_spec(scale, jobs),
        _ => return None,
    };
    Some(out)
}

const ALL: [&str; 15] = [
    "table1",
    "table2",
    "table3",
    "fig9a",
    "fig9b",
    "fig10a",
    "fig10b",
    "fig11",
    "fig12",
    "stalls",
    "ablation-lane",
    "ablation-reuse",
    "ablation-simt",
    "ablation-lsu",
    "ablation-spec",
];

/// Marker `sweep::append_failures` puts in a report when runs failed.
const FAILURE_MARKER: &str = "failed runs (";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("analyze") {
        std::process::exit(analyze_cmd(&args[1..]));
    }
    let quick = args.iter().any(|a| a == "--quick");
    let strict = args.iter().any(|a| a == "--strict");
    let mut jobs = diag_bench::sweep::default_jobs();
    let mut names: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" | "--strict" => {}
            "--jobs" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--jobs needs a positive integer");
                    usage();
                };
                jobs = n.max(1);
            }
            other if other.starts_with("--") => usage(),
            other => names.push(other),
        }
    }
    let scale = if quick { Scale::Tiny } else { Scale::Small };
    if names.is_empty() {
        usage();
    }
    let list: Vec<&str> = if names == ["all"] {
        ALL.to_vec()
    } else {
        names
    };
    let mut any_failed = false;
    for (i, name) in list.iter().enumerate() {
        match run(name, scale, jobs) {
            Some(out) => {
                if i > 0 {
                    println!();
                }
                any_failed |= out.contains(FAILURE_MARKER);
                println!("{out}");
            }
            None => usage(),
        }
    }
    if strict && any_failed {
        eprintln!("--strict: at least one run failed (see \"failed runs\" sections above)");
        std::process::exit(1);
    }
}
