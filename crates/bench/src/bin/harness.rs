//! Experiment harness CLI: regenerates the paper's tables and figures.
//!
//! ```text
//! harness <experiment> [--quick]
//! harness all [--quick]
//! ```
//!
//! Experiments: `table1 table2 table3 fig9a fig9b fig10a fig10b fig11
//! fig12 stalls ablation-lane ablation-reuse ablation-simt ablation-lsu ablation-spec`.
//! `--quick` runs tiny inputs (for smoke testing); the default is the
//! benchmarking scale.

use diag_bench::experiments;
use diag_workloads::{Scale, Suite};

fn usage() -> ! {
    eprintln!(
        "usage: harness <experiment|all> [--quick]\n\
         experiments: table1 table2 table3 fig9a fig9b fig10a fig10b fig11 fig12 \
         stalls ablation-lane ablation-reuse ablation-simt ablation-lsu ablation-spec"
    );
    std::process::exit(2)
}

fn run(name: &str, scale: Scale) -> Option<String> {
    let out = match name {
        "table1" => experiments::table1(scale),
        "table2" => experiments::table2(),
        "table3" => experiments::table3(),
        "fig9a" => experiments::fig_single_thread(Suite::Rodinia, scale),
        "fig9b" => experiments::fig_multi_thread(Suite::Rodinia, scale),
        "fig10a" => experiments::fig_single_thread(Suite::Spec, scale),
        "fig10b" => experiments::fig_multi_thread(Suite::Spec, scale),
        "fig11" => experiments::fig11(scale),
        "fig12" => experiments::fig12(scale),
        "stalls" => experiments::stalls(scale),
        "ablation-lane" => experiments::ablation_lane(scale),
        "ablation-reuse" => experiments::ablation_reuse(scale),
        "ablation-simt" => experiments::ablation_simt_interval(scale),
        "ablation-lsu" => experiments::ablation_lsu(scale),
        "ablation-spec" => experiments::ablation_spec(scale),
        _ => return None,
    };
    Some(out)
}

const ALL: [&str; 15] = [
    "table1",
    "table2",
    "table3",
    "fig9a",
    "fig9b",
    "fig10a",
    "fig10b",
    "fig11",
    "fig12",
    "stalls",
    "ablation-lane",
    "ablation-reuse",
    "ablation-simt",
    "ablation-lsu",
    "ablation-spec",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Tiny } else { Scale::Small };
    let names: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    if names.is_empty() {
        usage();
    }
    let list: Vec<&str> = if names == ["all"] { ALL.to_vec() } else { names };
    for (i, name) in list.iter().enumerate() {
        match run(name, scale) {
            Some(out) => {
                if i > 0 {
                    println!();
                }
                println!("{out}");
            }
            None => usage(),
        }
    }
}
