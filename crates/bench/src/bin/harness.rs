//! Experiment harness CLI: regenerates the paper's tables and figures,
//! analyzes workloads statically, sweeps machines, and captures traces.
//!
//! ```text
//! harness run <experiment|all> [--scale S|--quick] [--jobs N] [--strict]
//! harness analyze [workload ...|all] [--json] [--scale S] [--threads N] [--simt]
//! harness sweep [workload ...|all] [--scale S|--quick] [--jobs N] [--strict]
//!               [--metrics-out FILE]
//! harness metrics <file>
//! harness tune [workload ...|all] [--grid SPEC;...] [--scale S|--quick]
//!              [--threads N] [--simt] [--jobs N] [--strict] [--out FILE]
//! harness bench [workload ...|all] [--scale S|--quick] [--repeat N] [--out FILE]
//!               [--baseline FILE] [--max-regress PCT]
//! harness trace <workload> [--machine M] [--format F] [--window N]
//!               [--out FILE] [--threads N] [--simt] [--scale S|--quick]
//! harness profile <workload> [--machine M] [--format text|json|folded]
//!               [--top N] [--out FILE] [--threads N] [--simt] [--scale S|--quick]
//! harness profile diff <before.json> <after.json> [--top N]
//! harness cache stats|clear [--cache-dir DIR]
//! harness serve [--addr HOST:PORT] [--workers N] [--capacity N]
//!               [--quantum N] [--port-file FILE]
//! harness --help
//! ```
//!
//! The leading `run` may be omitted (`harness table1` works), preserving
//! the historical invocation. Unknown flags exit non-zero with the usage
//! text instead of being silently ignored. All subcommands share one
//! flag parser ([`diag_bench::cli`]): `--scale tiny|small|full` picks the
//! input scale uniformly (`--quick` is an alias for `--scale tiny`), and
//! the global `--no-cache` / `--cache-dir DIR` flags control the artifact
//! cache.
//!
//! Everything a subcommand prepares — workload assembly, station-table
//! lowering, static analysis, rendered reports — flows through one
//! content-addressed artifact session (`diag_pipeline::Session`): each
//! stage is built at most once per key per invocation, program images
//! and reports persist under `target/diag-cache/` across invocations,
//! and a one-line cache summary is printed to stderr (stdout stays
//! byte-identical, cold or warm). `--no-cache` keeps the session in
//! memory only; `harness cache stats|clear` inspects or empties the disk
//! layer.
//!
//! Experiments: `table1 table2 table3 fig9a fig9b fig10a fig10b fig11
//! fig12 stalls ablation-lane ablation-reuse ablation-simt ablation-lsu
//! ablation-spec`. `--jobs N` shards the simulation runs of each
//! experiment over N worker threads (default: the host's available
//! parallelism); results are byte-identical at any job count. `--strict`
//! exits non-zero if any individual run failed (failures are otherwise
//! reported inline and the remaining rows still render).
//!
//! `analyze` runs the static dataflow analyzer ([`diag_analyze`]) over the
//! named workloads (default: all) without simulating a cycle, printing one
//! text report per kernel — or one JSON object per line with `--json` — and
//! exits non-zero if any kernel has a warning- or error-severity finding.
//! (Its default scale stays `tiny`: analysis findings do not change with
//! input size, and the CI gate runs it on every push.)
//!
//! `sweep` runs the named workloads (default: all) on every machine model
//! — DiAG f4c32, the 12-core out-of-order baseline, and the in-order
//! reference — in parallel, and prints one cycles/IPC table. With
//! `--metrics-out FILE` the sweep workers are instrumented (busy/idle
//! wall time, per-run host ns and ns/instr histograms) and the telemetry
//! exposition — including the session's cache-stage gauges — is written
//! to FILE as `diag-telemetry-v1` JSON; `harness metrics FILE` renders
//! such a file (or a captured `diag-serve` `metrics` frame) as aligned
//! text.
//!
//! `tune` sweeps a grid of DiAG configurations (default: 36 points
//! around F4C32 on the §5 parametrizable axes; override with
//! `--grid "spec;spec;..."`) over the named workloads and prints each
//! workload's Pareto frontier of cycles vs modeled energy. Every grid
//! run is memoized by the session's run stage, so a warm re-tune
//! simulates nothing and prints a byte-identical report.
//!
//! `bench` times the *simulator itself*: host nanoseconds per committed
//! instruction for every named workload (default: all) on every machine
//! model, serially, best of `--repeat N` runs (default 3). The report is
//! written as JSON to `--out FILE` (default `BENCH_sim.json`); the host
//! metadata object records the artifact-cache counters of the run. With
//! `--baseline FILE` each row gains a `speedup_vs_seed` field against the
//! recorded numbers, and `--max-regress PCT` exits non-zero if the
//! aggregate ns/instr regressed by more than PCT percent.
//!
//! `trace` runs one workload with the [`diag_trace`] subsystem attached
//! and exports the event stream: `--format perfetto` (default) writes
//! Chrome trace-event JSON loadable at <https://ui.perfetto.dev>,
//! `jsonl` writes the canonical one-event-per-line stream, `heatmap` and
//! `timeline` render text views at `--window N` cycles per bucket
//! (default: the run length over 64). `--out FILE` redirects the export
//! from stdout into a file.
//!
//! `profile` runs one workload with the [`diag_profile`] cycle-accounting
//! subsystem attached and reports where the cycles went: `--format text`
//! (default) prints the top-down bucket table and the `--top N` hottest
//! PCs with annotated disassembly, `json` writes the full machine-readable
//! profile (host metadata in the header, exact reconciliation enforced
//! before writing), and `folded` writes collapsed stacks — one
//! `loop;block;instruction count` line per PC — loadable by inferno /
//! speedscope / `flamegraph.pl`. `profile diff <before> <after>` compares
//! two saved JSON profiles and prints per-PC self-cycle deltas.
//!
//! All `--out` paths create missing parent directories.

use diag_bench::cli::{self, CliSpec, CommonArgs, Extra, Flag};
use diag_bench::runner::{build_machine, run_built, MachineSpec};
use diag_bench::sweep::Sweep;
use diag_bench::tune;
use diag_bench::{experiments, hostbench, sweep};
use diag_pipeline::{DiskCache, ReportFormat, Session};
use diag_profile::{
    diff_profiles, render_text, to_folded, CycleModel, Profile, ProfileCollector, ProfileMeta,
    Profiler,
};
use diag_trace::timeline::StallTimeline;
use diag_trace::{heatmap, perfetto, Tracer, VecSink};
use diag_workloads::{Scale, Suite};

const USAGE: &str = "usage: harness <subcommand> [options]

subcommands:
  run <experiment|all>   regenerate a paper table/figure (the leading
                         `run` may be omitted: `harness table1` works)
  analyze [workload ...] static dataflow analysis, no simulation
  verify [workload ...]  abstract-interpretation verifier, no simulation
  sweep [workload ...]   run workloads on every machine; cycles/IPC table
  metrics <file>         pretty-print a saved telemetry exposition
  tune [workload ...]    sweep a DiAG config grid; cycles/energy Pareto frontier
  bench [workload ...]   time the simulator itself; write BENCH_sim.json
  trace <workload>       run one workload with tracing and export events
  profile <workload>     run one workload with cycle accounting attached
  profile diff <a> <b>   compare two saved JSON profiles
  cache stats|clear      inspect or empty the on-disk artifact cache
  serve                  start the persistent experiment server (diag-serve)
  --help                 this message

global options (every subcommand):
  --no-cache             keep artifacts in memory only for this run
  --cache-dir DIR        artifact cache location (default target/diag-cache)

run options:      [--scale tiny|small|full | --quick] [--jobs N] [--strict]
analyze options:  [--json] [--scale tiny|small|full] [--threads N] [--simt]
verify options:   [--json] [--scale tiny|small|full] [--threads N] [--simt]
                  [--strict] [--out FILE]
sweep options:    [--scale tiny|small|full | --quick] [--jobs N] [--strict]
                  [--metrics-out FILE]
tune options:     [--scale tiny|small|full | --quick] [--threads N] [--simt]
                  [--jobs N] [--strict] [--out FILE] [--grid SPEC;SPEC;...]
bench options:    [--scale tiny|small|full | --quick] [--repeat N] [--out FILE]
                  [--baseline FILE] [--max-regress PCT]
trace options:    [--machine SPEC] [--format perfetto|jsonl|heatmap|timeline]
                  [--window N] [--out FILE] [--threads N] [--simt] [--quick]
profile options:  [--machine SPEC] [--format text|json|folded]
                  [--top N] [--out FILE] [--threads N] [--simt] [--quick]

machine specs (--machine, --grid): diag[:preset][+key=value,...] | ooo[:cores]
  | inorder, e.g. diag:f4c32+clusters=16,lsu_depth=8. Presets: i4c2 f4c2
  f4c16 f4c32. Override keys: pes_per_cluster clusters ring_clusters
  lane_buffer_interval lsu_depth memlane_capacity commit_width max_cycles
  reuse simt.
profile diff options: [--top N]
cache options:    [--cache-dir DIR]
serve options:    [--addr HOST:PORT] [--workers N] [--capacity N] [--quantum N]
                  [--port-file FILE]

experiments: table1 table2 table3 fig9a fig9b fig10a fig10b fig11 fig12
             stalls ablation-lane ablation-reuse ablation-simt
             ablation-lsu ablation-spec";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2)
}

/// Parses `args` against `spec`, printing the parse error and the usage
/// text on rejection.
fn parse_or_usage(spec: &CliSpec, args: &[String]) -> CommonArgs {
    cli::parse(spec, args).unwrap_or_else(|e| {
        eprintln!("{e}");
        usage();
    })
}

/// Prints the session's one-line cache summary to stderr (stdout is
/// reserved for subcommand output, which must be byte-identical whether
/// the cache was cold or warm).
fn report_cache(session: &Session) {
    eprintln!("{}", session.counters().summary());
}

/// Writes `text` to `path`, creating any missing parent directories —
/// `--out results/new/run.json` should not fail on a fresh checkout.
fn write_output(path: &str, text: &str) -> Result<(), String> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))
}

/// The `analyze` subcommand: static analysis over bundled workloads.
/// Returns the process exit code.
fn analyze_cmd(args: &[String]) -> i32 {
    const SPEC: CliSpec = CliSpec {
        cmd: "analyze",
        flags: &[Flag::Scale, Flag::Threads, Flag::Simt],
        extras: &[Extra {
            name: "--json",
            takes_value: false,
        }],
        // Findings do not change with input size and the CI gate runs
        // `harness analyze` on every push, so the cheap scale stays the
        // default; `--scale small|full` is available for parity.
        default_scale: Scale::Tiny,
    };
    let args = parse_or_usage(&SPEC, args);
    let json = args.has("--json");
    let specs = resolve_workloads(&args.positionals);
    let session = args.session();

    let opts = diag_analyze::AnalyzeOptions {
        config: diag_core::DiagConfig::f4c32(),
        threads: args.threads,
    };
    let params = args.params();
    let format = if json {
        ReportFormat::Json
    } else {
        ReportFormat::Text
    };
    let mut worst: Option<diag_analyze::Severity> = None;
    for spec in &specs {
        if args.simt && !spec.simt_capable {
            continue;
        }
        let report = match session.analysis_report(spec, &params, &opts, format) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: build failed: {e}", spec.name);
                return 1;
            }
        };
        if json {
            println!("{report}");
        } else {
            print!("{report}");
        }
        let analysis = match session.analysis(spec, &params, &opts) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("{}: build failed: {e}", spec.name);
                return 1;
            }
        };
        worst = worst.max(analysis.max_severity());
    }
    report_cache(&session);
    if worst >= Some(diag_analyze::Severity::Warning) {
        eprintln!("analyze: findings at warning severity or above (see reports)");
        1
    } else {
        0
    }
}

/// The `verify` subcommand: abstract-interpretation verification over
/// bundled workloads. Returns the process exit code.
fn verify_cmd(args: &[String]) -> i32 {
    const SPEC: CliSpec = CliSpec {
        cmd: "verify",
        flags: &[
            Flag::Scale,
            Flag::Threads,
            Flag::Simt,
            Flag::Strict,
            Flag::Out,
        ],
        extras: &[Extra {
            name: "--json",
            takes_value: false,
        }],
        // Like `analyze`: verdicts do not depend on input size and the
        // CI gate runs `verify --strict` on every push, so the cheap
        // scale is the default.
        default_scale: Scale::Tiny,
    };
    let args = parse_or_usage(&SPEC, args);
    let json = args.has("--json");
    let specs = resolve_workloads(&args.positionals);
    let session = args.session();

    let opts = diag_verify::VerifyOptions {
        threads: args.threads,
        trap_vector: None,
    };
    let params = args.params();
    let format = if json {
        ReportFormat::Json
    } else {
        ReportFormat::Text
    };
    let mut refuted = 0usize;
    let mut collected = String::new();
    for spec in &specs {
        if args.simt && !spec.simt_capable {
            continue;
        }
        let report = match session.verification_report(spec, &params, &opts, format) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: build failed: {e}", spec.name);
                return 1;
            }
        };
        if json {
            println!("{report}");
            collected.push_str(&report);
            collected.push('\n');
        } else {
            print!("{report}");
            collected.push_str(&report);
        }
        let verification = match session.verification(spec, &params, &opts) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{}: build failed: {e}", spec.name);
                return 1;
            }
        };
        refuted += verification.refuted_count();
    }
    if let Some(path) = &args.out {
        if let Err(e) = write_output(path, &collected) {
            eprintln!("{e}");
            return 1;
        }
    }
    report_cache(&session);
    eprintln!("verify: {} fixpoint runs", diag_verify::fixpoint_runs());
    if refuted > 0 {
        eprintln!("verify: {refuted} refuted fact(s) (see reports)");
        if args.strict {
            return 1;
        }
    }
    0
}

/// Looks up workload names (empty or `all` → every bundled workload),
/// exiting with usage on an unknown name.
fn resolve_workloads(names: &[String]) -> Vec<diag_workloads::WorkloadSpec> {
    if names.is_empty() || names == ["all"] {
        return diag_workloads::all();
    }
    names
        .iter()
        .map(|n| {
            diag_workloads::find(n).unwrap_or_else(|| {
                eprintln!("unknown workload `{n}`");
                usage();
            })
        })
        .collect()
}

/// The `sweep` subcommand: every named workload on every machine model,
/// one cycles/IPC table. Returns the process exit code.
fn sweep_cmd(args: &[String]) -> i32 {
    const SPEC: CliSpec = CliSpec {
        cmd: "sweep",
        flags: &[Flag::Scale, Flag::Jobs, Flag::Strict],
        extras: &[Extra {
            name: "--metrics-out",
            takes_value: true,
        }],
        default_scale: Scale::Small,
    };
    let args = parse_or_usage(&SPEC, args);
    let specs = resolve_workloads(&args.positionals);
    let params = args.params();
    let session = args.session();
    let machines = [
        MachineSpec::Diag(diag_core::DiagConfig::f4c32()),
        MachineSpec::Ooo(12),
        MachineSpec::InOrder,
    ];
    let mut queue = Sweep::new();
    let mut ids = Vec::new();
    for spec in &specs {
        let row: Vec<_> = machines
            .iter()
            .map(|m| queue.add(m.clone(), *spec, params))
            .collect();
        ids.push((spec.name, row));
    }
    // Worker telemetry is opt-in: without `--metrics-out` the sweep
    // takes the uninstrumented path (no clock reads in the run loop).
    let metrics_out = args.value("--metrics-out").map(str::to_string);
    let registry = diag_telemetry::Registry::new();
    let results = match metrics_out {
        Some(_) => {
            let metrics = sweep::SweepMetrics::new(&registry);
            queue.execute_metered(&session, args.jobs, &metrics)
        }
        None => queue.execute_with(&session, args.jobs),
    };
    let mut table = diag_power::TextTable::new(
        std::iter::once("benchmark".to_string()).chain(machines.iter().map(|m| m.label())),
    );
    for (name, row) in &ids {
        table.row(
            std::iter::once(name.to_string()).chain(row.iter().map(
                |id| match results.stats(*id) {
                    Some(s) => format!("{} cy (IPC {:.2})", s.cycles, s.ipc()),
                    None => "failed".to_string(),
                },
            )),
        );
    }
    let mut out = table.render();
    sweep::append_failures(&mut out, &results);
    println!("{out}");
    report_cache(&session);
    if let Some(path) = &metrics_out {
        session.export_telemetry(&registry);
        let mut json = registry.snapshot().to_json();
        json.push('\n');
        if let Err(e) = write_output(path, &json) {
            eprintln!("{e}");
            return 1;
        }
        eprintln!("wrote telemetry exposition to {path}");
    }
    if args.strict && !results.failures().is_empty() {
        eprintln!("--strict: at least one run failed");
        return 1;
    }
    0
}

/// The `metrics` subcommand: pretty-print a saved telemetry exposition
/// — a `--metrics-out` file, or a captured `diag-serve` `metrics` frame
/// (the embedded `json` document is used). Returns the process exit
/// code.
fn metrics_cmd(args: &[String]) -> i32 {
    const SPEC: CliSpec = CliSpec {
        cmd: "metrics",
        flags: &[],
        extras: &[],
        default_scale: Scale::Small,
    };
    let args = parse_or_usage(&SPEC, args);
    let [path] = &args.positionals[..] else {
        eprintln!("metrics needs exactly one exposition file path");
        usage();
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 1;
        }
    };
    let doc = match diag_trace::json::parse(text.trim()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return 1;
        }
    };
    let exposition = match doc.get("frame").and_then(diag_trace::json::Value::as_str) {
        Some("metrics") => match doc.get("json") {
            Some(inner) => inner,
            None => {
                eprintln!("{path}: metrics frame has no `json` exposition");
                return 1;
            }
        },
        Some(other) => {
            eprintln!("{path}: not a metrics frame (frame: {other})");
            return 1;
        }
        None => &doc,
    };
    match diag_bench::metricsfmt::render(exposition) {
        Ok(rendered) => {
            print!("{rendered}");
            0
        }
        Err(e) => {
            eprintln!("{path}: {e}");
            1
        }
    }
}

/// The `tune` subcommand: sweep a DiAG configuration grid over the named
/// workloads and print per-workload cycles/energy Pareto frontiers.
/// Returns the process exit code.
fn tune_cmd(args: &[String]) -> i32 {
    const SPEC: CliSpec = CliSpec {
        cmd: "tune",
        flags: &[
            Flag::Scale,
            Flag::Threads,
            Flag::Simt,
            Flag::Jobs,
            Flag::Strict,
            Flag::Out,
        ],
        extras: &[Extra {
            name: "--grid",
            takes_value: true,
        }],
        // A 48-point grid times every workload is a lot of simulation;
        // the cheap scale is the sane default for exploration.
        default_scale: Scale::Tiny,
    };
    let args = parse_or_usage(&SPEC, args);
    let grid = match args.value("--grid") {
        Some(text) => match tune::parse_grid(text) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("{e}");
                usage();
            }
        },
        None => tune::default_grid(),
    };
    let specs = resolve_workloads(&args.positionals);
    let params = args.params();
    let session = args.session();
    let report = tune::tune(&session, &specs, &grid, &params, args.jobs);
    let text = report.render();
    print!("{text}");
    if let Some(path) = &args.out {
        if let Err(e) = write_output(path, &text) {
            eprintln!("{e}");
            return 1;
        }
    }
    report_cache(&session);
    let runs = session.counters().runs;
    eprintln!(
        "tune: {} run-stage builds, {} run-stage hits",
        runs.builds, runs.hits
    );
    let failed: usize = report.frontiers.iter().map(|f| f.failed.len()).sum();
    if args.strict && failed > 0 {
        eprintln!("--strict: {failed} grid run(s) failed");
        return 1;
    }
    0
}

/// The `bench` subcommand: host-time the simulator over workloads ×
/// machines and write `BENCH_sim.json`. Returns the process exit code.
fn bench_cmd(args: &[String]) -> i32 {
    const SPEC: CliSpec = CliSpec {
        cmd: "bench",
        flags: &[Flag::Scale, Flag::Out],
        extras: &[
            Extra {
                name: "--repeat",
                takes_value: true,
            },
            Extra {
                name: "--baseline",
                takes_value: true,
            },
            Extra {
                name: "--max-regress",
                takes_value: true,
            },
        ],
        default_scale: Scale::Small,
    };
    let args = parse_or_usage(&SPEC, args);
    let repeat = match args.value("--repeat") {
        Some(v) => match v.parse::<u32>() {
            Ok(n) => n.max(1),
            Err(_) => {
                eprintln!("--repeat needs a positive integer");
                usage();
            }
        },
        None => 3,
    };
    let max_regress = match args.value("--max-regress") {
        Some(v) => match v.parse::<f64>() {
            Ok(pct) => Some(pct),
            Err(_) => {
                eprintln!("--max-regress needs a percentage");
                usage();
            }
        },
        None => None,
    };
    let out_path = args.out.clone().unwrap_or_else(|| "BENCH_sim.json".into());
    let specs = resolve_workloads(&args.positionals);
    let params = args.params();
    let baseline = match args.value("--baseline") {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => match hostbench::BenchBaseline::parse(&text) {
                Ok(b) => Some(b),
                Err(e) => {
                    eprintln!("cannot parse baseline {path}: {e}");
                    return 1;
                }
            },
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                return 1;
            }
        },
        None => None,
    };
    let session = args.session();
    let report = hostbench::run_bench(&session, &specs, &params, repeat, baseline.as_ref());
    let json = hostbench::to_json(&report, baseline.as_ref());
    if let Err(e) = write_output(&out_path, &json) {
        eprintln!("{e}");
        return 1;
    }
    let mut table = diag_power::TextTable::new(
        ["benchmark", "machine", "ns/instr", "sim cycles", "vs seed"]
            .iter()
            .map(|s| s.to_string()),
    );
    for row in &report.rows {
        table.row([
            row.workload.clone(),
            row.machine.clone(),
            format!("{:.1}", row.ns_per_instr),
            row.sim_cycles.to_string(),
            match row.speedup_vs_seed {
                Some(s) => format!("{s:.2}x"),
                None => "-".to_string(),
            },
        ]);
    }
    println!("{}", table.render());
    eprintln!(
        "total: {:.1} ns/instr over {} committed instructions; wrote {out_path}",
        report.total_ns_per_instr(),
        report.total_committed()
    );
    for failure in &report.failures {
        eprintln!("failed: {failure}");
    }
    report_cache(&session);
    if let (Some(pct), Some(b)) = (max_regress, baseline.as_ref()) {
        if let Err(e) = hostbench::check_regression(&report, b, pct) {
            eprintln!("bench regression gate: {e}");
            return 1;
        }
    }
    if report.failures.is_empty() {
        0
    } else {
        1
    }
}

/// Resolves the one workload named on a trace/profile command line,
/// checking SIMT capability.
fn single_workload(args: &CommonArgs, what: &str) -> Result<diag_workloads::WorkloadSpec, i32> {
    let [name] = &args.positionals[..] else {
        eprintln!("{what} needs exactly one workload name");
        usage();
    };
    let Some(spec) = diag_workloads::find(name) else {
        eprintln!("unknown workload `{name}`");
        usage();
    };
    if args.simt && !spec.simt_capable {
        eprintln!("{name} has no SIMT variant");
        return Err(1);
    }
    Ok(spec)
}

/// The `trace` subcommand: run one workload with a tracer attached and
/// export the event stream. Returns the process exit code.
fn trace_cmd(args: &[String]) -> i32 {
    const SPEC: CliSpec = CliSpec {
        cmd: "trace",
        flags: &[
            Flag::Scale,
            Flag::Threads,
            Flag::Simt,
            Flag::Machine,
            Flag::Out,
        ],
        extras: &[
            Extra {
                name: "--format",
                takes_value: true,
            },
            Extra {
                name: "--window",
                takes_value: true,
            },
        ],
        default_scale: Scale::Small,
    };
    let args = parse_or_usage(&SPEC, args);
    let format = args.value("--format").unwrap_or("perfetto").to_string();
    if !matches!(
        format.as_str(),
        "perfetto" | "jsonl" | "heatmap" | "timeline"
    ) {
        eprintln!("unknown format `{format}` (perfetto|jsonl|heatmap|timeline)");
        usage();
    }
    let window = match args.value("--window") {
        Some(v) => match v.parse::<u64>() {
            Ok(n) => Some(n.max(1)),
            Err(_) => {
                eprintln!("--window needs a positive integer");
                usage();
            }
        },
        None => None,
    };
    let spec = match single_workload(&args, "trace") {
        Ok(s) => s,
        Err(code) => return code,
    };
    let kind = args.machine.clone();
    let params = args.params();
    let session = args.session();
    let sink = VecSink::shared();
    let mut machine = build_machine(&kind);
    machine.set_tracer(Tracer::to_shared(sink.clone()));
    let stats = match run_built(&session, &kind, &spec, &params, machine.as_mut()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let events = sink.borrow_mut().take();
    let window = window.unwrap_or_else(|| (stats.cycles / 64).max(1));
    let text = match format.as_str() {
        "perfetto" => perfetto::export(&events),
        "jsonl" => {
            let mut buf = String::new();
            for event in &events {
                event.write_jsonl(&mut buf);
                buf.push('\n');
            }
            buf
        }
        "heatmap" => heatmap::render(&events, window),
        _ => StallTimeline::from_events(&events, window).render(),
    };
    eprintln!(
        "{} on {}: {} events over {} cycles ({} committed)",
        spec.name,
        kind.label(),
        events.len(),
        stats.cycles,
        stats.committed
    );
    report_cache(&session);
    match &args.out {
        Some(path) => {
            if let Err(e) = write_output(path, &text) {
                eprintln!("{e}");
                return 1;
            }
            eprintln!("wrote {format} trace to {path}");
        }
        None => print!("{text}"),
    }
    0
}

/// The `profile` subcommand: run one workload with cycle accounting
/// attached and report where the cycles went; or, with a leading `diff`,
/// compare two saved JSON profiles. Returns the process exit code.
fn profile_cmd(args: &[String]) -> i32 {
    if args.first().map(String::as_str) == Some("diff") {
        return profile_diff_cmd(&args[1..]);
    }
    const SPEC: CliSpec = CliSpec {
        cmd: "profile",
        flags: &[
            Flag::Scale,
            Flag::Threads,
            Flag::Simt,
            Flag::Machine,
            Flag::Out,
        ],
        extras: &[
            Extra {
                name: "--format",
                takes_value: true,
            },
            Extra {
                name: "--top",
                takes_value: true,
            },
        ],
        default_scale: Scale::Small,
    };
    let args = parse_or_usage(&SPEC, args);
    let format = args.value("--format").unwrap_or("text").to_string();
    if !matches!(format.as_str(), "text" | "json" | "folded") {
        eprintln!("unknown format `{format}` (text|json|folded)");
        usage();
    }
    let top = match args.value("--top") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n.max(1),
            Err(_) => {
                eprintln!("--top needs a positive integer");
                usage();
            }
        },
        None => 20,
    };
    let spec = match single_workload(&args, "profile") {
        Ok(s) => s,
        Err(code) => return code,
    };
    let kind = args.machine.clone();
    let params = args.params();
    let session = args.session();
    let built = match session.workload(&spec, &params) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{}: build failed: {e}", spec.name);
            return 1;
        }
    };
    let shared = ProfileCollector::shared();
    let mut machine = build_machine(&kind);
    machine.set_profiler(Profiler::to_shared(&shared));
    let stats = match run_built(&session, &kind, &spec, &params, machine.as_mut()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let meta = ProfileMeta {
        workload: spec.name.to_string(),
        machine: kind.label(),
        threads: params.threads as u64,
        simt: params.simt,
        cycle_model: match kind {
            MachineSpec::InOrder => CycleModel::Additive,
            _ => CycleModel::Wallclock,
        },
        total_cycles: stats.cycles,
        committed: stats.committed,
        stalls: [
            stats.stalls.memory,
            stats.stalls.control,
            stats.stalls.structural,
        ],
        host: diag_bench::hostmeta::host_entries_with_repeat(1),
    };
    let frames = diag_analyze::flame::frame_map(&built.program);
    let collector = shared.borrow();
    let mut profile = Profile::build(&collector, meta, Some(&built.program));
    drop(collector);
    profile.apply_frames(&frames);
    if let Err(e) = profile.reconcile() {
        eprintln!(
            "{} on {}: profile does not reconcile: {e}",
            spec.name,
            kind.label()
        );
        return 1;
    }
    let text = match format.as_str() {
        "text" => render_text(&profile, top),
        "json" => profile.to_json(),
        _ => to_folded(&profile, Some(&frames)),
    };
    eprintln!(
        "{} on {}: {} cycles, {} committed, {} hot PCs",
        spec.name,
        kind.label(),
        stats.cycles,
        stats.committed,
        profile.pcs.len()
    );
    report_cache(&session);
    match &args.out {
        Some(path) => {
            if let Err(e) = write_output(path, &text) {
                eprintln!("{e}");
                return 1;
            }
            eprintln!("wrote {format} profile to {path}");
        }
        None => print!("{text}"),
    }
    0
}

/// The `profile diff` mode: per-PC self-cycle deltas between two saved
/// JSON profiles. Returns the process exit code.
fn profile_diff_cmd(args: &[String]) -> i32 {
    const SPEC: CliSpec = CliSpec {
        cmd: "profile diff",
        flags: &[],
        extras: &[Extra {
            name: "--top",
            takes_value: true,
        }],
        default_scale: Scale::Small,
    };
    let args = parse_or_usage(&SPEC, args);
    let top = match args.value("--top") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n.max(1),
            Err(_) => {
                eprintln!("--top needs a positive integer");
                usage();
            }
        },
        None => 20,
    };
    let [before, after] = &args.positionals[..] else {
        eprintln!("profile diff needs exactly two JSON profile paths");
        usage();
    };
    let load = |path: &str| -> Result<Profile, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Profile::from_json(&text).map_err(|e| format!("cannot parse {path}: {e}"))
    };
    let (a, b) = match (load(before), load(after)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return 1;
        }
    };
    print!("{}", diff_profiles(&a, &b, top));
    0
}

/// The `cache` subcommand: inspect (`stats`) or empty (`clear`) the
/// on-disk artifact cache. Returns the process exit code.
fn cache_cmd(args: &[String]) -> i32 {
    const SPEC: CliSpec = CliSpec {
        cmd: "cache",
        flags: &[],
        extras: &[],
        default_scale: Scale::Small,
    };
    let args = parse_or_usage(&SPEC, args);
    let dir = args
        .cache_dir
        .clone()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(DiskCache::default_dir);
    let cache = match DiskCache::open(&dir, DiskCache::DEFAULT_BUDGET) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot open cache at {}: {e}", dir.display());
            return 1;
        }
    };
    match args.positionals.first().map(String::as_str) {
        Some("stats") => {
            let stats = cache.stats();
            println!(
                "{}: {} blobs, {} bytes (budget {})",
                cache.dir().display(),
                stats.files,
                stats.bytes,
                DiskCache::DEFAULT_BUDGET
            );
            0
        }
        Some("clear") => {
            let removed = cache.clear();
            println!("{}: removed {removed} blobs", cache.dir().display());
            0
        }
        _ => {
            eprintln!("cache needs a mode: stats|clear");
            usage();
        }
    }
}

/// The `run` subcommand (also the default): regenerate paper artifacts.
/// Returns the process exit code.
fn run_cmd(args: &[String]) -> i32 {
    const SPEC: CliSpec = CliSpec {
        cmd: "run",
        flags: &[Flag::Scale, Flag::Jobs, Flag::Strict],
        extras: &[],
        default_scale: Scale::Small,
    };
    let args = parse_or_usage(&SPEC, args);
    if args.positionals.is_empty() {
        usage();
    }
    let list: Vec<&str> = if args.positionals == ["all"] {
        ALL.to_vec()
    } else {
        args.positionals.iter().map(String::as_str).collect()
    };
    let session = args.session();
    let mut any_failed = false;
    for (i, name) in list.iter().enumerate() {
        match run(name, &session, args.scale, args.jobs) {
            Some(out) => {
                if i > 0 {
                    println!();
                }
                any_failed |= out.contains(FAILURE_MARKER);
                println!("{out}");
            }
            None => {
                eprintln!("unknown experiment `{name}`");
                usage();
            }
        }
    }
    report_cache(&session);
    if args.strict && any_failed {
        eprintln!("--strict: at least one run failed (see \"failed runs\" sections above)");
        return 1;
    }
    0
}

fn run(name: &str, session: &Session, scale: Scale, jobs: usize) -> Option<String> {
    let out = match name {
        "table1" => experiments::table1(session, scale, jobs),
        "table2" => experiments::table2(),
        "table3" => experiments::table3(),
        "fig9a" => experiments::fig_single_thread(session, Suite::Rodinia, scale, jobs),
        "fig9b" => experiments::fig_multi_thread(session, Suite::Rodinia, scale, jobs),
        "fig10a" => experiments::fig_single_thread(session, Suite::Spec, scale, jobs),
        "fig10b" => experiments::fig_multi_thread(session, Suite::Spec, scale, jobs),
        "fig11" => experiments::fig11(session, scale, jobs),
        "fig12" => experiments::fig12(session, scale, jobs),
        "stalls" => experiments::stalls(session, scale, jobs),
        "ablation-lane" => experiments::ablation_lane(session, scale, jobs),
        "ablation-reuse" => experiments::ablation_reuse(session, scale, jobs),
        "ablation-simt" => experiments::ablation_simt_interval(session, scale, jobs),
        "ablation-lsu" => experiments::ablation_lsu(session, scale, jobs),
        "ablation-spec" => experiments::ablation_spec(session, scale, jobs),
        _ => return None,
    };
    Some(out)
}

const ALL: [&str; 15] = [
    "table1",
    "table2",
    "table3",
    "fig9a",
    "fig9b",
    "fig10a",
    "fig10b",
    "fig11",
    "fig12",
    "stalls",
    "ablation-lane",
    "ablation-reuse",
    "ablation-simt",
    "ablation-lsu",
    "ablation-spec",
];

/// Marker `sweep::append_failures` puts in a report when runs failed.
const FAILURE_MARKER: &str = "failed runs (";

/// The `serve` subcommand: delegates to the co-built `diag-serve`
/// binary with the arguments passed through verbatim. The server crate
/// depends on this one (it reuses the sweep runner and CLI parser), so
/// the harness cannot link it directly without a dependency cycle —
/// instead it execs the sibling binary cargo placed next to itself.
fn serve_cmd(args: &[String]) -> i32 {
    let exe = match std::env::current_exe() {
        Ok(path) => path,
        Err(e) => {
            eprintln!("serve: cannot locate the harness binary: {e}");
            return 1;
        }
    };
    let name = if cfg!(windows) {
        "diag-serve.exe"
    } else {
        "diag-serve"
    };
    let sibling = exe.with_file_name(name);
    if !sibling.exists() {
        eprintln!(
            "serve: `{}` not found — build it with `cargo build -p diag-serve`",
            sibling.display()
        );
        return 1;
    }
    match std::process::Command::new(&sibling).args(args).status() {
        Ok(status) => status.code().unwrap_or(1),
        Err(e) => {
            eprintln!("serve: cannot run {}: {e}", sibling.display());
            1
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("--help") | Some("-h") | Some("help") => {
            println!("{USAGE}");
            0
        }
        Some("analyze") => analyze_cmd(&args[1..]),
        Some("verify") => verify_cmd(&args[1..]),
        Some("sweep") => sweep_cmd(&args[1..]),
        Some("metrics") => metrics_cmd(&args[1..]),
        Some("tune") => tune_cmd(&args[1..]),
        Some("bench") => bench_cmd(&args[1..]),
        Some("trace") => trace_cmd(&args[1..]),
        Some("profile") => profile_cmd(&args[1..]),
        Some("cache") => cache_cmd(&args[1..]),
        Some("serve") => serve_cmd(&args[1..]),
        Some("run") => run_cmd(&args[1..]),
        Some(_) => run_cmd(&args),
        None => usage(),
    };
    std::process::exit(code)
}
