//! Experiment harness CLI: regenerates the paper's tables and figures.
//!
//! ```text
//! harness <experiment> [--quick] [--jobs N] [--strict]
//! harness all [--quick] [--jobs N] [--strict]
//! ```
//!
//! Experiments: `table1 table2 table3 fig9a fig9b fig10a fig10b fig11
//! fig12 stalls ablation-lane ablation-reuse ablation-simt ablation-lsu ablation-spec`.
//! `--quick` runs tiny inputs (for smoke testing); the default is the
//! benchmarking scale. `--jobs N` shards the simulation runs of each
//! experiment over N worker threads (default: the host's available
//! parallelism); results are byte-identical at any job count. `--strict`
//! exits non-zero if any individual run failed (failures are otherwise
//! reported inline and the remaining rows still render).

use diag_bench::experiments;
use diag_workloads::{Scale, Suite};

fn usage() -> ! {
    eprintln!(
        "usage: harness <experiment|all> [--quick] [--jobs N] [--strict]\n\
         experiments: table1 table2 table3 fig9a fig9b fig10a fig10b fig11 fig12 \
         stalls ablation-lane ablation-reuse ablation-simt ablation-lsu ablation-spec"
    );
    std::process::exit(2)
}

fn run(name: &str, scale: Scale, jobs: usize) -> Option<String> {
    let out = match name {
        "table1" => experiments::table1(scale, jobs),
        "table2" => experiments::table2(),
        "table3" => experiments::table3(),
        "fig9a" => experiments::fig_single_thread(Suite::Rodinia, scale, jobs),
        "fig9b" => experiments::fig_multi_thread(Suite::Rodinia, scale, jobs),
        "fig10a" => experiments::fig_single_thread(Suite::Spec, scale, jobs),
        "fig10b" => experiments::fig_multi_thread(Suite::Spec, scale, jobs),
        "fig11" => experiments::fig11(scale, jobs),
        "fig12" => experiments::fig12(scale, jobs),
        "stalls" => experiments::stalls(scale, jobs),
        "ablation-lane" => experiments::ablation_lane(scale, jobs),
        "ablation-reuse" => experiments::ablation_reuse(scale, jobs),
        "ablation-simt" => experiments::ablation_simt_interval(scale, jobs),
        "ablation-lsu" => experiments::ablation_lsu(scale, jobs),
        "ablation-spec" => experiments::ablation_spec(scale, jobs),
        _ => return None,
    };
    Some(out)
}

const ALL: [&str; 15] = [
    "table1",
    "table2",
    "table3",
    "fig9a",
    "fig9b",
    "fig10a",
    "fig10b",
    "fig11",
    "fig12",
    "stalls",
    "ablation-lane",
    "ablation-reuse",
    "ablation-simt",
    "ablation-lsu",
    "ablation-spec",
];

/// Marker `sweep::append_failures` puts in a report when runs failed.
const FAILURE_MARKER: &str = "failed runs (";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let strict = args.iter().any(|a| a == "--strict");
    let mut jobs = diag_bench::sweep::default_jobs();
    let mut names: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" | "--strict" => {}
            "--jobs" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--jobs needs a positive integer");
                    usage();
                };
                jobs = n.max(1);
            }
            other if other.starts_with("--") => usage(),
            other => names.push(other),
        }
    }
    let scale = if quick { Scale::Tiny } else { Scale::Small };
    if names.is_empty() {
        usage();
    }
    let list: Vec<&str> = if names == ["all"] { ALL.to_vec() } else { names };
    let mut any_failed = false;
    for (i, name) in list.iter().enumerate() {
        match run(name, scale, jobs) {
            Some(out) => {
                if i > 0 {
                    println!();
                }
                any_failed |= out.contains(FAILURE_MARKER);
                println!("{out}");
            }
            None => usage(),
        }
    }
    if strict && any_failed {
        eprintln!("--strict: at least one run failed (see \"failed runs\" sections above)");
        std::process::exit(1);
    }
}
