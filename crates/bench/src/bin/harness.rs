//! Experiment harness CLI: regenerates the paper's tables and figures,
//! analyzes workloads statically, sweeps machines, and captures traces.
//!
//! ```text
//! harness run <experiment|all> [--quick] [--jobs N] [--strict]
//! harness analyze [workload ...|all] [--json] [--threads N] [--simt]
//! harness sweep [workload ...|all] [--quick] [--jobs N] [--strict]
//! harness bench [workload ...|all] [--quick] [--repeat N] [--out FILE]
//!               [--baseline FILE] [--max-regress PCT]
//! harness trace <workload> [--machine M] [--format F] [--window N]
//!               [--out FILE] [--threads N] [--simt] [--quick]
//! harness profile <workload> [--machine M] [--format text|json|folded]
//!               [--top N] [--out FILE] [--threads N] [--simt] [--quick]
//! harness profile diff <before.json> <after.json> [--top N]
//! harness --help
//! ```
//!
//! The leading `run` may be omitted (`harness table1` works), preserving
//! the historical invocation. Unknown flags exit non-zero with the usage
//! text instead of being silently ignored.
//!
//! Experiments: `table1 table2 table3 fig9a fig9b fig10a fig10b fig11
//! fig12 stalls ablation-lane ablation-reuse ablation-simt ablation-lsu
//! ablation-spec`. `--quick` runs tiny inputs (for smoke testing); the
//! default is the benchmarking scale. `--jobs N` shards the simulation
//! runs of each experiment over N worker threads (default: the host's
//! available parallelism); results are byte-identical at any job count.
//! `--strict` exits non-zero if any individual run failed (failures are
//! otherwise reported inline and the remaining rows still render).
//!
//! `analyze` runs the static dataflow analyzer ([`diag_analyze`]) over the
//! named workloads (default: all) without simulating a cycle, printing one
//! text report per kernel — or one JSON object per line with `--json` — and
//! exits non-zero if any kernel has a warning- or error-severity finding.
//!
//! `sweep` runs the named workloads (default: all) on every machine model
//! — DiAG f4c32, the 12-core out-of-order baseline, and the in-order
//! reference — in parallel, and prints one cycles/IPC table.
//!
//! `bench` times the *simulator itself*: host nanoseconds per committed
//! instruction for every named workload (default: all) on every machine
//! model, serially, best of `--repeat N` runs (default 3). The report is
//! written as JSON to `--out FILE` (default `BENCH_sim.json`). With
//! `--baseline FILE` each row gains a `speedup_vs_seed` field against the
//! recorded numbers, and `--max-regress PCT` exits non-zero if the
//! aggregate ns/instr regressed by more than PCT percent.
//!
//! `trace` runs one workload with the [`diag_trace`] subsystem attached
//! and exports the event stream: `--format perfetto` (default) writes
//! Chrome trace-event JSON loadable at <https://ui.perfetto.dev>,
//! `jsonl` writes the canonical one-event-per-line stream, `heatmap` and
//! `timeline` render text views at `--window N` cycles per bucket
//! (default: the run length over 64). `--out FILE` redirects the export
//! from stdout into a file.
//!
//! `profile` runs one workload with the [`diag_profile`] cycle-accounting
//! subsystem attached and reports where the cycles went: `--format text`
//! (default) prints the top-down bucket table and the `--top N` hottest
//! PCs with annotated disassembly, `json` writes the full machine-readable
//! profile (host metadata in the header, exact reconciliation enforced
//! before writing), and `folded` writes collapsed stacks — one
//! `loop;block;instruction count` line per PC — loadable by inferno /
//! speedscope / `flamegraph.pl`. `profile diff <before> <after>` compares
//! two saved JSON profiles and prints per-PC self-cycle deltas.
//!
//! All `--out` paths create missing parent directories.

use diag_bench::runner::MachineKind;
use diag_bench::sweep::Sweep;
use diag_bench::{experiments, hostbench, sweep};
use diag_profile::{
    diff_profiles, render_text, to_folded, CycleModel, Profile, ProfileCollector, ProfileMeta,
    Profiler,
};
use diag_trace::timeline::StallTimeline;
use diag_trace::{heatmap, perfetto, Tracer, VecSink};
use diag_workloads::{Params, Scale, Suite};

const USAGE: &str = "usage: harness <subcommand> [options]

subcommands:
  run <experiment|all>   regenerate a paper table/figure (the leading
                         `run` may be omitted: `harness table1` works)
  analyze [workload ...] static dataflow analysis, no simulation
  sweep [workload ...]   run workloads on every machine; cycles/IPC table
  bench [workload ...]   time the simulator itself; write BENCH_sim.json
  trace <workload>       run one workload with tracing and export events
  profile <workload>     run one workload with cycle accounting attached
  profile diff <a> <b>   compare two saved JSON profiles
  --help                 this message

run options:      [--quick] [--jobs N] [--strict]
analyze options:  [--json] [--threads N] [--simt]
sweep options:    [--quick] [--jobs N] [--strict]
bench options:    [--quick] [--repeat N] [--out FILE] [--baseline FILE]
                  [--max-regress PCT]
trace options:    [--machine diag|ooo|inorder] [--format perfetto|jsonl|heatmap|timeline]
                  [--window N] [--out FILE] [--threads N] [--simt] [--quick]
profile options:  [--machine diag|ooo|inorder] [--format text|json|folded]
                  [--top N] [--out FILE] [--threads N] [--simt] [--quick]
profile diff options: [--top N]

experiments: table1 table2 table3 fig9a fig9b fig10a fig10b fig11 fig12
             stalls ablation-lane ablation-reuse ablation-simt
             ablation-lsu ablation-spec";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2)
}

/// Writes `text` to `path`, creating any missing parent directories —
/// `--out results/new/run.json` should not fail on a fresh checkout.
fn write_output(path: &str, text: &str) -> Result<(), String> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))
}

/// The `analyze` subcommand: static analysis over bundled workloads.
/// Returns the process exit code.
fn analyze_cmd(args: &[String]) -> i32 {
    let mut json = false;
    let mut threads = 1usize;
    let mut simt = false;
    let mut names: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--simt" => simt = true,
            "--threads" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--threads needs a positive integer");
                    usage();
                };
                threads = n.max(1);
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
            other => names.push(other),
        }
    }
    let specs = resolve_workloads(&names);

    let opts = diag_analyze::AnalyzeOptions {
        config: diag_core::DiagConfig::f4c32(),
        threads,
    };
    let params = diag_workloads::Params::tiny()
        .with_threads(threads)
        .with_simt(simt);
    let mut worst: Option<diag_analyze::Severity> = None;
    for spec in &specs {
        if simt && !spec.simt_capable {
            continue;
        }
        let built = match spec.build(&params) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{}: build failed: {e}", spec.name);
                return 1;
            }
        };
        let analysis = diag_analyze::analyze(&built.program, &opts);
        if json {
            println!("{}", diag_analyze::json_report(spec.name, &analysis));
        } else {
            print!(
                "{}",
                diag_analyze::text_report(spec.name, &built.program, &analysis)
            );
        }
        worst = worst.max(analysis.max_severity());
    }
    if worst >= Some(diag_analyze::Severity::Warning) {
        eprintln!("analyze: findings at warning severity or above (see reports)");
        1
    } else {
        0
    }
}

/// Looks up workload names (empty or `all` → every bundled workload),
/// exiting with usage on an unknown name.
fn resolve_workloads(names: &[&str]) -> Vec<diag_workloads::WorkloadSpec> {
    if names.is_empty() || names == ["all"] {
        return diag_workloads::all();
    }
    names
        .iter()
        .map(|n| {
            diag_workloads::find(n).unwrap_or_else(|| {
                eprintln!("unknown workload `{n}`");
                usage();
            })
        })
        .collect()
}

/// The `sweep` subcommand: every named workload on every machine model,
/// one cycles/IPC table. Returns the process exit code.
fn sweep_cmd(args: &[String]) -> i32 {
    let mut quick = false;
    let mut strict = false;
    let mut jobs = sweep::default_jobs();
    let mut names: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--strict" => strict = true,
            "--jobs" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--jobs needs a positive integer");
                    usage();
                };
                jobs = n.max(1);
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
            other => names.push(other),
        }
    }
    let specs = resolve_workloads(&names);
    let params = if quick {
        Params::tiny()
    } else {
        Params::small()
    };
    let machines = [
        MachineKind::Diag(diag_core::DiagConfig::f4c32()),
        MachineKind::Ooo(12),
        MachineKind::InOrder,
    ];
    let mut queue = Sweep::new();
    let mut ids = Vec::new();
    for spec in &specs {
        let row: Vec<_> = machines
            .iter()
            .map(|m| queue.add(m.clone(), *spec, params))
            .collect();
        ids.push((spec.name, row));
    }
    let results = queue.execute(jobs);
    let mut table = diag_power::TextTable::new(
        std::iter::once("benchmark".to_string()).chain(machines.iter().map(|m| m.label())),
    );
    for (name, row) in &ids {
        table.row(
            std::iter::once(name.to_string()).chain(row.iter().map(
                |id| match results.stats(*id) {
                    Some(s) => format!("{} cy (IPC {:.2})", s.cycles, s.ipc()),
                    None => "failed".to_string(),
                },
            )),
        );
    }
    let mut out = table.render();
    sweep::append_failures(&mut out, &results);
    println!("{out}");
    if strict && !results.failures().is_empty() {
        eprintln!("--strict: at least one run failed");
        return 1;
    }
    0
}

/// The `bench` subcommand: host-time the simulator over workloads ×
/// machines and write `BENCH_sim.json`. Returns the process exit code.
fn bench_cmd(args: &[String]) -> i32 {
    let mut quick = false;
    let mut repeat = 3u32;
    let mut out_path = "BENCH_sim.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut max_regress: Option<f64> = None;
    let mut names: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--repeat" => {
                let Some(n) = it.next().and_then(|v| v.parse::<u32>().ok()) else {
                    eprintln!("--repeat needs a positive integer");
                    usage();
                };
                repeat = n.max(1);
            }
            "--out" => match it.next() {
                Some(path) => out_path = path.clone(),
                None => {
                    eprintln!("--out needs a file path");
                    usage();
                }
            },
            "--baseline" => match it.next() {
                Some(path) => baseline_path = Some(path.clone()),
                None => {
                    eprintln!("--baseline needs a file path");
                    usage();
                }
            },
            "--max-regress" => {
                let Some(pct) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--max-regress needs a percentage");
                    usage();
                };
                max_regress = Some(pct);
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
            other => names.push(other),
        }
    }
    let specs = resolve_workloads(&names);
    let params = if quick {
        Params::tiny()
    } else {
        Params::small()
    };
    let baseline = match &baseline_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => match hostbench::BenchBaseline::parse(&text) {
                Ok(b) => Some(b),
                Err(e) => {
                    eprintln!("cannot parse baseline {path}: {e}");
                    return 1;
                }
            },
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                return 1;
            }
        },
        None => None,
    };
    let report = hostbench::run_bench(&specs, &params, repeat, baseline.as_ref());
    let json = hostbench::to_json(&report, baseline.as_ref());
    if let Err(e) = write_output(&out_path, &json) {
        eprintln!("{e}");
        return 1;
    }
    let mut table = diag_power::TextTable::new(
        ["benchmark", "machine", "ns/instr", "sim cycles", "vs seed"]
            .iter()
            .map(|s| s.to_string()),
    );
    for row in &report.rows {
        table.row([
            row.workload.clone(),
            row.machine.clone(),
            format!("{:.1}", row.ns_per_instr),
            row.sim_cycles.to_string(),
            match row.speedup_vs_seed {
                Some(s) => format!("{s:.2}x"),
                None => "-".to_string(),
            },
        ]);
    }
    println!("{}", table.render());
    eprintln!(
        "total: {:.1} ns/instr over {} committed instructions; wrote {out_path}",
        report.total_ns_per_instr(),
        report.total_committed()
    );
    for failure in &report.failures {
        eprintln!("failed: {failure}");
    }
    if let (Some(pct), Some(b)) = (max_regress, baseline.as_ref()) {
        if let Err(e) = hostbench::check_regression(&report, b, pct) {
            eprintln!("bench regression gate: {e}");
            return 1;
        }
    }
    if report.failures.is_empty() {
        0
    } else {
        1
    }
}

/// The `trace` subcommand: run one workload with a tracer attached and
/// export the event stream. Returns the process exit code.
fn trace_cmd(args: &[String]) -> i32 {
    let mut machine_name = "diag";
    let mut format = "perfetto";
    let mut window: Option<u64> = None;
    let mut out: Option<String> = None;
    let mut threads = 1usize;
    let mut simt = false;
    let mut quick = false;
    let mut names: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--simt" => simt = true,
            "--quick" => quick = true,
            "--machine" => match it.next() {
                Some(m) => machine_name = m,
                None => {
                    eprintln!("--machine needs a name (diag|ooo|inorder)");
                    usage();
                }
            },
            "--format" => match it.next() {
                Some(f) => format = f,
                None => {
                    eprintln!("--format needs a name (perfetto|jsonl|heatmap|timeline)");
                    usage();
                }
            },
            "--window" => {
                let Some(n) = it.next().and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("--window needs a positive integer");
                    usage();
                };
                window = Some(n.max(1));
            }
            "--out" => match it.next() {
                Some(path) => out = Some(path.clone()),
                None => {
                    eprintln!("--out needs a file path");
                    usage();
                }
            },
            "--threads" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--threads needs a positive integer");
                    usage();
                };
                threads = n.max(1);
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
            other => names.push(other),
        }
    }
    let [name] = names[..] else {
        eprintln!("trace needs exactly one workload name");
        usage();
    };
    let Some(spec) = diag_workloads::find(name) else {
        eprintln!("unknown workload `{name}`");
        usage();
    };
    if simt && !spec.simt_capable {
        eprintln!("{name} has no SIMT variant");
        return 1;
    }
    if !matches!(format, "perfetto" | "jsonl" | "heatmap" | "timeline") {
        eprintln!("unknown format `{format}` (perfetto|jsonl|heatmap|timeline)");
        usage();
    }
    let kind = match machine_name {
        "diag" => MachineKind::Diag(diag_core::DiagConfig::f4c32()),
        "ooo" => MachineKind::Ooo(12),
        "inorder" => MachineKind::InOrder,
        other => {
            eprintln!("unknown machine `{other}` (diag|ooo|inorder)");
            usage();
        }
    };
    let params = if quick {
        Params::tiny()
    } else {
        Params::small()
    }
    .with_threads(threads)
    .with_simt(simt);
    let built = match spec.build(&params) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{name}: build failed: {e}");
            return 1;
        }
    };
    let sink = VecSink::shared();
    let mut machine = kind.build();
    machine.set_tracer(Tracer::to_shared(sink.clone()));
    let stats = match machine.run(&built.program, params.threads) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{name} on {}: {e}", kind.label());
            return 1;
        }
    };
    if let Err(e) = (built.verify)(machine.as_ref()) {
        eprintln!("{name} on {}: verification failed: {e}", kind.label());
        return 1;
    }
    let events = sink.borrow_mut().take();
    let window = window.unwrap_or_else(|| (stats.cycles / 64).max(1));
    let text = match format {
        "perfetto" => perfetto::export(&events),
        "jsonl" => {
            let mut buf = String::new();
            for event in &events {
                event.write_jsonl(&mut buf);
                buf.push('\n');
            }
            buf
        }
        "heatmap" => heatmap::render(&events, window),
        _ => StallTimeline::from_events(&events, window).render(),
    };
    eprintln!(
        "{name} on {}: {} events over {} cycles ({} committed)",
        kind.label(),
        events.len(),
        stats.cycles,
        stats.committed
    );
    match out {
        Some(path) => {
            if let Err(e) = write_output(&path, &text) {
                eprintln!("{e}");
                return 1;
            }
            eprintln!("wrote {format} trace to {path}");
        }
        None => print!("{text}"),
    }
    0
}

/// The `profile` subcommand: run one workload with cycle accounting
/// attached and report where the cycles went; or, with a leading `diff`,
/// compare two saved JSON profiles. Returns the process exit code.
fn profile_cmd(args: &[String]) -> i32 {
    if args.first().map(String::as_str) == Some("diff") {
        return profile_diff_cmd(&args[1..]);
    }
    let mut machine_name = "diag";
    let mut format = "text";
    let mut top = 20usize;
    let mut out: Option<String> = None;
    let mut threads = 1usize;
    let mut simt = false;
    let mut quick = false;
    let mut names: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--simt" => simt = true,
            "--quick" => quick = true,
            "--machine" => match it.next() {
                Some(m) => machine_name = m,
                None => {
                    eprintln!("--machine needs a name (diag|ooo|inorder)");
                    usage();
                }
            },
            "--format" => match it.next() {
                Some(f) => format = f,
                None => {
                    eprintln!("--format needs a name (text|json|folded)");
                    usage();
                }
            },
            "--top" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--top needs a positive integer");
                    usage();
                };
                top = n.max(1);
            }
            "--out" => match it.next() {
                Some(path) => out = Some(path.clone()),
                None => {
                    eprintln!("--out needs a file path");
                    usage();
                }
            },
            "--threads" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--threads needs a positive integer");
                    usage();
                };
                threads = n.max(1);
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
            other => names.push(other),
        }
    }
    let [name] = names[..] else {
        eprintln!("profile needs exactly one workload name");
        usage();
    };
    let Some(spec) = diag_workloads::find(name) else {
        eprintln!("unknown workload `{name}`");
        usage();
    };
    if simt && !spec.simt_capable {
        eprintln!("{name} has no SIMT variant");
        return 1;
    }
    if !matches!(format, "text" | "json" | "folded") {
        eprintln!("unknown format `{format}` (text|json|folded)");
        usage();
    }
    let kind = match machine_name {
        "diag" => MachineKind::Diag(diag_core::DiagConfig::f4c32()),
        "ooo" => MachineKind::Ooo(12),
        "inorder" => MachineKind::InOrder,
        other => {
            eprintln!("unknown machine `{other}` (diag|ooo|inorder)");
            usage();
        }
    };
    let params = if quick {
        Params::tiny()
    } else {
        Params::small()
    }
    .with_threads(threads)
    .with_simt(simt);
    let built = match spec.build(&params) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{name}: build failed: {e}");
            return 1;
        }
    };
    let shared = ProfileCollector::shared();
    let mut machine = kind.build();
    machine.set_profiler(Profiler::to_shared(&shared));
    let stats = match machine.run(&built.program, params.threads) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{name} on {}: {e}", kind.label());
            return 1;
        }
    };
    if let Err(e) = (built.verify)(machine.as_ref()) {
        eprintln!("{name} on {}: verification failed: {e}", kind.label());
        return 1;
    }
    let meta = ProfileMeta {
        workload: name.to_string(),
        machine: kind.label(),
        threads: params.threads as u64,
        simt: params.simt,
        cycle_model: match kind {
            MachineKind::InOrder => CycleModel::Additive,
            _ => CycleModel::Wallclock,
        },
        total_cycles: stats.cycles,
        committed: stats.committed,
        stalls: [
            stats.stalls.memory,
            stats.stalls.control,
            stats.stalls.structural,
        ],
        host: diag_bench::hostmeta::host_entries_with_repeat(1),
    };
    let frames = diag_analyze::flame::frame_map(&built.program);
    let collector = shared.borrow();
    let mut profile = Profile::build(&collector, meta, Some(&built.program));
    drop(collector);
    profile.apply_frames(&frames);
    if let Err(e) = profile.reconcile() {
        eprintln!(
            "{name} on {}: profile does not reconcile: {e}",
            kind.label()
        );
        return 1;
    }
    let text = match format {
        "text" => render_text(&profile, top),
        "json" => profile.to_json(),
        _ => to_folded(&profile, Some(&frames)),
    };
    eprintln!(
        "{name} on {}: {} cycles, {} committed, {} hot PCs",
        kind.label(),
        stats.cycles,
        stats.committed,
        profile.pcs.len()
    );
    match out {
        Some(path) => {
            if let Err(e) = write_output(&path, &text) {
                eprintln!("{e}");
                return 1;
            }
            eprintln!("wrote {format} profile to {path}");
        }
        None => print!("{text}"),
    }
    0
}

/// The `profile diff` mode: per-PC self-cycle deltas between two saved
/// JSON profiles. Returns the process exit code.
fn profile_diff_cmd(args: &[String]) -> i32 {
    let mut top = 20usize;
    let mut paths: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--top" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--top needs a positive integer");
                    usage();
                };
                top = n.max(1);
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
            other => paths.push(other),
        }
    }
    let [before, after] = paths[..] else {
        eprintln!("profile diff needs exactly two JSON profile paths");
        usage();
    };
    let load = |path: &str| -> Result<Profile, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Profile::from_json(&text).map_err(|e| format!("cannot parse {path}: {e}"))
    };
    let (a, b) = match (load(before), load(after)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return 1;
        }
    };
    print!("{}", diff_profiles(&a, &b, top));
    0
}

/// The `run` subcommand (also the default): regenerate paper artifacts.
/// Returns the process exit code.
fn run_cmd(args: &[String]) -> i32 {
    let mut quick = false;
    let mut strict = false;
    let mut jobs = sweep::default_jobs();
    let mut names: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--strict" => strict = true,
            "--jobs" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--jobs needs a positive integer");
                    usage();
                };
                jobs = n.max(1);
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
            other => names.push(other),
        }
    }
    let scale = if quick { Scale::Tiny } else { Scale::Small };
    if names.is_empty() {
        usage();
    }
    let list: Vec<&str> = if names == ["all"] {
        ALL.to_vec()
    } else {
        names
    };
    let mut any_failed = false;
    for (i, name) in list.iter().enumerate() {
        match run(name, scale, jobs) {
            Some(out) => {
                if i > 0 {
                    println!();
                }
                any_failed |= out.contains(FAILURE_MARKER);
                println!("{out}");
            }
            None => {
                eprintln!("unknown experiment `{name}`");
                usage();
            }
        }
    }
    if strict && any_failed {
        eprintln!("--strict: at least one run failed (see \"failed runs\" sections above)");
        return 1;
    }
    0
}

fn run(name: &str, scale: Scale, jobs: usize) -> Option<String> {
    let out = match name {
        "table1" => experiments::table1(scale, jobs),
        "table2" => experiments::table2(),
        "table3" => experiments::table3(),
        "fig9a" => experiments::fig_single_thread(Suite::Rodinia, scale, jobs),
        "fig9b" => experiments::fig_multi_thread(Suite::Rodinia, scale, jobs),
        "fig10a" => experiments::fig_single_thread(Suite::Spec, scale, jobs),
        "fig10b" => experiments::fig_multi_thread(Suite::Spec, scale, jobs),
        "fig11" => experiments::fig11(scale, jobs),
        "fig12" => experiments::fig12(scale, jobs),
        "stalls" => experiments::stalls(scale, jobs),
        "ablation-lane" => experiments::ablation_lane(scale, jobs),
        "ablation-reuse" => experiments::ablation_reuse(scale, jobs),
        "ablation-simt" => experiments::ablation_simt_interval(scale, jobs),
        "ablation-lsu" => experiments::ablation_lsu(scale, jobs),
        "ablation-spec" => experiments::ablation_spec(scale, jobs),
        _ => return None,
    };
    Some(out)
}

const ALL: [&str; 15] = [
    "table1",
    "table2",
    "table3",
    "fig9a",
    "fig9b",
    "fig10a",
    "fig10b",
    "fig11",
    "fig12",
    "stalls",
    "ablation-lane",
    "ablation-reuse",
    "ablation-simt",
    "ablation-lsu",
    "ablation-spec",
];

/// Marker `sweep::append_failures` puts in a report when runs failed.
const FAILURE_MARKER: &str = "failed runs (";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("--help") | Some("-h") | Some("help") => {
            println!("{USAGE}");
            0
        }
        Some("analyze") => analyze_cmd(&args[1..]),
        Some("sweep") => sweep_cmd(&args[1..]),
        Some("bench") => bench_cmd(&args[1..]),
        Some("trace") => trace_cmd(&args[1..]),
        Some("profile") => profile_cmd(&args[1..]),
        Some("run") => run_cmd(&args[1..]),
        Some(_) => run_cmd(&args),
        None => usage(),
    };
    std::process::exit(code)
}
