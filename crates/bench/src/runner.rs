//! Shared experiment plumbing: machine construction, workload runs, and
//! relative-performance math.

use diag_baseline::{InOrder, O3Config, OooCpu};
use diag_core::{Diag, DiagConfig};
use diag_sim::{Machine, RunStats};
use diag_workloads::{Params, Scale, WorkloadSpec};

/// Which machine to construct for a run.
#[derive(Debug, Clone)]
pub enum MachineKind {
    /// A DiAG processor with the given configuration.
    Diag(DiagConfig),
    /// The out-of-order baseline with up to this many cores.
    Ooo(usize),
    /// The in-order reference.
    InOrder,
}

impl MachineKind {
    /// Builds the machine.
    pub fn build(&self) -> Box<dyn Machine> {
        match self {
            MachineKind::Diag(cfg) => Box::new(Diag::new(cfg.clone())),
            MachineKind::Ooo(cores) => {
                Box::new(OooCpu::new(O3Config::aggressive_8wide(), *cores))
            }
            MachineKind::InOrder => Box::new(InOrder::new()),
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            MachineKind::Diag(cfg) => format!("DiAG {} ({} PEs)", cfg.name, cfg.total_pes()),
            MachineKind::Ooo(cores) => format!("OoO 8-wide x{cores}"),
            MachineKind::InOrder => "in-order".to_string(),
        }
    }
}

/// One workload run: builds, executes, verifies, returns statistics.
///
/// # Panics
///
/// Panics on build, run, or verification failure — experiment results
/// must never be silently wrong.
pub fn run_verified(kind: &MachineKind, spec: &WorkloadSpec, params: &Params) -> RunStats {
    let built = spec
        .build(params)
        .unwrap_or_else(|e| panic!("{}: build failed: {e}", spec.name));
    let mut machine = kind.build();
    let stats = machine
        .run(&built.program, params.threads)
        .unwrap_or_else(|e| panic!("{} on {}: {e}", spec.name, kind.label()));
    (built.verify)(machine.as_ref())
        .unwrap_or_else(|e| panic!("{} on {}: verification failed: {e}", spec.name, kind.label()));
    stats
}

/// Relative performance of `kind` vs `baseline` on `spec` (ratio of
/// baseline cycles to machine cycles at equal frequency — >1 means
/// faster than baseline, the paper's reporting convention).
pub fn relative_performance(
    kind: &MachineKind,
    baseline: &MachineKind,
    spec: &WorkloadSpec,
    params: &Params,
) -> f64 {
    let base = run_verified(baseline, spec, params);
    let ours = run_verified(kind, spec, params);
    base.cycles as f64 / ours.cycles as f64
}

/// Default benchmarking scale for harness runs.
pub fn harness_scale(quick: bool) -> Scale {
    if quick {
        Scale::Tiny
    } else {
        Scale::Small
    }
}

/// The paper's multi-threaded configuration: 12 threads (one per baseline
/// core, §7.1).
pub const MT_THREADS: usize = 12;

#[cfg(test)]
mod tests {
    use super::*;
    use diag_workloads::find;

    #[test]
    fn run_verified_produces_stats() {
        let spec = find("x264").unwrap();
        let stats = run_verified(&MachineKind::InOrder, &spec, &Params::tiny());
        assert!(stats.cycles > 0);
        assert!(stats.committed > 0);
    }

    #[test]
    fn relative_performance_is_positive() {
        let spec = find("deepsjeng").unwrap();
        let rel = relative_performance(
            &MachineKind::Diag(diag_core::DiagConfig::f4c2()),
            &MachineKind::Ooo(1),
            &spec,
            &Params::tiny(),
        );
        assert!(rel > 0.05 && rel < 20.0, "rel = {rel}");
    }

    #[test]
    fn labels_are_informative() {
        assert!(MachineKind::Diag(DiagConfig::f4c32()).label().contains("512"));
        assert!(MachineKind::Ooo(12).label().contains("x12"));
    }
}
