//! Shared experiment plumbing: machine construction, workload runs, and
//! relative-performance math.

use std::fmt;

use diag_baseline::{InOrder, O3Config, OooCpu};
use diag_core::Diag;
use diag_pipeline::{run_key, Session};
use diag_sim::{Machine, RunStats, SimError};
use diag_workloads::{Params, Scale, WorkloadSpec};

pub use diag_core::MachineSpec;

/// Constructs the machine a [`MachineSpec`] names. Specs are plain data
/// (defined in `diag-core`, hashed by the pipeline, echoed over the
/// wire); this is the one place they become simulators — the baselines
/// live in `diag-baseline`, which the spec type itself cannot see.
pub fn build_machine(spec: &MachineSpec) -> Box<dyn Machine> {
    match spec {
        MachineSpec::Diag(cfg) => Box::new(Diag::new(cfg.clone())),
        MachineSpec::Ooo(cores) => Box::new(OooCpu::new(O3Config::aggressive_8wide(), *cores)),
        MachineSpec::InOrder => Box::new(InOrder::new()),
    }
}

/// Why one workload run failed. Carries enough context to be printed in
/// an experiment report without the surrounding run table.
#[derive(Debug, Clone)]
pub enum RunError {
    /// The workload's program failed to assemble.
    Build {
        /// Workload name.
        workload: String,
        /// Assembler error text.
        message: String,
    },
    /// The simulation itself errored (cycle limit, illegal instruction…).
    Sim {
        /// Workload name.
        workload: String,
        /// Machine label.
        machine: String,
        /// The underlying simulator error.
        error: SimError,
    },
    /// The run completed but produced wrong architectural results.
    Verify {
        /// Workload name.
        workload: String,
        /// Machine label.
        machine: String,
        /// Verifier error text.
        message: String,
    },
    /// The run panicked (a simulator bug; caught so a sweep can finish).
    Panicked {
        /// Workload name.
        workload: String,
        /// Machine label.
        machine: String,
        /// Panic payload, if it was a string.
        message: String,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Build { workload, message } => {
                write!(f, "{workload}: build failed: {message}")
            }
            RunError::Sim {
                workload,
                machine,
                error,
            } => {
                write!(f, "{workload} on {machine}: {error}")
            }
            RunError::Verify {
                workload,
                machine,
                message,
            } => {
                write!(f, "{workload} on {machine}: verification failed: {message}")
            }
            RunError::Panicked {
                workload,
                machine,
                message,
            } => {
                write!(f, "{workload} on {machine}: panicked: {message}")
            }
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Sim { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// Runs `spec` on an already-constructed `machine`, preparing the
/// program (and, for the baselines, the shared [`StationTable`]
/// lowering) through `session` — callers that attach a tracer or
/// profiler before running use this directly.
///
/// DiAG populates its per-cluster station arenas at line-load time
/// (§4.2), so it mounts the bare program; the baselines adopt the
/// session's whole-text table instead of lowering their own.
///
/// [`StationTable`]: diag_isa::StationTable
///
/// # Errors
///
/// Returns a [`RunError`] describing the failing stage — build, simulate,
/// or verify.
pub fn run_built(
    session: &Session,
    machine_spec: &MachineSpec,
    spec: &WorkloadSpec,
    params: &Params,
    machine: &mut dyn Machine,
) -> Result<RunStats, RunError> {
    let build_err = |message: String| RunError::Build {
        workload: spec.name.to_string(),
        message,
    };
    let built = session.workload(spec, params).map_err(build_err)?;
    let stats = match machine_spec {
        MachineSpec::Diag(_) => machine.run(&built.program, params.threads),
        MachineSpec::Ooo(_) | MachineSpec::InOrder => {
            let stations = session.stations(spec, params, None).map_err(build_err)?;
            machine.run_prepared(&built.program, &stations, params.threads)
        }
    }
    .map_err(|e| RunError::Sim {
        workload: spec.name.to_string(),
        machine: machine_spec.label(),
        error: e,
    })?;
    (built.verify)(&*machine).map_err(|e| RunError::Verify {
        workload: spec.name.to_string(),
        machine: machine_spec.label(),
        message: e,
    })?;
    Ok(stats)
}

/// One workload run through a shared artifact `session`: prepares,
/// executes, verifies, returns statistics. Repeated runs of the same
/// `(spec, params)` reuse one assembly and one station-table lowering —
/// and a repeat of the same `(workload, params, machine_spec)` triple is
/// served from the session's run-stage memo without constructing a
/// machine or stepping it at all (memory first, then the disk blob
/// layer). Only successful, verified runs are memoized; failures take
/// the full path every time so their typed [`RunError`] is preserved.
///
/// Callers that attach instrumentation (tracer, profiler, commit log)
/// use [`run_built`] directly with their own machine, which never
/// consults the memo — an instrumented run must actually execute.
///
/// # Errors
///
/// Returns a [`RunError`] describing the failing stage — build, simulate,
/// or verify — so sweeps can aggregate failures instead of aborting.
pub fn run_verified_with(
    session: &Session,
    machine_spec: &MachineSpec,
    spec: &WorkloadSpec,
    params: &Params,
) -> Result<RunStats, RunError> {
    let key = run_key(spec.name, params, machine_spec);
    if let Some(stats) = session.cached_run(key) {
        return Ok(stats);
    }
    let mut machine = build_machine(machine_spec);
    let stats = run_built(session, machine_spec, spec, params, machine.as_mut())?;
    session.record_run(key, stats);
    Ok(stats)
}

/// [`run_verified_with`] over a throwaway in-memory session, for callers
/// that run one thing once.
///
/// # Errors
///
/// Returns a [`RunError`] describing the failing stage — build, simulate,
/// or verify — so sweeps can aggregate failures instead of aborting.
pub fn run_verified(
    machine_spec: &MachineSpec,
    spec: &WorkloadSpec,
    params: &Params,
) -> Result<RunStats, RunError> {
    run_verified_with(&Session::in_memory(), machine_spec, spec, params)
}

/// [`run_verified`], but aborting on failure — for callers where a wrong
/// experiment result must never be silently dropped (`harness --strict`).
///
/// # Panics
///
/// Panics on build, run, or verification failure.
pub fn run_verified_strict(
    machine_spec: &MachineSpec,
    spec: &WorkloadSpec,
    params: &Params,
) -> RunStats {
    run_verified(machine_spec, spec, params).unwrap_or_else(|e| panic!("{e}"))
}

/// Relative performance of `machine_spec` vs `baseline` on `spec`
/// (ratio of baseline cycles to machine cycles at equal frequency — >1
/// means faster than baseline, the paper's reporting convention).
///
/// # Errors
///
/// Propagates the first failing run's [`RunError`].
pub fn relative_performance(
    machine_spec: &MachineSpec,
    baseline: &MachineSpec,
    spec: &WorkloadSpec,
    params: &Params,
) -> Result<f64, RunError> {
    let base = run_verified(baseline, spec, params)?;
    let ours = run_verified(machine_spec, spec, params)?;
    Ok(base.cycles as f64 / ours.cycles as f64)
}

/// Default benchmarking scale for harness runs.
pub fn harness_scale(quick: bool) -> Scale {
    if quick {
        Scale::Tiny
    } else {
        Scale::Small
    }
}

/// The paper's multi-threaded configuration: 12 threads (one per baseline
/// core, §7.1).
pub const MT_THREADS: usize = 12;

#[cfg(test)]
mod tests {
    use super::*;
    use diag_core::DiagConfig;
    use diag_workloads::find;

    #[test]
    fn run_verified_produces_stats() {
        let spec = find("x264").unwrap();
        let stats = run_verified(&MachineSpec::InOrder, &spec, &Params::tiny()).unwrap();
        assert!(stats.cycles > 0);
        assert!(stats.committed > 0);
    }

    #[test]
    fn relative_performance_is_positive() {
        let spec = find("deepsjeng").unwrap();
        let rel = relative_performance(
            &MachineSpec::Diag(DiagConfig::f4c2()),
            &MachineSpec::Ooo(1),
            &spec,
            &Params::tiny(),
        )
        .unwrap();
        assert!(rel > 0.05 && rel < 20.0, "rel = {rel}");
    }

    #[test]
    fn labels_are_informative() {
        assert!(MachineSpec::Diag(DiagConfig::f4c32())
            .label()
            .contains("512"));
        assert!(MachineSpec::Ooo(12).label().contains("x12"));
    }

    #[test]
    fn warm_resubmission_executes_zero_machine_steps() {
        // The acceptance test for run memoization: a second run of the
        // same (workload, params, machine_spec) through the same session
        // must not step a machine at all — `diag_sim::machine_steps` is
        // the counting hook bumped by every default run loop.
        let session = Session::in_memory();
        let spec = find("hotspot").unwrap();
        let machine = MachineSpec::Diag(DiagConfig::f4c2());
        let params = Params::tiny();

        let cold = run_verified_with(&session, &machine, &spec, &params).unwrap();
        let runs = session.counters().runs;
        assert_eq!((runs.hits, runs.builds), (0, 1));

        let steps_before = diag_sim::machine_steps();
        let warm = run_verified_with(&session, &machine, &spec, &params).unwrap();
        assert_eq!(
            diag_sim::machine_steps(),
            steps_before,
            "memoized resubmission stepped a machine"
        );
        assert_eq!(warm, cold);
        let runs = session.counters().runs;
        assert_eq!((runs.hits, runs.builds), (1, 1));

        // A different machine spec is a different run key: it simulates.
        let other = MachineSpec::InOrder;
        run_verified_with(&session, &other, &spec, &params).unwrap();
        assert_eq!(session.counters().runs.builds, 2);
    }

    #[test]
    fn failed_runs_are_not_memoized() {
        let session = Session::in_memory();
        let spec = find("hotspot").unwrap();
        let mut cfg = DiagConfig::f4c2();
        cfg.max_cycles = 10;
        let machine = MachineSpec::Diag(cfg);
        let err = run_verified_with(&session, &machine, &spec, &Params::tiny()).unwrap_err();
        assert!(matches!(err, RunError::Sim { .. }), "{err}");
        let runs = session.counters().runs;
        assert_eq!(
            (runs.hits, runs.builds),
            (0, 0),
            "failures must not occupy the run memo"
        );
        // The retry keeps its typed error (and still does not memoize).
        let err = run_verified_with(&session, &machine, &spec, &Params::tiny()).unwrap_err();
        assert!(matches!(err, RunError::Sim { .. }), "{err}");
    }

    #[test]
    fn run_errors_display_the_failing_stage() {
        let e = RunError::Verify {
            workload: "hotspot".to_string(),
            machine: "in-order".to_string(),
            message: "word 0 mismatch".to_string(),
        };
        let text = e.to_string();
        assert!(text.contains("hotspot"));
        assert!(text.contains("verification failed"));
    }
}
