//! Shared experiment plumbing: machine construction, workload runs, and
//! relative-performance math.

use std::fmt;

use diag_baseline::{InOrder, O3Config, OooCpu};
use diag_core::{Diag, DiagConfig};
use diag_pipeline::Session;
use diag_sim::{Machine, RunStats, SimError};
use diag_workloads::{Params, Scale, WorkloadSpec};

/// Which machine to construct for a run.
#[derive(Debug, Clone)]
pub enum MachineKind {
    /// A DiAG processor with the given configuration.
    Diag(DiagConfig),
    /// The out-of-order baseline with up to this many cores.
    Ooo(usize),
    /// The in-order reference.
    InOrder,
}

impl MachineKind {
    /// Builds the machine.
    pub fn build(&self) -> Box<dyn Machine> {
        match self {
            MachineKind::Diag(cfg) => Box::new(Diag::new(cfg.clone())),
            MachineKind::Ooo(cores) => Box::new(OooCpu::new(O3Config::aggressive_8wide(), *cores)),
            MachineKind::InOrder => Box::new(InOrder::new()),
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            MachineKind::Diag(cfg) => format!("DiAG {} ({} PEs)", cfg.name, cfg.total_pes()),
            MachineKind::Ooo(cores) => format!("OoO 8-wide x{cores}"),
            MachineKind::InOrder => "in-order".to_string(),
        }
    }
}

/// Why one workload run failed. Carries enough context to be printed in
/// an experiment report without the surrounding run table.
#[derive(Debug, Clone)]
pub enum RunError {
    /// The workload's program failed to assemble.
    Build {
        /// Workload name.
        workload: String,
        /// Assembler error text.
        message: String,
    },
    /// The simulation itself errored (cycle limit, illegal instruction…).
    Sim {
        /// Workload name.
        workload: String,
        /// Machine label.
        machine: String,
        /// The underlying simulator error.
        error: SimError,
    },
    /// The run completed but produced wrong architectural results.
    Verify {
        /// Workload name.
        workload: String,
        /// Machine label.
        machine: String,
        /// Verifier error text.
        message: String,
    },
    /// The run panicked (a simulator bug; caught so a sweep can finish).
    Panicked {
        /// Workload name.
        workload: String,
        /// Machine label.
        machine: String,
        /// Panic payload, if it was a string.
        message: String,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Build { workload, message } => {
                write!(f, "{workload}: build failed: {message}")
            }
            RunError::Sim {
                workload,
                machine,
                error,
            } => {
                write!(f, "{workload} on {machine}: {error}")
            }
            RunError::Verify {
                workload,
                machine,
                message,
            } => {
                write!(f, "{workload} on {machine}: verification failed: {message}")
            }
            RunError::Panicked {
                workload,
                machine,
                message,
            } => {
                write!(f, "{workload} on {machine}: panicked: {message}")
            }
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Sim { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// Runs `spec` on an already-constructed `machine`, preparing the
/// program (and, for the baselines, the shared [`StationTable`]
/// lowering) through `session` — callers that attach a tracer or
/// profiler before running use this directly.
///
/// DiAG populates its per-cluster station arenas at line-load time
/// (§4.2), so it mounts the bare program; the baselines adopt the
/// session's whole-text table instead of lowering their own.
///
/// [`StationTable`]: diag_isa::StationTable
///
/// # Errors
///
/// Returns a [`RunError`] describing the failing stage — build, simulate,
/// or verify.
pub fn run_built(
    session: &Session,
    kind: &MachineKind,
    spec: &WorkloadSpec,
    params: &Params,
    machine: &mut dyn Machine,
) -> Result<RunStats, RunError> {
    let build_err = |message: String| RunError::Build {
        workload: spec.name.to_string(),
        message,
    };
    let built = session.workload(spec, params).map_err(build_err)?;
    let stats = match kind {
        MachineKind::Diag(_) => machine.run(&built.program, params.threads),
        MachineKind::Ooo(_) | MachineKind::InOrder => {
            let stations = session.stations(spec, params, None).map_err(build_err)?;
            machine.run_prepared(&built.program, &stations, params.threads)
        }
    }
    .map_err(|e| RunError::Sim {
        workload: spec.name.to_string(),
        machine: kind.label(),
        error: e,
    })?;
    (built.verify)(&*machine).map_err(|e| RunError::Verify {
        workload: spec.name.to_string(),
        machine: kind.label(),
        message: e,
    })?;
    Ok(stats)
}

/// One workload run through a shared artifact `session`: prepares,
/// executes, verifies, returns statistics. Repeated runs of the same
/// `(spec, params)` reuse one assembly and one station-table lowering.
///
/// # Errors
///
/// Returns a [`RunError`] describing the failing stage — build, simulate,
/// or verify — so sweeps can aggregate failures instead of aborting.
pub fn run_verified_with(
    session: &Session,
    kind: &MachineKind,
    spec: &WorkloadSpec,
    params: &Params,
) -> Result<RunStats, RunError> {
    let mut machine = kind.build();
    run_built(session, kind, spec, params, machine.as_mut())
}

/// [`run_verified_with`] over a throwaway in-memory session, for callers
/// that run one thing once.
///
/// # Errors
///
/// Returns a [`RunError`] describing the failing stage — build, simulate,
/// or verify — so sweeps can aggregate failures instead of aborting.
pub fn run_verified(
    kind: &MachineKind,
    spec: &WorkloadSpec,
    params: &Params,
) -> Result<RunStats, RunError> {
    run_verified_with(&Session::in_memory(), kind, spec, params)
}

/// [`run_verified`], but aborting on failure — for callers where a wrong
/// experiment result must never be silently dropped (`harness --strict`).
///
/// # Panics
///
/// Panics on build, run, or verification failure.
pub fn run_verified_strict(kind: &MachineKind, spec: &WorkloadSpec, params: &Params) -> RunStats {
    run_verified(kind, spec, params).unwrap_or_else(|e| panic!("{e}"))
}

/// Relative performance of `kind` vs `baseline` on `spec` (ratio of
/// baseline cycles to machine cycles at equal frequency — >1 means
/// faster than baseline, the paper's reporting convention).
///
/// # Errors
///
/// Propagates the first failing run's [`RunError`].
pub fn relative_performance(
    kind: &MachineKind,
    baseline: &MachineKind,
    spec: &WorkloadSpec,
    params: &Params,
) -> Result<f64, RunError> {
    let base = run_verified(baseline, spec, params)?;
    let ours = run_verified(kind, spec, params)?;
    Ok(base.cycles as f64 / ours.cycles as f64)
}

/// Default benchmarking scale for harness runs.
pub fn harness_scale(quick: bool) -> Scale {
    if quick {
        Scale::Tiny
    } else {
        Scale::Small
    }
}

/// The paper's multi-threaded configuration: 12 threads (one per baseline
/// core, §7.1).
pub const MT_THREADS: usize = 12;

#[cfg(test)]
mod tests {
    use super::*;
    use diag_workloads::find;

    #[test]
    fn run_verified_produces_stats() {
        let spec = find("x264").unwrap();
        let stats = run_verified(&MachineKind::InOrder, &spec, &Params::tiny()).unwrap();
        assert!(stats.cycles > 0);
        assert!(stats.committed > 0);
    }

    #[test]
    fn relative_performance_is_positive() {
        let spec = find("deepsjeng").unwrap();
        let rel = relative_performance(
            &MachineKind::Diag(diag_core::DiagConfig::f4c2()),
            &MachineKind::Ooo(1),
            &spec,
            &Params::tiny(),
        )
        .unwrap();
        assert!(rel > 0.05 && rel < 20.0, "rel = {rel}");
    }

    #[test]
    fn labels_are_informative() {
        assert!(MachineKind::Diag(DiagConfig::f4c32())
            .label()
            .contains("512"));
        assert!(MachineKind::Ooo(12).label().contains("x12"));
    }

    #[test]
    fn run_errors_display_the_failing_stage() {
        let e = RunError::Verify {
            workload: "hotspot".to_string(),
            machine: "in-order".to_string(),
            message: "word 0 mismatch".to_string(),
        };
        let text = e.to_string();
        assert!(text.contains("hotspot"));
        assert!(text.contains("verification failed"));
    }
}
