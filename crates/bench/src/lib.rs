//! # diag-bench — experiment harness for the DiAG reproduction
//!
//! Regenerates every table and figure of the paper's evaluation (§6–§7):
//! one function per artifact in [`experiments`], shared machine/workload
//! plumbing in [`runner`], and a CLI binary (`harness`) that prints the
//! same rows/series the paper reports with the paper's published values
//! alongside. Criterion microbenchmarks of the simulators themselves live
//! under `benches/`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod runner;
