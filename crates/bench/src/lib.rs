//! # diag-bench — experiment harness for the DiAG reproduction
//!
//! Regenerates every table and figure of the paper's evaluation (§6–§7):
//! one function per artifact in [`experiments`], shared machine/workload
//! plumbing in [`runner`], the parallel work-queue runner in [`sweep`],
//! the shared subcommand flag parser in [`cli`], and a CLI binary
//! (`harness`) that prints the same rows/series the paper reports with
//! the paper's published values alongside. Simulator microbenchmarks
//! (dependency-free timing harnesses) live under `benches/`.
//!
//! Experiments enqueue every `(machine, workload, params)` simulation
//! into a [`sweep::Sweep`] and assemble their tables from the results in
//! submission order, so `harness --jobs N` output is byte-identical to a
//! serial run. All preparation — workload assembly, station-table
//! lowering, static analysis — flows through a `diag_pipeline::Session`,
//! a content-addressed artifact store shared across a whole invocation
//! (and, via its disk layer, across processes).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cli;
pub mod experiments;
pub mod hostbench;
pub mod hostmeta;
pub mod metricsfmt;
pub mod runner;
pub mod sweep;
pub mod tune;
