//! A parallel experiment runner.
//!
//! Experiments are two-phase: *enqueue* every `(machine, workload,
//! params)` run into a [`Sweep`], then [`Sweep::execute`] shards the queue
//! across `jobs` OS threads and returns results **in submission order**,
//! regardless of which worker ran what — so experiment output is
//! byte-identical at any job count. Failed runs (including panics inside
//! a simulator) are captured as [`RunError`]s in their slot instead of
//! aborting the whole sweep.
//!
//! The unit of parallelism is one whole simulation run: machines are
//! single-threaded internally (`Rc`-based cache hierarchies), so each
//! worker constructs its machine privately and only the submission queue,
//! the result slots, and the artifact [`Session`] are shared — workloads
//! and station tables are prepared once per key no matter how many queued
//! runs (or workers) want them.
//!
//! # Examples
//!
//! ```
//! use diag_bench::runner::MachineSpec;
//! use diag_bench::sweep::Sweep;
//! use diag_workloads::{find, Params};
//!
//! let spec = find("hotspot").expect("registered");
//! let mut sweep = Sweep::new();
//! let a = sweep.add(MachineSpec::InOrder, spec, Params::tiny());
//! let b = sweep.add(MachineSpec::Ooo(1), spec, Params::tiny());
//! let results = sweep.execute(2);
//! let (slow, fast) = (results.stats(a).unwrap(), results.stats(b).unwrap());
//! assert!(fast.cycles < slow.cycles);
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use diag_pipeline::Session;
use diag_sim::RunStats;
use diag_telemetry::{Counter, Histogram, Registry};
use diag_workloads::{Params, WorkloadSpec};

use crate::runner::{run_verified_with, MachineSpec, RunError};

/// Host-side worker accounting for one sweep, registered under
/// `diag_sweep_*` in a caller-provided [`Registry`]: total busy vs idle
/// worker nanoseconds, per-run wall time, per-run host nanoseconds per
/// committed guest instruction, and an ok/error outcome tally. Metrics
/// accumulate across sweeps that share a registry.
#[derive(Debug)]
pub struct SweepMetrics {
    busy_ns: Counter,
    idle_ns: Counter,
    run_ns: Histogram,
    ns_per_instr: Histogram,
    ok: Counter,
    err: Counter,
}

impl SweepMetrics {
    /// Registers (or re-attaches to) the sweep metric family.
    pub fn new(registry: &Registry) -> SweepMetrics {
        SweepMetrics {
            busy_ns: registry.counter("diag_sweep_worker_busy_ns", &[]),
            idle_ns: registry.counter("diag_sweep_worker_idle_ns", &[]),
            run_ns: registry.histogram("diag_sweep_run_ns", &[]),
            ns_per_instr: registry.histogram("diag_sweep_run_ns_per_instr", &[]),
            ok: registry.counter("diag_sweep_runs_total", &[("outcome", "ok")]),
            err: registry.counter("diag_sweep_runs_total", &[("outcome", "error")]),
        }
    }

    /// Accounts one finished run.
    fn observe(&self, host_ns: u64, result: &Result<RunStats, RunError>) {
        self.busy_ns.add(host_ns);
        self.run_ns.record(host_ns);
        match result {
            Ok(stats) => {
                self.ok.inc();
                self.ns_per_instr.record(host_ns / stats.committed.max(1));
            }
            Err(_) => self.err.inc(),
        }
    }

    /// Accounts one worker's full lifetime: whatever was not spent in
    /// runs was spent waiting on the queue (or on shared preparation).
    fn observe_worker(&self, lifetime_ns: u64, busy_ns: u64) {
        self.idle_ns.add(lifetime_ns.saturating_sub(busy_ns));
    }
}

/// Nanoseconds since `t`, saturating at `u64::MAX`.
fn ns_since(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX) // lint: allow(unwrap)
}

/// One queued run: which machine, which workload, which parameters.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// Machine to construct.
    pub machine: MachineSpec,
    /// Workload to build and verify.
    pub spec: WorkloadSpec,
    /// Build/run parameters (scale, threads, SIMT, seed).
    pub params: Params,
}

/// Handle to one queued run, redeemable against [`SweepResults`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunId(usize);

/// A queue of simulation runs executed together.
#[derive(Debug, Default)]
pub struct Sweep {
    runs: Vec<SweepRun>,
}

impl Sweep {
    /// Creates an empty sweep.
    pub fn new() -> Sweep {
        Sweep::default()
    }

    /// Enqueues one run and returns its handle.
    pub fn add(&mut self, machine: MachineSpec, spec: WorkloadSpec, params: Params) -> RunId {
        self.runs.push(SweepRun {
            machine,
            spec,
            params,
        });
        RunId(self.runs.len() - 1)
    }

    /// Number of queued runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Executes every queued run on up to `jobs` worker threads and
    /// returns the results in submission order. One in-memory artifact
    /// store is shared across the whole queue, so a workload enqueued
    /// against three machines assembles once.
    pub fn execute(self, jobs: usize) -> SweepResults {
        self.execute_with(&Session::in_memory(), jobs)
    }

    /// [`Sweep::execute`] against a caller-provided artifact `session`
    /// — harness subcommands pass their (possibly disk-backed) session
    /// so artifacts carry across sweeps and processes.
    pub fn execute_with(self, session: &Session, jobs: usize) -> SweepResults {
        SweepResults {
            results: run_sweep_with(session, &self.runs, jobs),
        }
    }

    /// [`Sweep::execute_with`] with worker telemetry: per-run wall time
    /// and busy/idle accounting recorded into `metrics`.
    pub fn execute_metered(
        self,
        session: &Session,
        jobs: usize,
        metrics: &SweepMetrics,
    ) -> SweepResults {
        SweepResults {
            results: run_sweep_metered(session, &self.runs, jobs, Some(metrics)),
        }
    }
}

/// Results of a [`Sweep`], indexed by [`RunId`] in submission order.
#[derive(Debug)]
pub struct SweepResults {
    results: Vec<Result<RunStats, RunError>>,
}

impl SweepResults {
    /// The result of one run.
    pub fn get(&self, id: RunId) -> &Result<RunStats, RunError> {
        &self.results[id.0]
    }

    /// The statistics of one run, or `None` if it failed.
    pub fn stats(&self, id: RunId) -> Option<&RunStats> {
        self.results[id.0].as_ref().ok()
    }

    /// Baseline-over-ours cycle ratio (the paper's relative-performance
    /// convention), or `None` if either run failed.
    pub fn rel(&self, baseline: RunId, ours: RunId) -> Option<f64> {
        Some(self.stats(baseline)?.cycles as f64 / self.stats(ours)?.cycles as f64)
    }

    /// Every failure, in submission order.
    pub fn failures(&self) -> Vec<&RunError> {
        self.results
            .iter()
            .filter_map(|r| r.as_ref().err())
            .collect()
    }

    /// All results, in submission order.
    pub fn all(&self) -> &[Result<RunStats, RunError>] {
        &self.results
    }
}

/// Appends a "failed runs" section to an experiment report if any run in
/// the sweep failed. Experiments stay useful under partial failure: good
/// rows render, broken ones are listed here.
pub fn append_failures(out: &mut String, results: &SweepResults) {
    let failures = results.failures();
    if failures.is_empty() {
        return;
    }
    out.push_str(&format!("failed runs ({}):\n", failures.len()));
    for f in failures {
        out.push_str(&format!("  {f}\n"));
    }
}

/// Default worker count: the host's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Executes `runs` on up to `jobs` worker threads against a fresh shared
/// in-memory artifact store; see [`run_sweep_with`].
pub fn run_sweep(runs: &[SweepRun], jobs: usize) -> Vec<Result<RunStats, RunError>> {
    run_sweep_with(&Session::in_memory(), runs, jobs)
}

/// Executes `runs` on up to `jobs` worker threads, returning one result
/// per run **in submission order**. Workers pull indices from a shared
/// atomic counter, so scheduling is dynamic but the output ordering (and
/// every simulation itself — machines are deterministic) is not affected
/// by the job count. All workers prepare through the shared `session`,
/// so concurrent runs of the same workload block on one assembly instead
/// of duplicating it. A panicking run is caught and reported as
/// [`RunError::Panicked`] without poisoning the rest of the sweep.
pub fn run_sweep_with(
    session: &Session,
    runs: &[SweepRun],
    jobs: usize,
) -> Vec<Result<RunStats, RunError>> {
    run_sweep_metered(session, runs, jobs, None)
}

/// [`run_sweep_with`] with optional worker telemetry. With `metrics:
/// None` no clock is read and no atomic is touched — the uninstrumented
/// path is exactly the old one. With a [`SweepMetrics`], each worker
/// accounts every run's wall time plus its own busy/idle split.
pub fn run_sweep_metered(
    session: &Session,
    runs: &[SweepRun],
    jobs: usize,
    metrics: Option<&SweepMetrics>,
) -> Vec<Result<RunStats, RunError>> {
    let jobs = jobs.clamp(1, runs.len().max(1));
    if jobs == 1 {
        let born = metrics.map(|_| Instant::now());
        let mut busy = 0u64;
        let results = runs
            .iter()
            .map(|run| run_one_metered(session, run, metrics, &mut busy))
            .collect();
        if let (Some(m), Some(born)) = (metrics, born) {
            m.observe_worker(ns_since(born), busy);
        }
        return results;
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<RunStats, RunError>>>> =
        runs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let born = metrics.map(|_| Instant::now());
                let mut busy = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(run) = runs.get(i) else { break };
                    let result = run_one_metered(session, run, metrics, &mut busy);
                    // A sweep worker never panics while holding the lock
                    // (`run_one` catches panics), but recover anyway: the
                    // slot is write-only here.
                    *slots[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(result);
                }
                if let (Some(m), Some(born)) = (metrics, born) {
                    m.observe_worker(ns_since(born), busy);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                // lint: allow(unwrap) — the worker loop claims every index before exiting
                .expect("worker filled slot")
        })
        .collect()
}

/// One run with optional accounting; adds the run's wall time to the
/// calling worker's `busy` tally.
fn run_one_metered(
    session: &Session,
    run: &SweepRun,
    metrics: Option<&SweepMetrics>,
    busy: &mut u64,
) -> Result<RunStats, RunError> {
    let Some(m) = metrics else {
        return run_one(session, run);
    };
    let t0 = Instant::now();
    let result = run_one(session, run);
    let host_ns = ns_since(t0);
    *busy = busy.saturating_add(host_ns);
    m.observe(host_ns, &result);
    result
}

/// Executes one [`SweepRun`] against `session`, catching panics as
/// [`RunError::Panicked`] — the same per-run behaviour a sweep worker
/// has, exposed for callers (like `diag-serve`) that schedule runs
/// themselves but want identical failure semantics.
pub fn run_one(session: &Session, run: &SweepRun) -> Result<RunStats, RunError> {
    catch_unwind(AssertUnwindSafe(|| {
        run_verified_with(session, &run.machine, &run.spec, &run.params)
    }))
    .unwrap_or_else(|payload| {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        Err(RunError::Panicked {
            workload: run.spec.name.to_string(),
            machine: run.machine.label(),
            message,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag_workloads::find;

    fn queue_of(n: usize) -> Sweep {
        let spec = find("bfs").unwrap();
        let mut sweep = Sweep::new();
        for _ in 0..n {
            sweep.add(MachineSpec::InOrder, spec, Params::tiny());
        }
        sweep
    }

    #[test]
    fn results_are_in_submission_order_at_any_job_count() {
        let mut sweep = Sweep::new();
        let mut ids = Vec::new();
        for name in ["bfs", "hotspot", "nw", "x264", "mcf"] {
            ids.push((
                name,
                sweep.add(MachineSpec::InOrder, find(name).unwrap(), Params::tiny()),
            ));
        }
        let serial = sweep.execute(1);
        let mut sweep = Sweep::new();
        for (name, _) in &ids {
            sweep.add(MachineSpec::InOrder, find(name).unwrap(), Params::tiny());
        }
        let parallel = sweep.execute(4);
        for (i, (name, id)) in ids.iter().enumerate() {
            let a = serial
                .stats(*id)
                .unwrap_or_else(|| panic!("{name} failed serially"));
            let b = parallel
                .stats(RunId(i))
                .unwrap_or_else(|| panic!("{name} failed in parallel"));
            assert_eq!(
                a.cycles, b.cycles,
                "{name} nondeterministic across job counts"
            );
            assert_eq!(a.committed, b.committed, "{name}");
        }
    }

    #[test]
    fn more_jobs_than_runs_is_fine() {
        let results = queue_of(2).execute(64);
        assert_eq!(results.all().len(), 2);
        assert!(results.failures().is_empty());
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        let results = queue_of(1).execute(0);
        assert!(results.stats(RunId(0)).is_some());
    }

    #[test]
    fn metered_sweep_accounts_every_run() {
        let registry = Registry::new();
        let metrics = SweepMetrics::new(&registry);
        let results = queue_of(4).execute_metered(&Session::in_memory(), 2, &metrics);
        assert!(results.failures().is_empty());
        let snap = registry.snapshot();
        let counter = |key: &str| -> u64 {
            snap.counters
                .iter()
                .find(|(k, _)| k.to_string() == key)
                .unwrap_or_else(|| panic!("missing counter {key}"))
                .1
        };
        assert_eq!(counter("diag_sweep_runs_total{outcome=\"ok\"}"), 4);
        assert_eq!(counter("diag_sweep_runs_total{outcome=\"error\"}"), 0);
        assert!(counter("diag_sweep_worker_busy_ns") > 0);
        let (_, run_ns) = snap
            .histograms
            .iter()
            .find(|(k, _)| k.name() == "diag_sweep_run_ns")
            .expect("run histogram");
        assert_eq!(run_ns.count, 4);
        let (_, per_instr) = snap
            .histograms
            .iter()
            .find(|(k, _)| k.name() == "diag_sweep_run_ns_per_instr")
            .expect("per-instr histogram");
        assert_eq!(per_instr.count, 4);
    }

    #[test]
    fn failures_are_reported_not_fatal() {
        // A DiAG config with a far-too-small cycle limit: the run fails
        // with a cycle-limit SimError but the sweep still completes, and
        // the healthy neighbouring run is unaffected.
        let spec = find("hotspot").unwrap();
        let mut tiny_limit = diag_core::DiagConfig::f4c2();
        tiny_limit.max_cycles = 10;
        let mut sweep = Sweep::new();
        let bad = sweep.add(MachineSpec::Diag(tiny_limit), spec, Params::tiny());
        let good = sweep.add(MachineSpec::InOrder, spec, Params::tiny());
        let results = sweep.execute(2);
        assert!(results.stats(bad).is_none());
        assert!(results.stats(good).is_some());
        assert_eq!(results.failures().len(), 1);
        let mut report = String::new();
        append_failures(&mut report, &results);
        assert!(report.contains("failed runs (1)"), "{report}");
        assert!(report.contains("hotspot"), "{report}");
    }
}
