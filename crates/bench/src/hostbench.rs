//! Host-time benchmarking of the simulator itself (`harness bench`).
//!
//! Where [`crate::sweep`] measures the *modeled* machines (sim cycles,
//! IPC), this module measures the *simulator*: wall-clock nanoseconds per
//! committed instruction for every bundled workload on every machine
//! model. The results are written as `BENCH_sim.json` so hot-loop
//! regressions show up as numbers, not vibes, and CI can gate on them
//! against a checked-in seed baseline (see `results/BENCH_seed*.json`).
//!
//! Timing methodology: each `(workload, machine)` pair is run `repeat`
//! times serially (no worker threads — parallel runs would contend for
//! cores and poison the timings) and the *minimum* host time is kept,
//! which is the standard way to damp scheduler noise on a shared host.
//! Only the simulation itself ([`diag_sim::Machine::run`] /
//! [`diag_sim::Machine::run_prepared`]) is timed; workload assembly,
//! station-table lowering, and machine construction all happen through
//! the shared artifact [`Session`] before the clock starts. The session's
//! cache counters are recorded in the report's host metadata.

use std::time::Instant;

use diag_pipeline::{CacheCounters, Session};
use diag_trace::json;
use diag_workloads::{Params, Scale, WorkloadSpec};

use crate::runner::{build_machine, MachineSpec};

/// Schema identifier written into (and required from) the JSON report.
pub const BENCH_SCHEMA: &str = "diag-bench-host-v1";

/// One timed `(workload, machine)` run.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Workload name (e.g. `hotspot`).
    pub workload: String,
    /// Short machine key: `diag`, `ooo`, or `inorder`.
    pub machine: String,
    /// Best-of-`repeat` wall-clock time of [`diag_sim::Machine::run`], nanoseconds.
    pub host_ns: u64,
    /// Instructions the run committed.
    pub committed: u64,
    /// Modeled cycles of the run (unchanged by host speed).
    pub sim_cycles: u64,
    /// `host_ns / committed` — the simulator's hot-loop figure of merit.
    pub ns_per_instr: f64,
    /// `seed ns/instr ÷ this ns/instr` when a baseline row exists
    /// (>1 means this build is faster than the recorded seed).
    pub speedup_vs_seed: Option<f64>,
}

/// A full `harness bench` report.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Workload input scale the rows were measured at.
    pub scale: Scale,
    /// Runs per row (minimum time kept).
    pub repeat: u32,
    /// All timed rows, in (workload, machine) submission order.
    pub rows: Vec<BenchRow>,
    /// Failures as `workload on machine: message` lines.
    pub failures: Vec<String>,
    /// Artifact-cache counters of the session the sweep prepared
    /// through, when one was used (recorded into the JSON host object).
    pub cache: Option<CacheCounters>,
}

impl BenchReport {
    /// Total host nanoseconds across all rows.
    pub fn total_host_ns(&self) -> u64 {
        self.rows.iter().map(|r| r.host_ns).sum()
    }

    /// Total committed instructions across all rows.
    pub fn total_committed(&self) -> u64 {
        self.rows.iter().map(|r| r.committed).sum()
    }

    /// Aggregate ns/instr: total host time over total committed work.
    pub fn total_ns_per_instr(&self) -> f64 {
        let committed = self.total_committed();
        if committed == 0 {
            return 0.0;
        }
        self.total_host_ns() as f64 / committed as f64
    }
}

/// A parsed seed baseline: per-row and aggregate ns/instr to compare a
/// fresh [`BenchReport`] against.
#[derive(Debug, Clone)]
pub struct BenchBaseline {
    /// Scale the baseline was recorded at (must match the fresh run).
    pub scale: String,
    /// `(workload, machine) → ns_per_instr` rows of the recorded run.
    pub rows: Vec<(String, String, f64)>,
    /// Aggregate ns/instr of the recorded run.
    pub total_ns_per_instr: f64,
}

impl BenchBaseline {
    /// Looks up the recorded ns/instr for one `(workload, machine)` row.
    pub fn row(&self, workload: &str, machine: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|(w, m, _)| w == workload && m == machine)
            .map(|&(_, _, n)| n)
    }

    /// Parses a baseline from the JSON text a previous run wrote.
    ///
    /// # Errors
    ///
    /// Returns a message when the text is not valid JSON, carries a
    /// different schema identifier, or lacks the expected fields.
    pub fn parse(text: &str) -> Result<BenchBaseline, String> {
        let doc = json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let schema = doc.get("schema").and_then(|v| v.as_str()).unwrap_or("");
        if schema != BENCH_SCHEMA {
            return Err(format!(
                "schema `{schema}` is not `{BENCH_SCHEMA}` — re-record the baseline"
            ));
        }
        let scale = doc
            .get("scale")
            .and_then(|v| v.as_str())
            .ok_or("missing `scale`")?
            .to_string();
        let total_ns_per_instr = doc
            .get("total")
            .and_then(|t| t.get("ns_per_instr"))
            .and_then(|v| v.as_num())
            .ok_or("missing `total.ns_per_instr`")?;
        let mut rows = Vec::new();
        for run in doc
            .get("runs")
            .and_then(|v| v.as_arr())
            .ok_or("missing `runs`")?
        {
            let get_str = |k: &str| run.get(k).and_then(|v| v.as_str()).map(str::to_string);
            let (Some(w), Some(m)) = (get_str("workload"), get_str("machine")) else {
                return Err("run row without workload/machine".to_string());
            };
            let n = run
                .get("ns_per_instr")
                .and_then(|v| v.as_num())
                .ok_or("run row without ns_per_instr")?;
            rows.push((w, m, n));
        }
        Ok(BenchBaseline {
            scale,
            rows,
            total_ns_per_instr,
        })
    }
}

/// The machine models a bench sweep times, with their short JSON keys.
pub fn bench_machines() -> Vec<(&'static str, MachineSpec)> {
    vec![
        ("diag", MachineSpec::Diag(diag_core::DiagConfig::f4c32())),
        ("ooo", MachineSpec::Ooo(12)),
        ("inorder", MachineSpec::InOrder),
    ]
}

/// Times one workload on one machine, best of `repeat` runs. Artifacts
/// are prepared through `session` before timing starts, so repeats (and
/// machines sharing a program) never re-assemble or re-lower.
fn time_one(
    session: &Session,
    kind: &MachineSpec,
    key: &str,
    spec: &WorkloadSpec,
    params: &Params,
    repeat: u32,
) -> Result<BenchRow, String> {
    let built = session
        .workload(spec, params)
        .map_err(|e| format!("{}: build failed: {e}", spec.name))?;
    // The baselines adopt a prepared station table; DiAG loads its own
    // per-cluster stations at line-load time and mounts the bare image.
    let stations = match kind {
        MachineSpec::Diag(_) => None,
        MachineSpec::Ooo(_) | MachineSpec::InOrder => Some(
            session
                .stations(spec, params, None)
                .map_err(|e| format!("{}: build failed: {e}", spec.name))?,
        ),
    };
    let mut best_ns = u64::MAX;
    let mut stats = None;
    for _ in 0..repeat.max(1) {
        let mut machine = build_machine(kind);
        let t0 = Instant::now();
        let s = match &stations {
            Some(table) => machine.run_prepared(&built.program, table, params.threads),
            None => machine.run(&built.program, params.threads),
        }
        .map_err(|e| format!("{} on {key}: {e}", spec.name))?;
        let ns = t0.elapsed().as_nanos() as u64;
        (built.verify)(machine.as_ref())
            .map_err(|e| format!("{} on {key}: verification failed: {e}", spec.name))?;
        best_ns = best_ns.min(ns.max(1));
        stats = Some(s);
    }
    // lint: allow(unwrap) — the measurement loop above runs at least once
    let stats = stats.expect("repeat >= 1");
    let ns_per_instr = if stats.committed == 0 {
        0.0
    } else {
        best_ns as f64 / stats.committed as f64
    };
    Ok(BenchRow {
        workload: spec.name.to_string(),
        machine: key.to_string(),
        host_ns: best_ns,
        committed: stats.committed,
        sim_cycles: stats.cycles,
        ns_per_instr,
        speedup_vs_seed: None,
    })
}

/// Runs the host-time sweep: every workload in `specs` on every machine
/// in [`bench_machines`], serially, best of `repeat` runs each,
/// preparing artifacts through `session`. When a `baseline` is given,
/// per-row and aggregate speedups are attached.
pub fn run_bench(
    session: &Session,
    specs: &[WorkloadSpec],
    params: &Params,
    repeat: u32,
    baseline: Option<&BenchBaseline>,
) -> BenchReport {
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for spec in specs {
        for (key, kind) in bench_machines() {
            match time_one(session, &kind, key, spec, params, repeat) {
                Ok(mut row) => {
                    row.speedup_vs_seed = baseline
                        .and_then(|b| b.row(&row.workload, &row.machine))
                        .filter(|_| rowable(&row))
                        .map(|seed| seed / row.ns_per_instr);
                    rows.push(row);
                }
                Err(message) => failures.push(message),
            }
        }
    }
    BenchReport {
        scale: params.scale,
        repeat,
        rows,
        failures,
        cache: Some(session.counters()),
    }
}

/// Whether a row has a meaningful ns/instr (committed > 0).
fn rowable(row: &BenchRow) -> bool {
    row.ns_per_instr > 0.0
}

/// Lowercase scale name used in the JSON report (`tiny` / `small` /
/// `full`).
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Full => "full",
    }
}

/// Renders the report as the `BENCH_sim.json` document.
pub fn to_json(report: &BenchReport, baseline: Option<&BenchBaseline>) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": \"{BENCH_SCHEMA}\",\n"));
    out.push_str(&format!("  \"scale\": \"{}\",\n", scale_name(report.scale)));
    out.push_str(&format!("  \"repeat\": {},\n", report.repeat));
    let mut host = crate::hostmeta::host_entries_with_repeat(report.repeat);
    if let Some(cache) = &report.cache {
        // Artifact-cache counters ride in the host object: free-form
        // provenance strings the baseline parser ignores. The keys and
        // rendering are shared with the server's `status` frame.
        host.extend(crate::hostmeta::cache_entries(cache));
    }
    out.push_str(&format!(
        "  \"host\": {},\n",
        crate::hostmeta::render_host_object(&host)
    ));
    out.push_str("  \"runs\": [\n");
    for (i, row) in report.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"machine\": \"{}\", \"host_ns\": {}, \
             \"committed\": {}, \"sim_cycles\": {}, \"ns_per_instr\": {:.3}{}}}{}\n",
            row.workload,
            row.machine,
            row.host_ns,
            row.committed,
            row.sim_cycles,
            row.ns_per_instr,
            match row.speedup_vs_seed {
                Some(s) => format!(", \"speedup_vs_seed\": {s:.3}"),
                None => String::new(),
            },
            if i + 1 < report.rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let total_speedup = baseline
        .filter(|_| report.total_ns_per_instr() > 0.0)
        .map(|b| b.total_ns_per_instr / report.total_ns_per_instr());
    out.push_str(&format!(
        "  \"total\": {{\"host_ns\": {}, \"committed\": {}, \"ns_per_instr\": {:.3}{}}},\n",
        report.total_host_ns(),
        report.total_committed(),
        report.total_ns_per_instr(),
        match total_speedup {
            Some(s) => format!(", \"speedup_vs_seed\": {s:.3}"),
            None => String::new(),
        },
    ));
    out.push_str(&format!(
        "  \"failures\": [{}]\n",
        report
            .failures
            .iter()
            .map(|f| format!("\"{}\"", f.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("}\n");
    out
}

/// Checks the report against a baseline: returns an error message when
/// the aggregate ns/instr regressed by more than `max_regress_pct`.
///
/// The gate uses the aggregate (not per-row) figure because individual
/// rows at `--quick` scale run microseconds and jitter accordingly; the
/// aggregate over every workload × machine is stable enough to gate on.
pub fn check_regression(
    report: &BenchReport,
    baseline: &BenchBaseline,
    max_regress_pct: f64,
) -> Result<(), String> {
    if baseline.scale != scale_name(report.scale) {
        return Err(format!(
            "baseline was recorded at scale `{}`, this run is `{}` — not comparable",
            baseline.scale,
            scale_name(report.scale)
        ));
    }
    let now = report.total_ns_per_instr();
    let seed = baseline.total_ns_per_instr;
    if now <= 0.0 || seed <= 0.0 {
        return Err("no timed work to compare".to_string());
    }
    let regress_pct = (now / seed - 1.0) * 100.0;
    if regress_pct > max_regress_pct {
        return Err(format!(
            "host ns/instr regressed {regress_pct:.1}% vs seed baseline \
             ({now:.1} ns/instr vs {seed:.1}), limit {max_regress_pct:.0}%"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(rows: Vec<BenchRow>) -> BenchReport {
        BenchReport {
            scale: Scale::Tiny,
            repeat: 1,
            rows,
            failures: Vec::new(),
            cache: None,
        }
    }

    fn row(workload: &str, machine: &str, host_ns: u64, committed: u64) -> BenchRow {
        BenchRow {
            workload: workload.to_string(),
            machine: machine.to_string(),
            host_ns,
            committed,
            sim_cycles: 10,
            ns_per_instr: host_ns as f64 / committed as f64,
            speedup_vs_seed: None,
        }
    }

    #[test]
    fn json_round_trips_through_baseline_parser() {
        let report = report_with(vec![row("a", "diag", 1000, 10), row("a", "ooo", 300, 10)]);
        let text = to_json(&report, None);
        let baseline = BenchBaseline::parse(&text).expect("round-trip");
        assert_eq!(baseline.scale, "tiny");
        assert_eq!(baseline.row("a", "diag"), Some(100.0));
        assert_eq!(baseline.row("a", "ooo"), Some(30.0));
        assert!((baseline.total_ns_per_instr - 65.0).abs() < 1e-9);
    }

    #[test]
    fn regression_gate_fires_only_past_threshold() {
        let report = report_with(vec![row("a", "diag", 1300, 10)]);
        let text = to_json(&report_with(vec![row("a", "diag", 1000, 10)]), None);
        let baseline = BenchBaseline::parse(&text).expect("parses");
        assert!(check_regression(&report, &baseline, 25.0).is_err());
        assert!(check_regression(&report, &baseline, 35.0).is_ok());
    }

    #[test]
    fn mismatched_scale_is_an_error() {
        let report = report_with(vec![row("a", "diag", 1000, 10)]);
        let text = to_json(&report, None).replace("\"tiny\"", "\"small\"");
        let baseline = BenchBaseline::parse(&text).expect("parses");
        let err = check_regression(&report, &baseline, 25.0).unwrap_err();
        assert!(err.contains("not comparable"), "{err}");
    }

    #[test]
    fn baseline_rejects_wrong_schema() {
        let err = BenchBaseline::parse("{\"schema\": \"nope\"}").unwrap_err();
        assert!(err.contains("re-record"), "{err}");
    }
}
