//! `diag-serve`: a persistent experiment server for the DiAG
//! reproduction.
//!
//! The north star imagines this reproduction as the engine behind
//! "millions of users submitting experiments"; this crate is the
//! serving layer that turns the batch harness into that long-lived
//! system. A `diag-serve` process owns **one** artifact
//! [`Session`](diag_pipeline::Session) and executes every request
//! through the same [`bench::sweep`](diag_bench::sweep) machinery the
//! CLI uses, so:
//!
//! - concurrent requests for the same `(workload, params, machine)`
//!   **coalesce** onto a single preparation (the store's
//!   `Arc<OnceLock>` layer), and each response reports the cache
//!   hits/builds its own run observed;
//! - a wire request and a `harness` invocation of the same spec run the
//!   *identical* simulation — same `RunStats`, same `RunError`
//!   taxonomy;
//! - admission is **bounded** ([`queue::FairQueue`]): over-capacity
//!   submissions get an immediate `429` frame instead of growing server
//!   memory;
//! - scheduling is **fair** (deficit round-robin over client ids): a
//!   client flooding thousands of jobs cannot starve one submitting
//!   ten.
//!
//! Results stream back as JSONL frames in per-client submission order
//! ([`protocol`]); `status`, `cancel`, and `shutdown` (graceful drain)
//! are the control verbs. [`client`] is the matching blocking client,
//! used by the `diag-load` load generator and the integration tests.

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod queue;
pub mod server;

pub use client::{Client, Frame, Submit};
pub use protocol::{Request, StatusSnapshot, PROTO};
pub use queue::{FairQueue, SubmitError, Ticket};
pub use server::{job_cost, ServeConfig, Server, ServerHandle};
