//! The `diag-load` load generator: a closed-loop client for `diag-serve`.
//!
//! ```text
//! diag-load --addr HOST:PORT [--conns N] [--inflight M] [--requests K]
//!           [--seed S] [--machine SPEC|mix]
//!           [--workloads a,b,c] [--scale tiny|small|full]
//!           [--expect-warm] [--allow-reject] [--shutdown]
//! ```
//!
//! `--machine` takes any spec in the canonical grammar
//! (`diag[:preset][+k=v,...]`, `ooo[:cores]`, `inorder`) or `mix` for a
//! rotation over the three default machines.
//!
//! Opens `--conns` connections, each keeping up to `--inflight`
//! submissions outstanding until `--requests` per connection have
//! completed (closed loop). The workload/machine mix is drawn from a
//! SplitMix64 stream seeded with `--seed` + the connection index, so a
//! repeated invocation submits the identical request set — which is what
//! lets a second burst assert warm-cache behaviour with `--expect-warm`
//! (every result must report `builds == 0`, `hits ≥ 1`, and zero
//! run-stage builds: nothing simulated).
//!
//! Prints one summary line (req/s, latency p50/p99, cache totals) and
//! exits nonzero on any error frame, any reject (unless
//! `--allow-reject`), or any warm violation. `--shutdown` instead sends
//! the shutdown verb and exits.
//!
//! Client-side latency is recorded into the shared telemetry histogram
//! ([`diag_telemetry::Histogram`]) — the same log-scale buckets the
//! server uses — so the p50/p99 the summary prints and the ones the
//! server's `metrics` verb reports are directly comparable. With
//! `--expect-warm` the run finishes by scraping that verb and printing
//! the server-side view: per-verb latency, first-byte latency at the
//! run's scale, queue-depth high water, and run-stage cache totals next
//! to the client-observed ones.

use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Instant;

use diag_bench::cli::{self, CliSpec, Extra, Flag};
use diag_bench::hostbench::scale_name;
use diag_bench::runner::MachineSpec;
use diag_isa::prng::SplitMix64;
use diag_serve::{Client, Frame, Submit};
use diag_telemetry::{Histogram, HistogramSnapshot};
use diag_workloads::Scale;

const USAGE: &str = "usage: diag-load --addr HOST:PORT [--conns N] [--inflight M] \
                     [--requests K] [--seed S] [--machine SPEC|mix] \
                     [--workloads a,b,c] [--scale tiny|small|full] [--expect-warm] \
                     [--allow-reject] [--shutdown]";

const SPEC: CliSpec = CliSpec {
    cmd: "diag-load",
    flags: &[Flag::Scale],
    extras: &[
        Extra {
            name: "--addr",
            takes_value: true,
        },
        Extra {
            name: "--conns",
            takes_value: true,
        },
        Extra {
            name: "--inflight",
            takes_value: true,
        },
        Extra {
            name: "--requests",
            takes_value: true,
        },
        Extra {
            name: "--seed",
            takes_value: true,
        },
        Extra {
            name: "--machine",
            takes_value: true,
        },
        Extra {
            name: "--workloads",
            takes_value: true,
        },
        Extra {
            name: "--expect-warm",
            takes_value: false,
        },
        Extra {
            name: "--allow-reject",
            takes_value: false,
        },
        Extra {
            name: "--shutdown",
            takes_value: false,
        },
    ],
    default_scale: Scale::Tiny,
};

fn fail(message: &str) -> ExitCode {
    eprintln!("diag-load: {message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// What one connection observed.
#[derive(Default)]
struct ConnReport {
    ok: u64,
    errors: u64,
    rejects: u64,
    warm_violations: u64,
    cache_hits: u64,
    cache_builds: u64,
    run_hits: u64,
    run_builds: u64,
    latency: Histogram,
    /// First few problem frames, verbatim, for the failure report.
    samples: Vec<String>,
}

struct Plan {
    addr: String,
    requests: u64,
    inflight: u64,
    seed: u64,
    workloads: Vec<String>,
    machines: Vec<String>,
    scale: Scale,
    expect_warm: bool,
}

fn drive(plan: &Plan, conn_idx: u64) -> std::io::Result<ConnReport> {
    let mut client = Client::connect(&plan.addr)?;
    let mut rng = SplitMix64::seed_from_u64(plan.seed.wrapping_add(conn_idx));
    let mut report = ConnReport::default();
    let mut sent: HashMap<u64, Instant> = HashMap::new();
    let mut next: u64 = 0;
    let mut done: u64 = 0;
    while done < plan.requests {
        while next < plan.requests && next - done < plan.inflight {
            let workload = &plan.workloads[rng.gen_range(0..plan.workloads.len())];
            let machine = &plan.machines[rng.gen_range(0..plan.machines.len())];
            let mut submit = Submit::new(next, workload, machine);
            submit.scale = scale_name(plan.scale).to_string();
            client.submit(&submit)?;
            sent.insert(next, Instant::now());
            next += 1;
        }
        let Some(frame) = client.recv()? else {
            return Err(std::io::Error::other(format!(
                "server closed with {} submissions outstanding",
                next - done
            )));
        };
        let seq = frame.seq();
        match frame.kind() {
            "result" => {
                done += 1;
                if let Some(t0) = seq.and_then(|s| sent.remove(&s)) {
                    report.latency.record(t0.elapsed().as_nanos() as u64);
                }
                let hits = frame.cache_hits().unwrap_or(0);
                let builds = frame.cache_builds().unwrap_or(0);
                let run_builds = frame.run_builds().unwrap_or(0);
                report.cache_hits += hits;
                report.cache_builds += builds;
                report.run_hits += frame.run_hits().unwrap_or(0);
                report.run_builds += run_builds;
                if frame.ok() == Some(true) {
                    report.ok += 1;
                    if plan.expect_warm && (builds != 0 || hits == 0 || run_builds != 0) {
                        report.warm_violations += 1;
                        sample(&mut report.samples, &frame.raw);
                    }
                } else {
                    report.errors += 1;
                    sample(&mut report.samples, &frame.raw);
                }
            }
            "reject" => {
                done += 1;
                seq.and_then(|s| sent.remove(&s));
                report.rejects += 1;
                sample(&mut report.samples, &frame.raw);
            }
            _ => {}
        }
    }
    Ok(report)
}

fn sample(samples: &mut Vec<String>, raw: &str) {
    if samples.len() < 5 {
        samples.push(raw.to_string());
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Scrapes the server's `metrics` verb on a fresh connection.
fn scrape_metrics(addr: &str) -> std::io::Result<Frame> {
    let mut client = Client::connect(addr)?;
    client.send_verb("metrics")?;
    let frame = client
        .recv()?
        .ok_or_else(|| std::io::Error::other("server closed before the metrics frame"))?;
    if frame.kind() != "metrics" {
        return Err(std::io::Error::other(format!(
            "expected a metrics frame, got: {}",
            frame.raw
        )));
    }
    Ok(frame)
}

/// Prints the server-side view next to what this client observed: the
/// two latency distributions share bucket math, so the percentiles are
/// directly comparable.
fn print_server_view(frame: &Frame, scale: Scale, total: &ConnReport, client: &HistogramSnapshot) {
    let hist = |key: &str, field: &str| frame.metric_field("histograms", key, field);
    for verb in ["submit", "status", "metrics", "cancel"] {
        let key = format!("diag_serve_verb_ns{{verb=\"{verb}\"}}");
        let Some(count) = hist(&key, "count").filter(|&c| c > 0) else {
            continue;
        };
        println!(
            "diag-load: server verb {verb}: {count} handled, p50 {:.2}ms p99 {:.2}ms",
            ms(hist(&key, "p50").unwrap_or(0)),
            ms(hist(&key, "p99").unwrap_or(0)),
        );
    }
    let key = format!(
        "diag_serve_first_byte_ns{{scale=\"{}\"}}",
        scale_name(scale)
    );
    println!(
        "diag-load: server first-byte[{}] p50 {:.2}ms p99 {:.2}ms vs client p50 {:.2}ms p99 {:.2}ms",
        scale_name(scale),
        ms(hist(&key, "p50").unwrap_or(0)),
        ms(hist(&key, "p99").unwrap_or(0)),
        ms(client.p50()),
        ms(client.p99()),
    );
    let gauge = |key: &str, field: &str| frame.metric_field("gauges", key, field).unwrap_or(0);
    println!(
        "diag-load: server queue depth high-water {}; run stage {} hits, {} builds \
         (this client saw {} hits, {} builds)",
        gauge("diag_serve_queue_depth", "high_water"),
        gauge("diag_cache_stage_hits{stage=\"runs\"}", "value"),
        gauge("diag_cache_stage_builds{stage=\"runs\"}", "value"),
        total.run_hits,
        total.run_builds,
    );
}

fn shutdown(addr: &str) -> ExitCode {
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => return fail(&format!("connect {addr}: {e}")),
    };
    if let Err(e) = client.send_verb("shutdown") {
        return fail(&format!("send shutdown: {e}"));
    }
    match client.recv() {
        Ok(Some(frame)) => {
            println!("{}", frame.raw);
            ExitCode::SUCCESS
        }
        Ok(None) => fail("server closed before acknowledging shutdown"),
        Err(e) => fail(&format!("read shutdown ack: {e}")),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match cli::parse(&SPEC, &argv) {
        Ok(args) => args,
        Err(e) => return fail(&e),
    };
    let Some(addr) = args.value("--addr") else {
        return fail("--addr is required");
    };
    if args.has("--shutdown") {
        return shutdown(addr);
    }
    let num = |flag: &str, default: u64| -> Result<u64, String> {
        match args.value(flag) {
            None => Ok(default),
            Some(v) => v
                .parse::<u64>()
                .map_err(|_| format!("{flag} needs a non-negative integer, got `{v}`")),
        }
    };
    let (conns, inflight, requests, seed) = match (|| {
        Ok::<_, String>((
            num("--conns", 2)?.max(1),
            num("--inflight", 4)?.max(1),
            num("--requests", 16)?,
            num("--seed", 1)?,
        ))
    })() {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let machines: Vec<String> = match args.value("--machine").unwrap_or("mix") {
        "mix" => ["diag", "ooo", "inorder"]
            .iter()
            .map(|m| m.to_string())
            .collect(),
        spec => match MachineSpec::parse(spec) {
            Ok(parsed) => vec![parsed.render()],
            Err(e) => return fail(&format!("--machine {spec}: {e}")),
        },
    };
    let workloads: Vec<String> = args
        .value("--workloads")
        .unwrap_or("bfs,hotspot,nn,mcf")
        .split(',')
        .map(|w| w.trim().to_string())
        .filter(|w| !w.is_empty())
        .collect();
    if workloads.is_empty() {
        return fail("--workloads needs at least one name");
    }
    let plan = Plan {
        addr: addr.to_string(),
        requests,
        inflight,
        seed,
        workloads,
        machines,
        scale: args.scale,
        expect_warm: args.has("--expect-warm"),
    };
    let t0 = Instant::now();
    let reports: Vec<std::io::Result<ConnReport>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let plan = &plan;
                scope.spawn(move || drive(plan, c))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(std::io::Error::other("connection thread panicked")))
            })
            .collect()
    });
    let elapsed = t0.elapsed();

    let mut total = ConnReport::default();
    let mut latency = HistogramSnapshot::default();
    let mut io_errors = 0u64;
    for report in reports {
        match report {
            Ok(r) => {
                total.ok += r.ok;
                total.errors += r.errors;
                total.rejects += r.rejects;
                total.warm_violations += r.warm_violations;
                total.cache_hits += r.cache_hits;
                total.cache_builds += r.cache_builds;
                total.run_hits += r.run_hits;
                total.run_builds += r.run_builds;
                latency.merge(&r.latency.snapshot());
                for s in r.samples {
                    sample(&mut total.samples, &s);
                }
            }
            Err(e) => {
                io_errors += 1;
                eprintln!("diag-load: connection failed: {e}");
            }
        }
    }
    let results = total.ok + total.errors;
    let secs = elapsed.as_secs_f64().max(1e-9);
    println!(
        "diag-load: {results} results ({} ok, {} errors, {} rejects{}) in {secs:.3}s; \
         {:.1} req/s; latency p50 {:.2}ms p99 {:.2}ms; cache {} hits, {} builds; \
         runs {} hits, {} builds",
        total.ok,
        total.errors,
        total.rejects,
        if plan.expect_warm {
            format!(", {} warm violations", total.warm_violations)
        } else {
            String::new()
        },
        results as f64 / secs,
        ms(latency.p50()),
        ms(latency.p99()),
        total.cache_hits,
        total.cache_builds,
        total.run_hits,
        total.run_builds,
    );
    for s in &total.samples {
        eprintln!("diag-load: problem frame: {s}");
    }
    if plan.expect_warm {
        match scrape_metrics(addr) {
            Ok(frame) => print_server_view(&frame, plan.scale, &total, &latency),
            Err(e) => eprintln!("diag-load: metrics scrape failed: {e}"),
        }
    }
    let rejects_fatal = total.rejects > 0 && !args.has("--allow-reject");
    if total.errors > 0 || rejects_fatal || total.warm_violations > 0 || io_errors > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
