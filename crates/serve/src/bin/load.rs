//! The `diag-load` load generator: a closed-loop client for `diag-serve`.
//!
//! ```text
//! diag-load --addr HOST:PORT [--conns N] [--inflight M] [--requests K]
//!           [--seed S] [--machine SPEC|mix]
//!           [--workloads a,b,c] [--scale tiny|small|full]
//!           [--expect-warm] [--allow-reject] [--shutdown]
//! ```
//!
//! `--machine` takes any spec in the canonical grammar
//! (`diag[:preset][+k=v,...]`, `ooo[:cores]`, `inorder`) or `mix` for a
//! rotation over the three default machines.
//!
//! Opens `--conns` connections, each keeping up to `--inflight`
//! submissions outstanding until `--requests` per connection have
//! completed (closed loop). The workload/machine mix is drawn from a
//! SplitMix64 stream seeded with `--seed` + the connection index, so a
//! repeated invocation submits the identical request set — which is what
//! lets a second burst assert warm-cache behaviour with `--expect-warm`
//! (every result must report `builds == 0`, `hits ≥ 1`, and zero
//! run-stage builds: nothing simulated).
//!
//! Prints one summary line (req/s, latency p50/p99, cache totals) and
//! exits nonzero on any error frame, any reject (unless
//! `--allow-reject`), or any warm violation. `--shutdown` instead sends
//! the shutdown verb and exits.

use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Instant;

use diag_bench::cli::{self, CliSpec, Extra, Flag};
use diag_bench::hostbench::scale_name;
use diag_bench::runner::MachineSpec;
use diag_isa::prng::SplitMix64;
use diag_serve::{Client, Submit};
use diag_workloads::Scale;

const USAGE: &str = "usage: diag-load --addr HOST:PORT [--conns N] [--inflight M] \
                     [--requests K] [--seed S] [--machine SPEC|mix] \
                     [--workloads a,b,c] [--scale tiny|small|full] [--expect-warm] \
                     [--allow-reject] [--shutdown]";

const SPEC: CliSpec = CliSpec {
    cmd: "diag-load",
    flags: &[Flag::Scale],
    extras: &[
        Extra {
            name: "--addr",
            takes_value: true,
        },
        Extra {
            name: "--conns",
            takes_value: true,
        },
        Extra {
            name: "--inflight",
            takes_value: true,
        },
        Extra {
            name: "--requests",
            takes_value: true,
        },
        Extra {
            name: "--seed",
            takes_value: true,
        },
        Extra {
            name: "--machine",
            takes_value: true,
        },
        Extra {
            name: "--workloads",
            takes_value: true,
        },
        Extra {
            name: "--expect-warm",
            takes_value: false,
        },
        Extra {
            name: "--allow-reject",
            takes_value: false,
        },
        Extra {
            name: "--shutdown",
            takes_value: false,
        },
    ],
    default_scale: Scale::Tiny,
};

fn fail(message: &str) -> ExitCode {
    eprintln!("diag-load: {message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// What one connection observed.
#[derive(Default)]
struct ConnReport {
    ok: u64,
    errors: u64,
    rejects: u64,
    warm_violations: u64,
    cache_hits: u64,
    cache_builds: u64,
    run_hits: u64,
    run_builds: u64,
    latencies_ns: Vec<u64>,
    /// First few problem frames, verbatim, for the failure report.
    samples: Vec<String>,
}

struct Plan {
    addr: String,
    requests: u64,
    inflight: u64,
    seed: u64,
    workloads: Vec<String>,
    machines: Vec<String>,
    scale: Scale,
    expect_warm: bool,
}

fn drive(plan: &Plan, conn_idx: u64) -> std::io::Result<ConnReport> {
    let mut client = Client::connect(&plan.addr)?;
    let mut rng = SplitMix64::seed_from_u64(plan.seed.wrapping_add(conn_idx));
    let mut report = ConnReport::default();
    let mut sent: HashMap<u64, Instant> = HashMap::new();
    let mut next: u64 = 0;
    let mut done: u64 = 0;
    while done < plan.requests {
        while next < plan.requests && next - done < plan.inflight {
            let workload = &plan.workloads[rng.gen_range(0..plan.workloads.len())];
            let machine = &plan.machines[rng.gen_range(0..plan.machines.len())];
            let mut submit = Submit::new(next, workload, machine);
            submit.scale = scale_name(plan.scale).to_string();
            client.submit(&submit)?;
            sent.insert(next, Instant::now());
            next += 1;
        }
        let Some(frame) = client.recv()? else {
            return Err(std::io::Error::other(format!(
                "server closed with {} submissions outstanding",
                next - done
            )));
        };
        let seq = frame.seq();
        match frame.kind() {
            "result" => {
                done += 1;
                if let Some(t0) = seq.and_then(|s| sent.remove(&s)) {
                    report.latencies_ns.push(t0.elapsed().as_nanos() as u64);
                }
                let hits = frame.cache_hits().unwrap_or(0);
                let builds = frame.cache_builds().unwrap_or(0);
                let run_builds = frame.run_builds().unwrap_or(0);
                report.cache_hits += hits;
                report.cache_builds += builds;
                report.run_hits += frame.run_hits().unwrap_or(0);
                report.run_builds += run_builds;
                if frame.ok() == Some(true) {
                    report.ok += 1;
                    if plan.expect_warm && (builds != 0 || hits == 0 || run_builds != 0) {
                        report.warm_violations += 1;
                        sample(&mut report.samples, &frame.raw);
                    }
                } else {
                    report.errors += 1;
                    sample(&mut report.samples, &frame.raw);
                }
            }
            "reject" => {
                done += 1;
                seq.and_then(|s| sent.remove(&s));
                report.rejects += 1;
                sample(&mut report.samples, &frame.raw);
            }
            _ => {}
        }
    }
    Ok(report)
}

fn sample(samples: &mut Vec<String>, raw: &str) {
    if samples.len() < 5 {
        samples.push(raw.to_string());
    }
}

fn percentile_ms(sorted_ns: &[u64], pct: u64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as u64 - 1) * pct / 100) as usize;
    sorted_ns[idx] as f64 / 1e6
}

fn shutdown(addr: &str) -> ExitCode {
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => return fail(&format!("connect {addr}: {e}")),
    };
    if let Err(e) = client.send_verb("shutdown") {
        return fail(&format!("send shutdown: {e}"));
    }
    match client.recv() {
        Ok(Some(frame)) => {
            println!("{}", frame.raw);
            ExitCode::SUCCESS
        }
        Ok(None) => fail("server closed before acknowledging shutdown"),
        Err(e) => fail(&format!("read shutdown ack: {e}")),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match cli::parse(&SPEC, &argv) {
        Ok(args) => args,
        Err(e) => return fail(&e),
    };
    let Some(addr) = args.value("--addr") else {
        return fail("--addr is required");
    };
    if args.has("--shutdown") {
        return shutdown(addr);
    }
    let num = |flag: &str, default: u64| -> Result<u64, String> {
        match args.value(flag) {
            None => Ok(default),
            Some(v) => v
                .parse::<u64>()
                .map_err(|_| format!("{flag} needs a non-negative integer, got `{v}`")),
        }
    };
    let (conns, inflight, requests, seed) = match (|| {
        Ok::<_, String>((
            num("--conns", 2)?.max(1),
            num("--inflight", 4)?.max(1),
            num("--requests", 16)?,
            num("--seed", 1)?,
        ))
    })() {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let machines: Vec<String> = match args.value("--machine").unwrap_or("mix") {
        "mix" => ["diag", "ooo", "inorder"]
            .iter()
            .map(|m| m.to_string())
            .collect(),
        spec => match MachineSpec::parse(spec) {
            Ok(parsed) => vec![parsed.render()],
            Err(e) => return fail(&format!("--machine {spec}: {e}")),
        },
    };
    let workloads: Vec<String> = args
        .value("--workloads")
        .unwrap_or("bfs,hotspot,nn,mcf")
        .split(',')
        .map(|w| w.trim().to_string())
        .filter(|w| !w.is_empty())
        .collect();
    if workloads.is_empty() {
        return fail("--workloads needs at least one name");
    }
    let plan = Plan {
        addr: addr.to_string(),
        requests,
        inflight,
        seed,
        workloads,
        machines,
        scale: args.scale,
        expect_warm: args.has("--expect-warm"),
    };
    let t0 = Instant::now();
    let reports: Vec<std::io::Result<ConnReport>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let plan = &plan;
                scope.spawn(move || drive(plan, c))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(std::io::Error::other("connection thread panicked")))
            })
            .collect()
    });
    let elapsed = t0.elapsed();

    let mut total = ConnReport::default();
    let mut io_errors = 0u64;
    for report in reports {
        match report {
            Ok(r) => {
                total.ok += r.ok;
                total.errors += r.errors;
                total.rejects += r.rejects;
                total.warm_violations += r.warm_violations;
                total.cache_hits += r.cache_hits;
                total.cache_builds += r.cache_builds;
                total.run_hits += r.run_hits;
                total.run_builds += r.run_builds;
                total.latencies_ns.extend(r.latencies_ns);
                for s in r.samples {
                    sample(&mut total.samples, &s);
                }
            }
            Err(e) => {
                io_errors += 1;
                eprintln!("diag-load: connection failed: {e}");
            }
        }
    }
    total.latencies_ns.sort_unstable();
    let results = total.ok + total.errors;
    let secs = elapsed.as_secs_f64().max(1e-9);
    println!(
        "diag-load: {results} results ({} ok, {} errors, {} rejects{}) in {secs:.3}s; \
         {:.1} req/s; latency p50 {:.2}ms p99 {:.2}ms; cache {} hits, {} builds; \
         runs {} hits, {} builds",
        total.ok,
        total.errors,
        total.rejects,
        if plan.expect_warm {
            format!(", {} warm violations", total.warm_violations)
        } else {
            String::new()
        },
        results as f64 / secs,
        percentile_ms(&total.latencies_ns, 50),
        percentile_ms(&total.latencies_ns, 99),
        total.cache_hits,
        total.cache_builds,
        total.run_hits,
        total.run_builds,
    );
    for s in &total.samples {
        eprintln!("diag-load: problem frame: {s}");
    }
    let rejects_fatal = total.rejects > 0 && !args.has("--allow-reject");
    if total.errors > 0 || rejects_fatal || total.warm_violations > 0 || io_errors > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
