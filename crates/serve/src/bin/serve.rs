//! The `diag-serve` binary: a persistent experiment server.
//!
//! ```text
//! diag-serve [--addr HOST:PORT] [--workers N] [--capacity N]
//!            [--quantum N] [--port-file FILE] [--no-cache]
//!            [--cache-dir DIR]
//! ```
//!
//! Binds (port 0 picks an ephemeral port; `--port-file` writes the
//! resolved port for scripts), serves the line-delimited JSON protocol
//! until a client sends `shutdown`, drains the queue, and exits 0.

use std::process::ExitCode;

use diag_bench::cli::{self, CliSpec, Extra};
use diag_bench::sweep::default_jobs;
use diag_serve::{ServeConfig, Server};
use diag_workloads::Scale;

const USAGE: &str = "usage: diag-serve [--addr HOST:PORT] [--workers N] [--capacity N] \
                     [--quantum N] [--port-file FILE] [--no-cache] [--cache-dir DIR]";

const SPEC: CliSpec = CliSpec {
    cmd: "diag-serve",
    flags: &[],
    extras: &[
        Extra {
            name: "--addr",
            takes_value: true,
        },
        Extra {
            name: "--workers",
            takes_value: true,
        },
        Extra {
            name: "--capacity",
            takes_value: true,
        },
        Extra {
            name: "--quantum",
            takes_value: true,
        },
        Extra {
            name: "--port-file",
            takes_value: true,
        },
    ],
    default_scale: Scale::Tiny,
};

fn fail(message: &str) -> ExitCode {
    eprintln!("diag-serve: {message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn parse_count(args: &cli::CommonArgs, flag: &str, default: usize) -> Result<usize, String> {
    match args.value(flag) {
        None => Ok(default),
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("{flag} needs a non-negative integer, got `{v}`")),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match cli::parse(&SPEC, &argv) {
        Ok(args) => args,
        Err(e) => return fail(&e),
    };
    if !args.positionals.is_empty() {
        return fail(&format!("unexpected argument `{}`", args.positionals[0]));
    }
    let workers = match parse_count(&args, "--workers", default_jobs()) {
        Ok(n) => n,
        Err(e) => return fail(&e),
    };
    let capacity = match parse_count(&args, "--capacity", 1024) {
        Ok(n) => n.max(1),
        Err(e) => return fail(&e),
    };
    let quantum = match parse_count(&args, "--quantum", 1) {
        Ok(n) => n.max(1) as u64,
        Err(e) => return fail(&e),
    };
    let config = ServeConfig {
        addr: args.value("--addr").unwrap_or("127.0.0.1:0").to_string(),
        workers,
        capacity,
        quantum,
    };
    let server = match Server::bind(&config, args.session()) {
        Ok(server) => server,
        Err(e) => return fail(&format!("bind {}: {e}", config.addr)),
    };
    let addr = server.local_addr();
    eprintln!(
        "diag-serve: listening on {addr} ({workers} workers, capacity {capacity}, quantum {quantum})"
    );
    if let Some(path) = args.value("--port-file") {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        if let Err(e) = std::fs::write(path, format!("{}\n", addr.port())) {
            return fail(&format!("write {path}: {e}"));
        }
    }
    match server.run() {
        Ok(()) => {
            eprintln!("diag-serve: drained, exiting");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("diag-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
