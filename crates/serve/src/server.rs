//! The `diag-serve` server: admission, scheduling, execution, streaming.
//!
//! ```text
//!                 ┌───────────── Server ─────────────────────────┐
//!  conn 1 ──────► │ reader thread ─┐                             │
//!  conn 2 ──────► │ reader thread ─┼─► FairQueue (bounded, DRR)  │
//!  conn N ──────► │ reader thread ─┘        │ pop                │
//!                 │                ┌────────┴─────────┐          │
//!                 │                │ worker pool      │          │
//!                 │                │ sweep::run_one   │          │
//!                 │                │ (shared Session) │          │
//!                 │                └────────┬─────────┘          │
//!                 │      per-conn ordered flush (BTreeMap)       │
//!                 └───────────────────│─────────────────────────-┘
//!  conn K ◄── JSONL frames, per-client submission order ◄────────┘
//! ```
//!
//! One [`Session`] is shared by every worker, so concurrent requests
//! for the same `(workload, params, machine)` coalesce onto a single
//! preparation through the store's `Arc<OnceLock>` layer — the second
//! request blocks briefly and reports a cache *hit* instead of
//! duplicating an assembly. Each result frame carries the hit/build
//! delta observed around its own run.
//!
//! Results are written back **in per-client submission order**: each
//! accepted submission takes the connection's next order slot, and a
//! completed (or cancelled) job's frame is buffered until every earlier
//! slot has flushed. Control frames (`reject`, `status`, …) bypass the
//! ordering and are written immediately.

use std::collections::{BTreeMap, HashMap};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use diag_bench::hostbench::scale_name;
use diag_bench::runner::MachineSpec;
use diag_bench::sweep::{self, SweepRun};
use diag_core::apply_override;
use diag_pipeline::Session;
use diag_telemetry::{Counter, Gauge, Histogram, Registry};
use diag_workloads::{find, Params, Scale};

use crate::protocol::{
    self, code, parse_request, CacheDelta, Request, StatusSnapshot, SubmitRequest,
};
use crate::queue::{FairQueue, SubmitError, Ticket};

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker-pool size. `0` is allowed (nothing executes — jobs queue
    /// until capacity and further submissions get deterministic `429`s;
    /// used by admission tests).
    pub workers: usize,
    /// Queue admission capacity.
    pub capacity: usize,
    /// Deficit-round-robin quantum (scheduling credit added per visit;
    /// see [`crate::queue`]).
    pub quantum: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: sweep::default_jobs(),
            capacity: 1024,
            quantum: 1,
        }
    }
}

/// Scheduling cost of one submission: larger scales consume more
/// deficit, so a client flooding `full`-scale jobs yields proportionally
/// more service to `tiny`-scale neighbours.
pub fn job_cost(scale: Scale) -> u64 {
    match scale {
        Scale::Tiny => 1,
        Scale::Small => 8,
        Scale::Full => 64,
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Elapsed nanoseconds since `t`, saturating (never panics, never 0ns
/// wraps).
fn ns_since(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX) // lint: allow(unwrap)
}

/// Defers the admission→first-byte measurement of one accepted
/// submission to the moment its frame is actually written: results can
/// wait in the per-connection order buffer behind earlier slots, and
/// that queueing delay is part of what the client experiences.
struct FirstByte {
    admitted: Instant,
    hist: Histogram,
}

impl FirstByte {
    fn observe(self) {
        self.hist.record(ns_since(self.admitted));
    }
}

/// Per-connection write side: the socket plus the in-order result
/// buffer.
struct ConnOut {
    stream: Mutex<TcpStream>,
    pending: Mutex<Pending>,
}

struct Pending {
    /// Next order slot to flush.
    next: u64,
    /// Completed frames waiting on earlier slots, each with its
    /// deferred first-byte measurement (if telemetry wants one).
    ready: BTreeMap<u64, (String, Option<FirstByte>)>,
}

impl ConnOut {
    fn new(stream: TcpStream) -> ConnOut {
        ConnOut {
            stream: Mutex::new(stream),
            pending: Mutex::new(Pending {
                next: 0,
                ready: BTreeMap::new(),
            }),
        }
    }

    /// Writes one frame immediately (control frames). Write errors are
    /// ignored: the client hung up, and its jobs finish harmlessly.
    /// Frame and newline go out in a single write — a split write ends
    /// the line in its own small segment, which Nagle holds back behind
    /// the peer's delayed ACK (~40ms per frame each way).
    fn write_line(&self, frame: &str) {
        let mut line = String::with_capacity(frame.len() + 1);
        line.push_str(frame);
        line.push('\n');
        let mut s = lock(&self.stream);
        let _ = s.write_all(line.as_bytes());
        let _ = s.flush();
    }

    /// Delivers the frame for order slot `order`, flushing every
    /// consecutively-complete slot.
    fn complete(&self, order: u64, frame: String, first_byte: Option<FirstByte>) {
        let mut p = lock(&self.pending);
        p.ready.insert(order, (frame, first_byte));
        while let Some((f, fb)) = {
            let next = p.next;
            p.ready.remove(&next)
        } {
            self.write_line(&f);
            if let Some(fb) = fb {
                fb.observe();
            }
            p.next += 1;
        }
    }
}

/// One admitted job.
struct Job {
    out: Arc<ConnOut>,
    seq: u64,
    order: u64,
    run: SweepRun,
    /// The request's machine string, echoed verbatim on the frame.
    machine_key: String,
    /// The canonical rendering of the fully-resolved spec (machine +
    /// config overrides), also echoed on the frame.
    spec_render: String,
    /// When admission succeeded — the zero point of the request's
    /// queue-wait and first-byte latency spans.
    admitted: Instant,
}

/// The request verbs, in wire order, labelling the per-verb counter and
/// latency families.
const VERBS: [&str; 5] = ["submit", "status", "metrics", "cancel", "shutdown"];

/// Index into the per-verb telemetry arrays.
fn verb_idx(req: &Request) -> usize {
    match req {
        Request::Submit(_) => 0,
        Request::Status => 1,
        Request::Metrics => 2,
        Request::Cancel { .. } => 3,
        Request::Shutdown => 4,
    }
}

/// The input scales, in ascending cost order, labelling the per-scale
/// lifecycle histograms.
const SCALES: [Scale; 3] = [Scale::Tiny, Scale::Small, Scale::Full];

/// Index into the per-scale telemetry arrays.
fn scale_idx(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 0,
        Scale::Small => 1,
        Scale::Full => 2,
    }
}

/// Pre-registered telemetry handles for every serve-side fact. The hot
/// paths (admission, worker loop, flush) index straight into these
/// arrays and never touch the registry mutex.
struct ServeMetrics {
    submitted: Counter,
    completed: Counter,
    errors: Counter,
    cancelled: Counter,
    /// Admission rejections by code, in `400`/`404`/`429`/`503` order
    /// (see [`reject_idx`]); the status frame reports their sum.
    rejected: [Counter; 4],
    running: Gauge,
    verb_requests: [Counter; 5],
    verb_ns: [Histogram; 5],
    queue_wait_ns: [Histogram; 3],
    execute_ns: [Histogram; 3],
    first_byte_ns: [Histogram; 3],
    run_ns_per_instr: Histogram,
}

/// Index into [`ServeMetrics::rejected`] for an admission-failure code.
fn reject_idx(code: u16) -> usize {
    match code {
        code::BAD_REQUEST => 0,
        code::NOT_FOUND => 1,
        code::QUEUE_FULL => 2,
        _ => 3,
    }
}

impl ServeMetrics {
    fn new(registry: &Registry) -> ServeMetrics {
        let per_scale =
            |name: &str| SCALES.map(|s| registry.histogram(name, &[("scale", scale_name(s))]));
        ServeMetrics {
            submitted: registry.counter("diag_serve_submitted_total", &[]),
            completed: registry.counter("diag_serve_completed_total", &[]),
            errors: registry.counter("diag_serve_errors_total", &[]),
            cancelled: registry.counter("diag_serve_cancelled_total", &[]),
            rejected: ["400", "404", "429", "503"]
                .map(|c| registry.counter("diag_serve_rejected_total", &[("code", c)])),
            running: registry.gauge("diag_serve_running", &[]),
            verb_requests: VERBS
                .map(|v| registry.counter("diag_serve_requests_total", &[("verb", v)])),
            verb_ns: VERBS.map(|v| registry.histogram("diag_serve_verb_ns", &[("verb", v)])),
            queue_wait_ns: per_scale("diag_serve_queue_wait_ns"),
            execute_ns: per_scale("diag_serve_execute_ns"),
            first_byte_ns: per_scale("diag_serve_first_byte_ns"),
            run_ns_per_instr: registry.histogram("diag_serve_run_ns_per_instr", &[]),
        }
    }

    fn reject(&self, code: u16) {
        self.rejected[reject_idx(code)].inc();
    }

    fn rejected_total(&self) -> u64 {
        self.rejected.iter().map(Counter::get).sum()
    }
}

struct Shared {
    session: Session,
    queue: FairQueue<Job>,
    addr: SocketAddr,
    workers: usize,
    capacity: usize,
    registry: Registry,
    metrics: ServeMetrics,
    conn_seq: AtomicU64,
}

impl Shared {
    fn snapshot(&self) -> StatusSnapshot {
        let m = &self.metrics;
        let mut host = diag_bench::hostmeta::host_entries().to_vec();
        host.extend(diag_bench::hostmeta::cache_entries(
            &self.session.counters(),
        ));
        StatusSnapshot {
            queued: self.queue.len(),
            running: m.running.get(),
            workers: self.workers,
            capacity: self.capacity,
            submitted: m.submitted.get(),
            completed: m.completed.get(),
            errors: m.errors.get(),
            rejected: m.rejected_total(),
            cancelled: m.cancelled.get(),
            host: diag_bench::hostmeta::render_host_object(&host),
        }
    }
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `config.addr` and prepares the shared state. `session` is
    /// the artifact store every worker executes through — pass a
    /// disk-backed one for cross-restart warm starts.
    ///
    /// # Errors
    ///
    /// Propagates the socket bind failure.
    pub fn bind(config: &ServeConfig, session: Session) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let registry = Registry::new();
        let metrics = ServeMetrics::new(&registry);
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                session,
                queue: FairQueue::new(config.capacity.max(1), config.quantum)
                    .with_metrics(&registry),
                addr,
                workers: config.workers,
                capacity: config.capacity.max(1),
                registry,
                metrics,
                conn_seq: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Serves until a client sends `shutdown`, then drains: no new
    /// admissions, queued jobs finish, workers join, and `run` returns.
    ///
    /// # Errors
    ///
    /// Propagates worker-thread spawn failures; per-connection I/O
    /// errors only terminate their connection.
    pub fn run(self) -> io::Result<()> {
        let mut workers = Vec::new();
        for i in 0..self.shared.workers {
            let shared = Arc::clone(&self.shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("diag-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        for stream in self.listener.incoming() {
            if self.shared.queue.is_draining() {
                break;
            }
            let Ok(stream) = stream else { continue };
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || handle_conn(&shared, stream));
        }
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }

    /// Runs the server on a background thread — the in-process harness
    /// tests use this; the binary calls [`Server::run`] directly.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        ServerHandle {
            addr,
            thread: std::thread::spawn(move || self.run()),
        }
    }
}

/// Handle to a [`Server::spawn`]ed server.
pub struct ServerHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to drain and exit.
    ///
    /// # Errors
    ///
    /// Returns the server's I/O error, or an `Other` error if the
    /// server thread panicked.
    pub fn join(self) -> io::Result<()> {
        self.thread
            .join()
            .map_err(|_| io::Error::other("server thread panicked"))?
    }
}

/// Worker loop: pop, execute through the shared session, deliver. The
/// cache delta around the run attributes hits/builds to this request
/// (exact at one worker; under concurrency a neighbour's counter bumps
/// can land in the window, which is why the warm-burst CI assertion is
/// `builds == 0`, not an exact hit count).
fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        let m = &shared.metrics;
        let si = scale_idx(job.run.params.scale);
        m.queue_wait_ns[si].record(ns_since(job.admitted));
        m.running.inc();
        let before = shared.session.counters();
        let t0 = Instant::now();
        let result = sweep::run_one(&shared.session, &job.run);
        let host_ns = ns_since(t0).max(1);
        m.execute_ns[si].record(host_ns);
        let after = shared.session.counters();
        let cache = CacheDelta {
            hits: after.hits().saturating_sub(before.hits()),
            builds: after.builds().saturating_sub(before.builds()),
            run_hits: after.runs.hits.saturating_sub(before.runs.hits),
            run_builds: after.runs.builds.saturating_sub(before.runs.builds),
        };
        let workload = job.run.spec.name;
        let frame = match &result {
            Ok(stats) => {
                m.completed.inc();
                // Guest work bought per host nanosecond — the ROADMAP
                // item-1 gap (host ns/instr) measured per request.
                m.run_ns_per_instr.record(host_ns / stats.committed.max(1));
                protocol::result_frame(
                    job.seq,
                    workload,
                    &job.machine_key,
                    &job.spec_render,
                    stats,
                    cache,
                    host_ns,
                )
            }
            Err(e) => {
                m.errors.inc();
                protocol::error_frame(
                    job.seq,
                    workload,
                    &job.machine_key,
                    &job.spec_render,
                    e,
                    cache,
                    host_ns,
                )
            }
        };
        let first_byte = FirstByte {
            admitted: job.admitted,
            hist: m.first_byte_ns[si].clone(),
        };
        job.out.complete(job.order, frame, Some(first_byte));
        m.running.dec();
    }
}

/// Validates a submission and builds its [`SweepRun`] plus the two
/// strings the result frame echoes (request machine text, canonical
/// spec). Every failure is a typed `4xx` reject — a malformed machine
/// spec or configuration override never panics a worker or drops the
/// connection.
fn plan_submit(req: &SubmitRequest) -> Result<(SweepRun, String, String), (u16, String)> {
    let Some(spec) = find(&req.workload) else {
        return Err((
            code::NOT_FOUND,
            format!("unknown workload `{}`", req.workload),
        ));
    };
    let mut machine = MachineSpec::parse(&req.machine)
        .map_err(|e| (code::BAD_REQUEST, format!("machine `{}`: {e}", req.machine)))?;
    if !req.config.is_empty() || req.max_cycles.is_some() {
        let MachineSpec::Diag(cfg) = &mut machine else {
            return Err((
                code::BAD_REQUEST,
                "config overrides only apply to machine `diag`".to_string(),
            ));
        };
        // The alias first, then the config object: an explicit
        // `config.max_cycles` wins over the legacy top-level field.
        if let Some(max_cycles) = req.max_cycles {
            cfg.max_cycles = max_cycles;
        }
        for (key, value) in &req.config {
            apply_override(cfg, key, value)
                .map_err(|e| (code::BAD_REQUEST, format!("config: {e}")))?;
        }
        cfg.validate()
            .map_err(|e| (code::BAD_REQUEST, format!("config: {e}")))?;
    }
    let spec_render = machine.render();
    // Same construction as the harness CLI: the seed is fixed, so a
    // wire request and a `harness` invocation of the same spec run the
    // identical simulation.
    let params = Params::small()
        .with_scale(req.scale)
        .with_threads(req.threads)
        .with_simt(req.simt);
    Ok((
        SweepRun {
            machine,
            spec,
            params,
        },
        req.machine.clone(),
        spec_render,
    ))
}

/// One connection's reader loop: parse, admit, answer control verbs.
fn handle_conn(shared: &Shared, stream: TcpStream) {
    let conn = shared.conn_seq.fetch_add(1, Ordering::Relaxed) + 1;
    // Frames are single sub-MSS writes; without NODELAY, Nagle queues
    // each one behind the client's delayed ACK and every round trip
    // costs tens of milliseconds.
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let out = Arc::new(ConnOut::new(write_half));
    out.write_line(&protocol::hello_frame(conn));
    let default_client = format!("conn{conn}");
    // Order slots are allocated only on successful admission, so
    // rejects never leave a hole in the result stream.
    let mut next_order: u64 = 0;
    let mut tickets: HashMap<u64, Ticket> = HashMap::new();
    for line in BufReader::new(stream).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let req = match parse_request(&line) {
            Err(message) => {
                out.write_line(&protocol::protocol_error_frame(&message));
                continue;
            }
            Ok(req) => req,
        };
        let vi = verb_idx(&req);
        shared.metrics.verb_requests[vi].inc();
        let timer = shared.registry.span();
        let stop = matches!(req, Request::Shutdown);
        match req {
            Request::Submit(req) => match plan_submit(&req) {
                Ok((run, machine_key, spec_render)) => {
                    let cost = job_cost(req.scale);
                    let client = req.client.as_deref().unwrap_or(&default_client);
                    let job = Job {
                        out: Arc::clone(&out),
                        seq: req.seq,
                        order: next_order,
                        run,
                        machine_key,
                        spec_render,
                        admitted: Instant::now(),
                    };
                    match shared.queue.submit(client, cost, job) {
                        Ok(ticket) => {
                            next_order += 1;
                            tickets.insert(req.seq, ticket);
                            shared.metrics.submitted.inc();
                        }
                        Err(SubmitError::Full) => {
                            shared.metrics.reject(code::QUEUE_FULL);
                            out.write_line(&protocol::reject_frame(
                                Some(req.seq),
                                code::QUEUE_FULL,
                                "queue full",
                            ));
                        }
                        Err(SubmitError::Draining) => {
                            shared.metrics.reject(code::DRAINING);
                            out.write_line(&protocol::reject_frame(
                                Some(req.seq),
                                code::DRAINING,
                                "server is draining",
                            ));
                        }
                    }
                }
                Err((code, message)) => {
                    shared.metrics.reject(code);
                    out.write_line(&protocol::reject_frame(Some(req.seq), code, &message));
                }
            },
            Request::Cancel { seq } => {
                let hit = tickets
                    .remove(&seq)
                    .and_then(|ticket| shared.queue.cancel(ticket));
                match hit {
                    Some(job) => {
                        shared.metrics.cancelled.inc();
                        // The cancelled frame takes the job's order slot
                        // so later results still flush in order.
                        job.out
                            .complete(job.order, protocol::cancelled_frame(seq, true), None);
                    }
                    None => out.write_line(&protocol::cancelled_frame(seq, false)),
                }
            }
            Request::Status => out.write_line(&protocol::status_frame(&shared.snapshot())),
            Request::Metrics => {
                // Pull-model export: refresh the session's cache gauges
                // into the registry, then snapshot everything at once so
                // both expositions describe the same instant.
                shared.session.export_telemetry(&shared.registry);
                let snap = shared.registry.snapshot();
                out.write_line(&protocol::metrics_frame(&snap.to_text(), &snap.to_json()));
            }
            Request::Shutdown => {
                shared.queue.drain();
                out.write_line(&protocol::shutdown_frame(shared.queue.len()));
                // Unblock the accept loop so `run` can notice the drain.
                let _ = TcpStream::connect(shared.addr);
            }
        }
        timer.finish(&shared.metrics.verb_ns[vi]);
        if stop {
            break;
        }
    }
}
