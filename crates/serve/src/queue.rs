//! A bounded, fair, multi-producer multi-consumer job queue.
//!
//! [`FairQueue`] is the admission and scheduling core of `diag-serve`:
//!
//! - **Bounded admission** — [`FairQueue::submit`] never blocks. When the
//!   queue holds `capacity` jobs the submission is refused with
//!   [`SubmitError::Full`] so a flooding client turns into immediate
//!   `429` frames instead of unbounded server memory growth.
//! - **Per-client fairness** — jobs are grouped into per-client FIFO
//!   lanes and workers pop across lanes by **deficit round-robin**: each
//!   visit tops a lane's deficit up by `quantum`, and the lane may
//!   dispatch jobs while its deficit covers their cost. A client that
//!   floods 10k jobs gets the same service share as one that submits 10
//!   — the small client's last job completes within a bounded number of
//!   large-client completions (see the `drr_bounds_small_client` test).
//! - **Cancellation** — a still-queued job can be removed by its
//!   [`Ticket`]; running jobs are not interrupted (simulations are
//!   not preemptible).
//! - **Graceful drain** — [`FairQueue::drain`] stops admission
//!   ([`SubmitError::Draining`]) while letting workers pop until the
//!   queue is empty, after which [`FairQueue::pop`] returns `None` and
//!   workers exit.
//!
//! The queue is deliberately generic over the job payload so the
//! scheduling policy is testable with synthetic jobs (no simulations) —
//! the 1000-vs-10 fairness bound runs in microseconds.
//!
//! With [`FairQueue::with_metrics`] the queue additionally keeps a
//! depth gauge (and its high-water mark) exactly in sync with
//! [`FairQueue::len`], plus one deficit gauge per client lane. All
//! gauge updates happen under the state mutex, so admission rejections
//! (`429`/`503`) never touch the depth and a cancel decrements it
//! exactly once — properties the accounting tests below pin down
//! across concurrent submit/cancel/drain interleavings.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use diag_telemetry::{Gauge, Registry};

/// Handle to one admitted job, redeemable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket(u64);

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity (`429`).
    Full,
    /// The queue is draining for shutdown (`503`).
    Draining,
}

struct Entry<T> {
    ticket: Ticket,
    cost: u64,
    job: T,
}

struct Lane<T> {
    client: String,
    deficit: u64,
    jobs: VecDeque<Entry<T>>,
    /// Mirror of `deficit` for scrapes, registered lazily at lane
    /// creation when the queue has telemetry attached.
    deficit_gauge: Option<Gauge>,
}

impl<T> Lane<T> {
    /// Every deficit change goes through here so the gauge can never
    /// drift from the scheduling state it mirrors.
    fn set_deficit(&mut self, v: u64) {
        self.deficit = v;
        if let Some(g) = &self.deficit_gauge {
            g.set(v);
        }
    }
}

/// Telemetry handles the queue updates under its own state mutex, so
/// gauge readings are exact (never mid-transition) with respect to
/// `len()` and the per-lane deficits.
struct QueueMetrics {
    registry: Registry,
    depth: Gauge,
}

struct State<T> {
    /// Per-client lanes in first-seen order; the round-robin ring.
    lanes: Vec<Lane<T>>,
    /// Ring cursor: index of the lane the next pop visits first.
    cursor: usize,
    /// Total queued jobs across all lanes.
    len: usize,
    draining: bool,
}

impl<T> State<T> {
    fn lane_mut(&mut self, client: &str, metrics: Option<&QueueMetrics>) -> &mut Lane<T> {
        if let Some(i) = self.lanes.iter().position(|l| l.client == client) {
            return &mut self.lanes[i];
        }
        self.lanes.push(Lane {
            client: client.to_string(),
            deficit: 0,
            jobs: VecDeque::new(),
            deficit_gauge: metrics.map(|m| {
                m.registry
                    .gauge("diag_serve_client_deficit", &[("client", client)])
            }),
        });
        let last = self.lanes.len() - 1;
        &mut self.lanes[last]
    }
}

/// A bounded MPMC queue with deficit-round-robin fairness over client
/// ids. See the module docs for the policy.
pub struct FairQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
    quantum: u64,
    next_ticket: AtomicU64,
    metrics: Option<QueueMetrics>,
}

fn lock_state<'a, T>(m: &'a Mutex<State<T>>) -> MutexGuard<'a, State<T>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<T> FairQueue<T> {
    /// Creates a queue admitting at most `capacity` queued jobs, with a
    /// per-visit deficit top-up of `quantum` (clamped to ≥1).
    pub fn new(capacity: usize, quantum: u64) -> FairQueue<T> {
        FairQueue {
            state: Mutex::new(State {
                lanes: Vec::new(),
                cursor: 0,
                len: 0,
                draining: false,
            }),
            ready: Condvar::new(),
            capacity,
            quantum: quantum.max(1),
            next_ticket: AtomicU64::new(0),
            metrics: None,
        }
    }

    /// Attaches telemetry: a `diag_serve_queue_depth` gauge (with its
    /// high-water mark) kept exactly in sync with [`FairQueue::len`],
    /// and a lazily-registered `diag_serve_client_deficit{client=…}`
    /// gauge per fairness lane. All updates happen under the queue's
    /// state mutex — a scrape never observes a half-applied transition.
    #[must_use]
    pub fn with_metrics(mut self, registry: &Registry) -> FairQueue<T> {
        self.metrics = Some(QueueMetrics {
            registry: registry.clone(),
            depth: registry.gauge("diag_serve_queue_depth", &[]),
        });
        self
    }

    /// Admits one job for `client` with the given scheduling `cost`
    /// (clamped to ≥1; a job costing 2 consumes twice the deficit of a
    /// job costing 1). Never blocks.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] at capacity, [`SubmitError::Draining`]
    /// after [`FairQueue::drain`].
    pub fn submit(&self, client: &str, cost: u64, job: T) -> Result<Ticket, SubmitError> {
        let mut s = lock_state(&self.state);
        if s.draining {
            return Err(SubmitError::Draining);
        }
        if s.len >= self.capacity {
            return Err(SubmitError::Full);
        }
        let ticket = Ticket(self.next_ticket.fetch_add(1, Ordering::Relaxed));
        s.lane_mut(client, self.metrics.as_ref())
            .jobs
            .push_back(Entry {
                ticket,
                cost: cost.max(1),
                job,
            });
        s.len += 1;
        if let Some(m) = &self.metrics {
            m.depth.inc();
        }
        drop(s);
        self.ready.notify_one();
        Ok(ticket)
    }

    /// Removes a still-queued job, returning its payload; `None` if the
    /// ticket already left the queue (dispatched, cancelled, or never
    /// admitted).
    pub fn cancel(&self, ticket: Ticket) -> Option<T> {
        let mut s = lock_state(&self.state);
        for lane in &mut s.lanes {
            if let Some(i) = lane.jobs.iter().position(|e| e.ticket == ticket) {
                let entry = lane.jobs.remove(i)?;
                s.len -= 1;
                // Exactly-once by construction: the entry left the lane
                // under this same lock, so a racing second cancel or a
                // pop cannot see it again.
                if let Some(m) = &self.metrics {
                    m.depth.dec();
                }
                return Some(entry.job);
            }
        }
        None
    }

    /// Blocks until a job is schedulable and returns it, or `None` once
    /// the queue is draining **and** empty (worker shutdown signal).
    pub fn pop(&self) -> Option<T> {
        let mut s = lock_state(&self.state);
        loop {
            if s.len > 0 {
                return Some(self.pop_locked(&mut s));
            }
            if s.draining {
                return None;
            }
            s = self.ready.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// One deficit-round-robin scheduling decision. Caller guarantees
    /// `s.len > 0`, so some lane is non-empty and the ring walk below
    /// terminates: every full lap tops at least that lane's deficit up
    /// by `quantum`, so its head job's (finite) cost is eventually
    /// covered.
    fn pop_locked(&self, s: &mut State<T>) -> T {
        loop {
            let n = s.lanes.len();
            let i = s.cursor % n;
            let quantum = self.quantum;
            let lane = &mut s.lanes[i];
            let Some(head_cost) = lane.jobs.front().map(|e| e.cost) else {
                // Empty lane: forfeit any banked deficit (an idle client
                // must not hoard service credit) and move on.
                lane.set_deficit(0);
                s.cursor = (i + 1) % n;
                continue;
            };
            if lane.deficit < head_cost {
                lane.set_deficit(lane.deficit + quantum);
            }
            if lane.deficit >= head_cost {
                let entry = lane
                    .jobs
                    .pop_front()
                    .unwrap_or_else(|| unreachable!("front() was Some"));
                lane.set_deficit(lane.deficit - entry.cost);
                s.len -= 1;
                if let Some(m) = &self.metrics {
                    m.depth.dec();
                }
                // Advance unless this lane still has banked deficit for
                // its next head — otherwise a quantum ≥ max cost would
                // still round-robin one job per lane per visit.
                let keep = lane
                    .jobs
                    .front()
                    .is_some_and(|next| lane.deficit >= next.cost);
                if !keep {
                    s.cursor = (i + 1) % n;
                }
                return entry.job;
            }
            // Deficit still short after one top-up: next lane.
            s.cursor = (i + 1) % n;
        }
    }

    /// Stops admission and wakes every blocked worker; queued jobs are
    /// still popped until the queue is empty, then [`FairQueue::pop`]
    /// returns `None`.
    pub fn drain(&self) {
        lock_state(&self.state).draining = true;
        self.ready.notify_all();
    }

    /// Jobs currently queued (not yet popped).
    pub fn len(&self) -> usize {
        lock_state(&self.state).len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`FairQueue::drain`] has been called.
    pub fn is_draining(&self) -> bool {
        lock_state(&self.state).draining
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_one_client() {
        let q: FairQueue<u32> = FairQueue::new(16, 1);
        for i in 0..5 {
            q.submit("a", 1, i).unwrap();
        }
        let popped: Vec<u32> = (0..5).map(|_| q.pop().unwrap()).collect();
        assert_eq!(popped, [0, 1, 2, 3, 4]);
    }

    #[test]
    fn capacity_is_enforced() {
        let q: FairQueue<u32> = FairQueue::new(2, 1);
        q.submit("a", 1, 0).unwrap();
        q.submit("a", 1, 1).unwrap();
        assert_eq!(q.submit("a", 1, 2), Err(SubmitError::Full));
        assert_eq!(q.len(), 2);
        q.pop().unwrap();
        q.submit("b", 1, 3).unwrap();
    }

    #[test]
    fn drain_refuses_submissions_and_releases_workers() {
        let q: FairQueue<u32> = FairQueue::new(4, 1);
        q.submit("a", 1, 7).unwrap();
        q.drain();
        assert_eq!(q.submit("a", 1, 8), Err(SubmitError::Draining));
        assert!(q.is_draining());
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn drain_unblocks_a_waiting_worker() {
        let q: Arc<FairQueue<u32>> = Arc::new(FairQueue::new(4, 1));
        let worker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the worker a moment to block on the condvar.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.drain();
        assert_eq!(worker.join().unwrap(), None);
    }

    #[test]
    fn cancel_removes_only_queued_jobs() {
        let q: FairQueue<u32> = FairQueue::new(8, 1);
        let t0 = q.submit("a", 1, 0).unwrap();
        let t1 = q.submit("a", 1, 1).unwrap();
        assert_eq!(q.cancel(t1), Some(1));
        assert_eq!(q.cancel(t1), None, "double cancel");
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.cancel(t0), None, "already dispatched");
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn two_clients_interleave() {
        let q: FairQueue<(&str, u32)> = FairQueue::new(64, 1);
        for i in 0..4 {
            q.submit("a", 1, ("a", i)).unwrap();
        }
        for i in 0..4 {
            q.submit("b", 1, ("b", i)).unwrap();
        }
        let order: Vec<&str> = (0..8).map(|_| q.pop().unwrap().0).collect();
        // Strict alternation with unit costs and unit quantum.
        assert_eq!(order, ["a", "b", "a", "b", "a", "b", "a", "b"]);
    }

    #[test]
    fn drr_bounds_small_client() {
        // The ISSUE's fairness criterion: a 1000-vs-10 submission mix
        // must complete the small client within a bounded number of
        // large-client completions. With unit costs and unit quantum the
        // schedule alternates, so the small client's 10th job leaves the
        // queue within the first 21 pops — far inside the bound.
        let q: FairQueue<&str> = FairQueue::new(2048, 1);
        for _ in 0..1000 {
            q.submit("flood", 1, "flood").unwrap();
        }
        for _ in 0..10 {
            q.submit("small", 1, "small").unwrap();
        }
        let mut small_done = 0;
        let mut pops = 0;
        while small_done < 10 {
            let who = q.pop().unwrap();
            pops += 1;
            if who == "small" {
                small_done += 1;
            }
        }
        assert!(
            pops <= 25,
            "small client finished after {pops} pops (flood ran {})",
            pops - 10
        );
        // The flood still completes.
        let mut rest = 0;
        while !q.is_empty() {
            q.pop().unwrap();
            rest += 1;
        }
        assert_eq!(rest + pops - 10, 1000);
    }

    #[test]
    fn costs_weight_service_share() {
        // Client `heavy` submits cost-4 jobs, `light` cost-1: in any
        // window, light should dispatch ~4 jobs per heavy job.
        let q: FairQueue<&str> = FairQueue::new(256, 1);
        for _ in 0..20 {
            q.submit("heavy", 4, "heavy").unwrap();
        }
        for _ in 0..80 {
            q.submit("light", 1, "light").unwrap();
        }
        let first: Vec<&str> = (0..50).map(|_| q.pop().unwrap()).collect();
        let heavy = first.iter().filter(|w| **w == "heavy").count();
        let light = first.iter().filter(|w| **w == "light").count();
        assert!(
            light >= 3 * heavy,
            "light={light} heavy={heavy}: cost weighting lost"
        );
        while !q.is_empty() {
            q.pop().unwrap();
        }
    }

    #[test]
    fn idle_lane_does_not_bank_deficit() {
        let q: FairQueue<&str> = FairQueue::new(64, 1);
        q.submit("a", 1, "a0").unwrap();
        assert_eq!(q.pop(), Some("a0"));
        // Many scheduling rounds pass with `a` idle; its deficit must
        // not accumulate into a burst later.
        for _ in 0..10 {
            q.submit("b", 1, "b").unwrap();
            q.pop().unwrap();
        }
        for _ in 0..3 {
            q.submit("a", 1, "a").unwrap();
            q.submit("b", 1, "b").unwrap();
        }
        // `a` must not dispatch 3-in-a-row ahead of `b`.
        let order: Vec<&str> = (0..6).map(|_| q.pop().unwrap()).collect();
        let first_three = &order[..3];
        assert!(
            first_three.contains(&"b"),
            "idle lane banked deficit: {order:?}"
        );
    }

    fn depth_of(registry: &Registry) -> u64 {
        registry.gauge("diag_serve_queue_depth", &[]).get()
    }

    #[test]
    fn depth_gauge_tracks_len_and_high_water() {
        let registry = Registry::new();
        let q: FairQueue<u32> = FairQueue::new(8, 1).with_metrics(&registry);
        for i in 0..3 {
            q.submit("a", 1, i).unwrap();
        }
        assert_eq!(depth_of(&registry), 3);
        q.pop().unwrap();
        assert_eq!(depth_of(&registry), 2);
        assert_eq!(depth_of(&registry) as usize, q.len());
        assert_eq!(
            registry.gauge("diag_serve_queue_depth", &[]).high_water(),
            3
        );
    }

    #[test]
    fn cancel_decrements_depth_exactly_once() {
        let registry = Registry::new();
        let q: FairQueue<u32> = FairQueue::new(8, 1).with_metrics(&registry);
        let t0 = q.submit("a", 1, 0).unwrap();
        let t1 = q.submit("a", 1, 1).unwrap();
        assert_eq!(q.cancel(t1), Some(1));
        assert_eq!(depth_of(&registry), 1);
        assert_eq!(q.cancel(t1), None, "double cancel");
        assert_eq!(depth_of(&registry), 1, "double cancel must not decrement");
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.cancel(t0), None, "already dispatched");
        assert_eq!(depth_of(&registry), 0, "cancel of a popped job is a no-op");
    }

    #[test]
    fn rejected_submissions_never_touch_depth() {
        let registry = Registry::new();
        let q: FairQueue<u32> = FairQueue::new(2, 1).with_metrics(&registry);
        q.submit("a", 1, 0).unwrap();
        q.submit("a", 1, 1).unwrap();
        assert_eq!(q.submit("a", 1, 2), Err(SubmitError::Full));
        assert_eq!(depth_of(&registry), 2, "429 must not inflate depth");
        q.drain();
        assert_eq!(q.submit("a", 1, 3), Err(SubmitError::Draining));
        assert_eq!(depth_of(&registry), 2, "503 must not touch depth");
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
        assert_eq!(depth_of(&registry), 0, "drain pops still decrement");
    }

    #[test]
    fn deficit_gauge_mirrors_lane_deficit_deterministically() {
        // One client, cost-3 jobs, quantum 2: the lane is topped up at
        // most once per ring visit, so the first dispatch happens on
        // the second visit (0→2→4) leaving deficit 1, and the second
        // on the next (1→3) leaving 0.
        let registry = Registry::new();
        let q: FairQueue<&str> = FairQueue::new(8, 2).with_metrics(&registry);
        q.submit("solo", 3, "j1").unwrap();
        q.submit("solo", 3, "j2").unwrap();
        let deficit = registry.gauge("diag_serve_client_deficit", &[("client", "solo")]);
        assert_eq!(deficit.get(), 0);
        assert_eq!(q.pop(), Some("j1"));
        assert_eq!(deficit.get(), 1);
        assert_eq!(q.pop(), Some("j2"));
        assert_eq!(deficit.get(), 0);
    }

    #[test]
    fn gauges_stay_exact_across_concurrent_submit_cancel_drain() {
        // The satellite's race criterion: whatever interleaving of
        // submits, cancels, pops, and a drain happens, the depth gauge
        // must equal the true queue length at quiescence, and
        // cancelled + popped must account for every admission.
        let registry = Registry::new();
        let q: Arc<FairQueue<u64>> = Arc::new(FairQueue::new(64, 1).with_metrics(&registry));
        let admitted = Arc::new(AtomicU64::new(0));
        let cancelled = Arc::new(AtomicU64::new(0));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                let admitted = Arc::clone(&admitted);
                let cancelled = Arc::clone(&cancelled);
                std::thread::spawn(move || {
                    let client = format!("c{p}");
                    for i in 0..200u64 {
                        match q.submit(&client, 1 + i % 3, p * 1000 + i) {
                            Ok(ticket) => {
                                admitted.fetch_add(1, Ordering::Relaxed);
                                // Cancel every third admission; half the
                                // time it may already have been popped.
                                if i % 3 == 0 && q.cancel(ticket).is_some() {
                                    cancelled.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Err(_) => std::thread::yield_now(),
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut popped = 0u64;
                    while q.pop().is_some() {
                        popped += 1;
                    }
                    popped
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.drain();
        let popped: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(q.len(), 0);
        assert_eq!(depth_of(&registry), 0, "depth gauge drifted from len");
        assert_eq!(
            popped + cancelled.load(Ordering::Relaxed),
            admitted.load(Ordering::Relaxed),
            "every admission must be popped or cancelled exactly once"
        );
        let high = registry.gauge("diag_serve_queue_depth", &[]).high_water();
        assert!(high >= 1, "some depth was observed");
        assert!(high <= 64, "high water cannot exceed capacity");
    }

    #[test]
    fn concurrent_submit_and_pop() {
        let q: Arc<FairQueue<u64>> = Arc::new(FairQueue::new(4096, 1));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let client = format!("c{p}");
                    for i in 0..100 {
                        while q.submit(&client, 1, p * 1000 + i).is_err() {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.drain();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expect: Vec<u64> = (0..4)
            .flat_map(|p| (0..100).map(move |i| p * 1000 + i))
            .collect();
        assert_eq!(all, expect, "every job popped exactly once");
    }
}
