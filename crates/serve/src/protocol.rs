//! The `diag-serve` wire protocol: line-delimited JSON over TCP.
//!
//! Every request is one JSON object per line; every response is one JSON
//! *frame* per line. Frames are rendered with a fixed key order by the
//! functions in this module, so a request script replayed against a
//! fresh server produces byte-identical response bodies once the one
//! timing field (`host_ns`) is stripped — the same determinism
//! discipline the harness CLI holds to (cold and warm cache runs diff
//! clean).
//!
//! # Request verbs
//!
//! ```text
//! {"verb":"submit","seq":1,"workload":"hotspot","machine":"diag",
//!  "scale":"tiny","threads":1,"simt":false}       queue one experiment
//! {"verb":"status"}                               server + cache counters
//! {"verb":"metrics"}                              full telemetry registry
//! {"verb":"cancel","seq":1}                       drop a still-queued job
//! {"verb":"shutdown"}                             graceful drain + exit
//! ```
//!
//! `seq` is a client-chosen identifier echoed on the job's frames.
//! `machine` is any spec in the canonical machine grammar — the same
//! strings `harness --machine` accepts: `diag[:preset][+key=value,...]`,
//! `ooo[:cores]`, `inorder` (see `diag_core::MachineSpec`); `scale` is
//! `tiny` | `small` | `full`; `threads` defaults to 1 and `simt` to
//! false. `client` optionally names the fairness bucket the job bills to
//! (default: one bucket per connection). `config` (diag only) is an
//! object of configuration overrides applied on top of the parsed
//! machine spec — the same key catalogue as the grammar's `+key=value`
//! form (`{"config":{"clusters":16,"lsu_depth":8}}`); a malformed key,
//! value, or resulting configuration is rejected with a `400` frame,
//! never a dropped connection. `max_cycles` (diag only) is a
//! back-compat alias for `config.max_cycles` — an explicit `config`
//! entry wins over the alias. Overriding the cycle limit remains the
//! supported way to provoke a `sim`-kind error frame on demand.
//!
//! # Response frames
//!
//! - `hello` — sent once on connect: protocol version + connection id.
//! - `result` — one per accepted submission, streamed **in per-client
//!   submission order** as jobs complete. `ok:true` carries the
//!   `RunStats`; `ok:false` carries the [`RunError`] taxonomy
//!   (`build`/`sim`/`verify`/`panicked`). Both echo the canonical
//!   machine spec (`spec`, the fully-resolved
//!   `diag_core::MachineSpec::render` of machine + config), the
//!   per-request artifact-cache attribution (`cache.hits` /
//!   `cache.builds`, plus `cache.run_hits` / `cache.run_builds` for the
//!   run-memoization stage alone — a warm resubmission shows
//!   `run_hits:1, builds:0`), and the host-side service time (`host_ns`,
//!   the one nondeterministic field).
//! - `reject` — immediate admission failure: `429` queue full, `503`
//!   draining, `400` malformed parameters, `404` unknown workload.
//!   Rejected submissions never occupy a result slot.
//! - `error` — protocol-level failure (unparsable line, unknown verb).
//! - `cancelled` — answer to `cancel`; an `ok:true` cancellation is
//!   delivered through the job's result slot to keep ordering exact.
//! - `status`, `shutdown` — control answers, written immediately.
//! - `metrics` — the server's full telemetry registry in both
//!   exposition formats: `text` (Prometheus-style, JSON-escaped) and
//!   `json` (the `diag-telemetry-v1` object, embedded verbatim). Both
//!   are byte-deterministic renderings of the same snapshot.

use diag_bench::runner::RunError;
use diag_sim::RunStats;
use diag_trace::json::{self, Value};
use diag_workloads::Scale;

/// Protocol identifier sent in the `hello` frame and `status` frames.
pub const PROTO: &str = "diag-serve-v1";

/// Admission-failure codes (HTTP-flavored, carried in `reject` frames).
pub mod code {
    /// Malformed or unsupported request parameters.
    pub const BAD_REQUEST: u16 = 400;
    /// Unknown workload name.
    pub const NOT_FOUND: u16 = 404;
    /// The bounded job queue is at capacity.
    pub const QUEUE_FULL: u16 = 429;
    /// The server is draining for shutdown.
    pub const DRAINING: u16 = 503;
}

/// One parsed `submit` request.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// Client-chosen identifier echoed on every frame about this job.
    pub seq: u64,
    /// Fairness bucket override (default: the connection's own bucket).
    pub client: Option<String>,
    /// Workload name (`diag_workloads::find`).
    pub workload: String,
    /// Machine spec in the canonical grammar (`diag[:preset][+k=v,...]`,
    /// `ooo[:cores]`, `inorder`).
    pub machine: String,
    /// Input scale.
    pub scale: Scale,
    /// Hardware threads.
    pub threads: usize,
    /// SIMT-annotated variant.
    pub simt: bool,
    /// Configuration overrides applied on top of the parsed machine spec
    /// (diag only), in key order. Values arrive as JSON numbers, bools,
    /// or strings and funnel through `diag_core::apply_override` —
    /// exactly the grammar's `+key=value` catalogue.
    pub config: Vec<(String, String)>,
    /// Back-compat alias for `config.max_cycles` (an explicit `config`
    /// entry wins).
    pub max_cycles: Option<u64>,
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Queue one experiment.
    Submit(SubmitRequest),
    /// Report queue depth, counters, and host metadata.
    Status,
    /// Report the full telemetry registry (text + JSON expositions).
    Metrics,
    /// Drop a still-queued job by its `seq`.
    Cancel {
        /// The `seq` of the submission to drop.
        seq: u64,
    },
    /// Stop admitting, drain the queue, exit.
    Shutdown,
}

fn req_u64(doc: &Value, key: &str) -> Option<u64> {
    doc.get(key).and_then(Value::as_num).map(|n| n as u64)
}

fn req_bool(doc: &Value, key: &str) -> Option<bool> {
    match doc.get(key) {
        Some(Value::Bool(b)) => Some(*b),
        _ => None,
    }
}

/// Renders one `config` entry's value as the textual form
/// `diag_core::apply_override` expects: integers without a fraction,
/// bools as `true`/`false`, strings verbatim.
fn config_value(key: &str, value: &Value) -> Result<String, String> {
    match value {
        Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 => Ok(format!("{}", *n as u64)),
        Value::Bool(b) => Ok(b.to_string()),
        Value::Str(s) => Ok(s.clone()),
        _ => Err(format!(
            "config entry `{key}` needs an unsigned integer, boolean, or string"
        )),
    }
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a one-line message on invalid JSON, a missing/unknown verb,
/// or missing required fields — the server answers with a `400` frame.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let verb = doc
        .get("verb")
        .and_then(Value::as_str)
        .ok_or("missing `verb`")?;
    match verb {
        "submit" => {
            let seq = req_u64(&doc, "seq").ok_or("submit needs a numeric `seq`")?;
            let workload = doc
                .get("workload")
                .and_then(Value::as_str)
                .ok_or("submit needs a `workload`")?
                .to_string();
            let scale = match doc.get("scale").and_then(Value::as_str).unwrap_or("tiny") {
                "tiny" => Scale::Tiny,
                "small" => Scale::Small,
                "full" => Scale::Full,
                other => return Err(format!("unknown scale `{other}` (tiny|small|full)")),
            };
            let config = match doc.get("config") {
                None => Vec::new(),
                Some(Value::Obj(entries)) => {
                    let mut out = Vec::with_capacity(entries.len());
                    for (key, value) in entries {
                        out.push((key.clone(), config_value(key, value)?));
                    }
                    out
                }
                Some(_) => return Err("`config` must be an object".to_string()),
            };
            Ok(Request::Submit(SubmitRequest {
                seq,
                client: doc
                    .get("client")
                    .and_then(Value::as_str)
                    .map(str::to_string),
                workload,
                machine: doc
                    .get("machine")
                    .and_then(Value::as_str)
                    .unwrap_or("diag")
                    .to_string(),
                scale,
                threads: req_u64(&doc, "threads").unwrap_or(1).max(1) as usize,
                simt: req_bool(&doc, "simt").unwrap_or(false),
                config,
                max_cycles: req_u64(&doc, "max_cycles"),
            }))
        }
        "status" => Ok(Request::Status),
        "metrics" => Ok(Request::Metrics),
        "cancel" => Ok(Request::Cancel {
            seq: req_u64(&doc, "seq").ok_or("cancel needs a numeric `seq`")?,
        }),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown verb `{other}`")),
    }
}

/// Escapes a string for embedding in a JSON frame.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The once-per-connection greeting frame.
pub fn hello_frame(conn: u64) -> String {
    format!("{{\"frame\":\"hello\",\"proto\":\"{PROTO}\",\"conn\":{conn}}}")
}

/// Per-request cache attribution carried on every result frame: the
/// whole-session hit/build delta observed around the run, plus the
/// run-memoization stage's own delta (a warm resubmission of an
/// identical request shows `run_hits >= 1` and `builds == 0` — the
/// simulation never executed).
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheDelta {
    /// All-stage cache hits attributed to this request.
    pub hits: u64,
    /// All-stage cache builds attributed to this request.
    pub builds: u64,
    /// Run-stage memo hits attributed to this request.
    pub run_hits: u64,
    /// Run-stage memo builds (simulations actually executed).
    pub run_builds: u64,
}

impl CacheDelta {
    fn render(&self) -> String {
        format!(
            "{{\"hits\":{},\"builds\":{},\"run_hits\":{},\"run_builds\":{}}}",
            self.hits, self.builds, self.run_hits, self.run_builds
        )
    }
}

/// A successful result frame: the run's [`RunStats`] plus the canonical
/// machine spec, per-request cache attribution, and service time.
pub fn result_frame(
    seq: u64,
    workload: &str,
    machine: &str,
    spec: &str,
    stats: &RunStats,
    cache: CacheDelta,
    host_ns: u64,
) -> String {
    format!(
        "{{\"frame\":\"result\",\"seq\":{seq},\"ok\":true,\
         \"workload\":\"{}\",\"machine\":\"{}\",\"spec\":\"{}\",\
         \"stats\":{{\"cycles\":{},\"committed\":{},\"threads\":{},\"ipc\":{:.4},\
         \"stalls\":{{\"memory\":{},\"control\":{},\"structural\":{}}}}},\
         \"cache\":{},\
         \"host_ns\":{host_ns}}}",
        esc(workload),
        esc(machine),
        esc(spec),
        stats.cycles,
        stats.committed,
        stats.threads,
        stats.ipc(),
        stats.stalls.memory,
        stats.stalls.control,
        stats.stalls.structural,
        cache.render(),
    )
}

/// The `RunError` taxonomy key a failed run reports over the wire.
pub fn error_kind(e: &RunError) -> &'static str {
    match e {
        RunError::Build { .. } => "build",
        RunError::Sim { .. } => "sim",
        RunError::Verify { .. } => "verify",
        RunError::Panicked { .. } => "panicked",
    }
}

/// A failed result frame: the [`RunError`] taxonomy over the wire.
pub fn error_frame(
    seq: u64,
    workload: &str,
    machine: &str,
    spec: &str,
    err: &RunError,
    cache: CacheDelta,
    host_ns: u64,
) -> String {
    format!(
        "{{\"frame\":\"result\",\"seq\":{seq},\"ok\":false,\
         \"workload\":\"{}\",\"machine\":\"{}\",\"spec\":\"{}\",\
         \"error\":{{\"kind\":\"{}\",\"message\":\"{}\"}},\
         \"cache\":{},\
         \"host_ns\":{host_ns}}}",
        esc(workload),
        esc(machine),
        esc(spec),
        error_kind(err),
        esc(&err.to_string()),
        cache.render(),
    )
}

/// An immediate admission rejection (`seq` present when the request
/// carried one).
pub fn reject_frame(seq: Option<u64>, code: u16, message: &str) -> String {
    match seq {
        Some(seq) => format!(
            "{{\"frame\":\"reject\",\"seq\":{seq},\"code\":{code},\"message\":\"{}\"}}",
            esc(message)
        ),
        None => format!(
            "{{\"frame\":\"reject\",\"code\":{code},\"message\":\"{}\"}}",
            esc(message)
        ),
    }
}

/// A protocol-level error frame (unparsable line, unknown verb).
pub fn protocol_error_frame(message: &str) -> String {
    format!(
        "{{\"frame\":\"error\",\"code\":{},\"message\":\"{}\"}}",
        code::BAD_REQUEST,
        esc(message)
    )
}

/// The answer to a `cancel` request.
pub fn cancelled_frame(seq: u64, ok: bool) -> String {
    format!("{{\"frame\":\"cancelled\",\"seq\":{seq},\"ok\":{ok}}}")
}

/// The acknowledgement of a `shutdown` request.
pub fn shutdown_frame(queued: usize) -> String {
    format!("{{\"frame\":\"shutdown\",\"queued\":{queued}}}")
}

/// A `metrics` frame carrying both expositions of one registry
/// snapshot: `text` is the Prometheus-style rendering (JSON-escaped),
/// `json` the `diag-telemetry-v1` object embedded verbatim (it is
/// already fixed-key-order JSON).
pub fn metrics_frame(text: &str, json: &str) -> String {
    format!(
        "{{\"frame\":\"metrics\",\"proto\":\"{PROTO}\",\"text\":\"{}\",\"json\":{json}}}",
        esc(text)
    )
}

/// A point-in-time server snapshot for `status` frames.
#[derive(Debug, Clone, Default)]
pub struct StatusSnapshot {
    /// Jobs waiting in the queue.
    pub queued: usize,
    /// Jobs currently executing on workers.
    pub running: u64,
    /// Worker-pool size.
    pub workers: usize,
    /// Queue admission capacity.
    pub capacity: usize,
    /// Accepted submissions since start.
    pub submitted: u64,
    /// Jobs completed with `ok:true`.
    pub completed: u64,
    /// Jobs completed with `ok:false`.
    pub errors: u64,
    /// Submissions rejected at admission.
    pub rejected: u64,
    /// Jobs cancelled while queued.
    pub cancelled: u64,
    /// Pre-rendered host-metadata JSON object (see
    /// [`diag_bench::hostmeta::render_host_object`]) — the same block
    /// `BENCH_sim.json` carries.
    pub host: String,
}

/// A `status` frame.
pub fn status_frame(s: &StatusSnapshot) -> String {
    format!(
        "{{\"frame\":\"status\",\"proto\":\"{PROTO}\",\
         \"workers\":{},\"capacity\":{},\"queued\":{},\"running\":{},\
         \"submitted\":{},\"completed\":{},\"errors\":{},\"rejected\":{},\
         \"cancelled\":{},\"host\":{}}}",
        s.workers,
        s.capacity,
        s.queued,
        s.running,
        s.submitted,
        s.completed,
        s.errors,
        s.rejected,
        s.cancelled,
        if s.host.is_empty() { "{}" } else { &s.host },
    )
}

/// Replaces every `"host_ns":<digits>` with `"host_ns":0` — the one
/// per-request timing field — so protocol transcripts can be compared
/// byte-for-byte across runs.
pub fn strip_timing(frames: &str) -> String {
    const FIELD: &str = "\"host_ns\":";
    let mut out = String::with_capacity(frames.len());
    let mut rest = frames;
    while let Some(i) = rest.find(FIELD) {
        let after = i + FIELD.len();
        out.push_str(&rest[..after]);
        out.push('0');
        let tail = &rest[after..];
        let digits = tail.bytes().take_while(|b| b.is_ascii_digit()).count();
        rest = &tail[digits..];
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips_with_defaults() {
        let req = parse_request(r#"{"verb":"submit","seq":7,"workload":"hotspot"}"#).unwrap();
        let Request::Submit(s) = req else {
            panic!("not a submit")
        };
        assert_eq!(s.seq, 7);
        assert_eq!(s.workload, "hotspot");
        assert_eq!(s.machine, "diag");
        assert_eq!(s.scale, Scale::Tiny);
        assert_eq!(s.threads, 1);
        assert!(!s.simt);
        assert!(s.config.is_empty());
        assert_eq!(s.max_cycles, None);
        assert_eq!(s.client, None);
    }

    #[test]
    fn config_object_parses_in_key_order() {
        let line = concat!(
            r#"{"verb":"submit","seq":2,"workload":"bfs","machine":"diag:f4c2","#,
            r#""config":{"lsu_depth":4,"clusters":8,"reuse":false,"max_cycles":"5000"}}"#,
        );
        let Request::Submit(s) = parse_request(line).unwrap() else {
            panic!("not a submit")
        };
        // BTreeMap ordering: deterministic regardless of wire order.
        assert_eq!(
            s.config,
            vec![
                ("clusters".to_string(), "8".to_string()),
                ("lsu_depth".to_string(), "4".to_string()),
                ("max_cycles".to_string(), "5000".to_string()),
                ("reuse".to_string(), "false".to_string()),
            ]
        );
    }

    #[test]
    fn malformed_config_is_a_parse_error() {
        let err =
            parse_request(r#"{"verb":"submit","seq":1,"workload":"bfs","config":3}"#).unwrap_err();
        assert!(err.contains("object"), "{err}");
        let err = parse_request(
            r#"{"verb":"submit","seq":1,"workload":"bfs","config":{"clusters":[1]}}"#,
        )
        .unwrap_err();
        assert!(err.contains("clusters"), "{err}");
        let err = parse_request(
            r#"{"verb":"submit","seq":1,"workload":"bfs","config":{"clusters":1.5}}"#,
        )
        .unwrap_err();
        assert!(err.contains("unsigned integer"), "{err}");
    }

    #[test]
    fn submit_parses_every_field() {
        let line = concat!(
            r#"{"verb":"submit","seq":1,"client":"alice","workload":"bfs","#,
            r#""machine":"ooo","scale":"small","threads":4,"simt":true,"#,
            r#""max_cycles":10}"#,
        );
        let req = parse_request(line).unwrap();
        let Request::Submit(s) = req else {
            panic!("not a submit")
        };
        assert_eq!(s.client.as_deref(), Some("alice"));
        assert_eq!(s.machine, "ooo");
        assert_eq!(s.scale, Scale::Small);
        assert_eq!(s.threads, 4);
        assert!(s.simt);
        assert_eq!(s.max_cycles, Some(10));
    }

    #[test]
    fn control_verbs_parse() {
        assert_eq!(
            parse_request(r#"{"verb":"status"}"#).unwrap(),
            Request::Status
        );
        assert_eq!(
            parse_request(r#"{"verb":"cancel","seq":3}"#).unwrap(),
            Request::Cancel { seq: 3 }
        );
        assert_eq!(
            parse_request(r#"{"verb":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
        assert_eq!(
            parse_request(r#"{"verb":"metrics"}"#).unwrap(),
            Request::Metrics
        );
    }

    #[test]
    fn bad_requests_are_rejected_with_messages() {
        assert!(parse_request("not json")
            .unwrap_err()
            .contains("invalid JSON"));
        assert!(parse_request("{}").unwrap_err().contains("verb"));
        assert!(parse_request(r#"{"verb":"dance"}"#)
            .unwrap_err()
            .contains("unknown verb"));
        assert!(parse_request(r#"{"verb":"submit","workload":"bfs"}"#)
            .unwrap_err()
            .contains("seq"));
        assert!(
            parse_request(r#"{"verb":"submit","seq":1,"workload":"x","scale":"huge"}"#)
                .unwrap_err()
                .contains("unknown scale")
        );
    }

    #[test]
    fn frames_are_valid_json_with_fixed_keys() {
        let stats = RunStats {
            cycles: 100,
            committed: 50,
            threads: 1,
            ..RunStats::default()
        };
        let delta = CacheDelta {
            hits: 2,
            builds: 1,
            run_hits: 1,
            run_builds: 0,
        };
        for frame in [
            hello_frame(1),
            result_frame(1, "bfs", "diag", "diag:f4c32", &stats, delta, 12345),
            error_frame(
                2,
                "bfs",
                "diag",
                "diag:f4c32",
                &RunError::Build {
                    workload: "bfs".to_string(),
                    message: "quote \" and slash \\".to_string(),
                },
                CacheDelta::default(),
                1,
            ),
            reject_frame(Some(3), code::QUEUE_FULL, "queue full"),
            reject_frame(None, code::BAD_REQUEST, "nope"),
            protocol_error_frame("bad"),
            cancelled_frame(4, true),
            shutdown_frame(0),
            status_frame(&StatusSnapshot::default()),
            metrics_frame(
                "# TYPE x counter\nx{v=\"a\"} 1\n",
                "{\"schema\":\"diag-telemetry-v1\",\"counters\":{},\"gauges\":{},\"histograms\":{}}",
            ),
        ] {
            json::parse(&frame).unwrap_or_else(|e| panic!("{frame}: {e}"));
        }
        let ok = result_frame(1, "bfs", "diag", "diag:f4c32", &stats, delta, 1);
        assert!(ok.contains("\"spec\":\"diag:f4c32\""), "{ok}");
        assert!(ok.contains("\"run_hits\":1"), "{ok}");
        assert!(ok.contains("\"run_builds\":0"), "{ok}");
    }

    #[test]
    fn strip_timing_zeroes_only_the_timing_field() {
        let a = "{\"seq\":1,\"host_ns\":123456}\n{\"seq\":2,\"host_ns\":9}\n";
        let b = "{\"seq\":1,\"host_ns\":777}\n{\"seq\":2,\"host_ns\":13}\n";
        assert_eq!(strip_timing(a), strip_timing(b));
        assert!(strip_timing(a).contains("\"host_ns\":0"));
        assert!(strip_timing(a).contains("\"seq\":1"));
    }

    #[test]
    fn error_kinds_cover_the_taxonomy() {
        let w = "w".to_string();
        let m = "m".to_string();
        assert_eq!(
            error_kind(&RunError::Build {
                workload: w.clone(),
                message: m.clone()
            }),
            "build"
        );
        assert_eq!(
            error_kind(&RunError::Verify {
                workload: w.clone(),
                machine: m.clone(),
                message: "x".to_string()
            }),
            "verify"
        );
        assert_eq!(
            error_kind(&RunError::Panicked {
                workload: w,
                machine: m,
                message: "x".to_string()
            }),
            "panicked"
        );
    }
}
