//! A small blocking client for the `diag-serve` protocol.
//!
//! Used by the `diag-load` load generator and the integration tests;
//! anything that can open a TCP socket and read lines can speak the
//! protocol without it.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use diag_trace::json::{self, Value};

/// Builder for one `submit` request line.
#[derive(Debug, Clone)]
pub struct Submit {
    /// Client-chosen sequence id echoed on the result.
    pub seq: u64,
    /// Workload name.
    pub workload: String,
    /// Machine spec in the canonical grammar (`diag[:preset][+k=v,...]`,
    /// `ooo[:cores]`, `inorder`).
    pub machine: String,
    /// Scale name: `tiny` | `small` | `full`.
    pub scale: String,
    /// Hardware threads.
    pub threads: usize,
    /// SIMT-annotated variant.
    pub simt: bool,
    /// Diag-only configuration overrides, sent as the `config` object
    /// (the grammar's `+key=value` catalogue).
    pub config: Vec<(String, String)>,
    /// Diag-only cycle-limit override (back-compat alias for
    /// `config.max_cycles`).
    pub max_cycles: Option<u64>,
    /// Fairness-bucket override.
    pub client: Option<String>,
}

impl Submit {
    /// A tiny-scale single-thread submission.
    pub fn new(seq: u64, workload: &str, machine: &str) -> Submit {
        Submit {
            seq,
            workload: workload.to_string(),
            machine: machine.to_string(),
            scale: "tiny".to_string(),
            threads: 1,
            simt: false,
            config: Vec::new(),
            max_cycles: None,
            client: None,
        }
    }

    /// Renders the request line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut line = format!(
            "{{\"verb\":\"submit\",\"seq\":{},\"workload\":\"{}\",\"machine\":\"{}\",\
             \"scale\":\"{}\",\"threads\":{},\"simt\":{}",
            self.seq,
            crate::protocol::esc(&self.workload),
            crate::protocol::esc(&self.machine),
            crate::protocol::esc(&self.scale),
            self.threads,
            self.simt,
        );
        if !self.config.is_empty() {
            let entries: Vec<String> = self
                .config
                .iter()
                .map(|(k, v)| {
                    format!(
                        "\"{}\":\"{}\"",
                        crate::protocol::esc(k),
                        crate::protocol::esc(v)
                    )
                })
                .collect();
            line.push_str(&format!(",\"config\":{{{}}}", entries.join(",")));
        }
        if let Some(mc) = self.max_cycles {
            line.push_str(&format!(",\"max_cycles\":{mc}"));
        }
        if let Some(client) = &self.client {
            line.push_str(&format!(",\"client\":\"{}\"", crate::protocol::esc(client)));
        }
        line.push('}');
        line
    }
}

/// A parsed response frame: the raw line plus its JSON document.
#[derive(Debug)]
pub struct Frame {
    /// The frame line as received (no newline).
    pub raw: String,
    /// The parsed document.
    pub doc: Value,
}

impl Frame {
    fn parse(raw: String) -> io::Result<Frame> {
        let doc = json::parse(&raw)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{raw}: {e}")))?;
        Ok(Frame { raw, doc })
    }

    /// The frame kind (`hello`, `result`, `reject`, …).
    pub fn kind(&self) -> &str {
        self.doc.get("frame").and_then(Value::as_str).unwrap_or("")
    }

    /// The echoed submission id, when present.
    pub fn seq(&self) -> Option<u64> {
        self.doc
            .get("seq")
            .and_then(Value::as_num)
            .map(|n| n as u64)
    }

    /// `result` frames: whether the run succeeded.
    pub fn ok(&self) -> Option<bool> {
        match self.doc.get("ok") {
            Some(Value::Bool(b)) => Some(*b),
            _ => None,
        }
    }

    /// `result` frames: per-request artifact-cache hits.
    pub fn cache_hits(&self) -> Option<u64> {
        self.cache_field("hits")
    }

    /// `result` frames: per-request artifact-cache builds.
    pub fn cache_builds(&self) -> Option<u64> {
        self.cache_field("builds")
    }

    /// `result` frames: run-memoization-stage hits for this request.
    pub fn run_hits(&self) -> Option<u64> {
        self.cache_field("run_hits")
    }

    /// `result` frames: run-memoization-stage builds (simulations that
    /// actually executed) for this request.
    pub fn run_builds(&self) -> Option<u64> {
        self.cache_field("run_builds")
    }

    /// `result` frames: the canonical machine spec the run executed.
    pub fn spec(&self) -> Option<&str> {
        self.doc.get("spec").and_then(Value::as_str)
    }

    fn cache_field(&self, key: &str) -> Option<u64> {
        self.doc
            .get("cache")
            .and_then(|c| c.get(key))
            .and_then(Value::as_num)
            .map(|n| n as u64)
    }

    /// `result` frames with `ok:false`: the error kind
    /// (`build`/`sim`/`verify`/`panicked`).
    pub fn error_kind(&self) -> Option<&str> {
        self.doc
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Value::as_str)
    }

    /// `reject`/`error` frames: the admission/protocol failure code.
    pub fn code(&self) -> Option<u16> {
        self.doc
            .get("code")
            .and_then(Value::as_num)
            .map(|n| n as u16)
    }

    /// `metrics` frames: the Prometheus-style text exposition (the
    /// parser has already unescaped it).
    pub fn metrics_text(&self) -> Option<&str> {
        self.doc.get("text").and_then(Value::as_str)
    }

    /// `metrics` frames: the embedded `diag-telemetry-v1` JSON
    /// exposition object.
    pub fn metrics_json(&self) -> Option<&Value> {
        self.doc.get("json")
    }

    /// `metrics` frames: one counter's value by its rendered key, e.g.
    /// `diag_serve_requests_total{verb="submit"}`.
    pub fn metric_counter(&self, key: &str) -> Option<u64> {
        self.metrics_json()?
            .get("counters")?
            .get(key)
            .and_then(Value::as_num)
            .map(|n| n as u64)
    }

    /// `metrics` frames: one field of a gauge or histogram entry by
    /// section (`"gauges"` / `"histograms"`), rendered metric key, and
    /// field name (`"value"`, `"high_water"`, `"count"`, `"p50"`, …).
    pub fn metric_field(&self, section: &str, key: &str, field: &str) -> Option<u64> {
        self.metrics_json()?
            .get(section)?
            .get(key)?
            .get(field)
            .and_then(Value::as_num)
            .map(|n| n as u64)
    }
}

/// One protocol connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    hello: Frame,
}

impl Client {
    /// Connects and consumes the `hello` frame.
    ///
    /// # Errors
    ///
    /// Propagates connect/read failures; fails if the greeting is not a
    /// `hello` frame.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Request lines are small; Nagle would hold each behind the
        // server's delayed ACK and turn every submit into a ~40ms stall.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let hello = Frame::parse(line.trim_end().to_string())?;
        if hello.kind() != "hello" {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected hello frame, got: {}", hello.raw),
            ));
        }
        Ok(Client {
            reader,
            writer,
            hello,
        })
    }

    /// The `hello` frame the server greeted with.
    pub fn hello(&self) -> &Frame {
        &self.hello
    }

    /// Sends one raw request line.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        let mut out = String::with_capacity(line.len() + 1);
        out.push_str(line);
        out.push('\n');
        self.writer.write_all(out.as_bytes())?;
        self.writer.flush()
    }

    /// Sends one submission.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn submit(&mut self, submit: &Submit) -> io::Result<()> {
        self.send_line(&submit.to_line())
    }

    /// Sends a control verb (`status`, `shutdown`).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn send_verb(&mut self, verb: &str) -> io::Result<()> {
        self.send_line(&format!("{{\"verb\":\"{verb}\"}}"))
    }

    /// Sends a `cancel` for `seq`.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn cancel(&mut self, seq: u64) -> io::Result<()> {
        self.send_line(&format!("{{\"verb\":\"cancel\",\"seq\":{seq}}}"))
    }

    /// Reads the next raw frame line; `None` on clean EOF.
    ///
    /// # Errors
    ///
    /// Propagates socket read failures.
    pub fn recv_line(&mut self) -> io::Result<Option<String>> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        Ok(Some(line.trim_end().to_string()))
    }

    /// Reads and parses the next frame; `None` on clean EOF.
    ///
    /// # Errors
    ///
    /// Propagates socket read failures and frame parse failures.
    pub fn recv(&mut self) -> io::Result<Option<Frame>> {
        match self.recv_line()? {
            Some(line) => Ok(Some(Frame::parse(line)?)),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_lines_parse_as_requests() {
        let mut s = Submit::new(9, "hotspot", "diag");
        s.max_cycles = Some(50);
        s.client = Some("alice".to_string());
        let parsed = crate::protocol::parse_request(&s.to_line()).expect("valid");
        let crate::protocol::Request::Submit(req) = parsed else {
            panic!("not a submit");
        };
        assert_eq!(req.seq, 9);
        assert_eq!(req.workload, "hotspot");
        assert_eq!(req.max_cycles, Some(50));
        assert_eq!(req.client.as_deref(), Some("alice"));
    }

    #[test]
    fn frame_accessors_read_result_fields() {
        let f = Frame::parse(
            "{\"frame\":\"result\",\"seq\":3,\"ok\":true,\
             \"cache\":{\"hits\":2,\"builds\":1},\"host_ns\":5}"
                .to_string(),
        )
        .expect("parses");
        assert_eq!(f.kind(), "result");
        assert_eq!(f.seq(), Some(3));
        assert_eq!(f.ok(), Some(true));
        assert_eq!(f.cache_hits(), Some(2));
        assert_eq!(f.cache_builds(), Some(1));
        assert_eq!(f.error_kind(), None);
        assert_eq!(f.code(), None);
    }

    #[test]
    fn frame_accessors_read_metrics_fields() {
        let f = Frame::parse(
            "{\"frame\":\"metrics\",\"proto\":\"diag-serve/1\",\
             \"text\":\"# TYPE a counter\\na 1\\n\",\
             \"json\":{\"schema\":\"diag-telemetry-v1\",\
             \"counters\":{\"a\":1},\
             \"gauges\":{\"g\":{\"value\":2,\"high_water\":7}},\
             \"histograms\":{\"h\":{\"count\":3,\"p50\":40}}}}"
                .to_string(),
        )
        .expect("parses");
        assert_eq!(f.kind(), "metrics");
        assert_eq!(f.metrics_text(), Some("# TYPE a counter\na 1\n"));
        assert_eq!(f.metric_counter("a"), Some(1));
        assert_eq!(f.metric_counter("missing"), None);
        assert_eq!(f.metric_field("gauges", "g", "high_water"), Some(7));
        assert_eq!(f.metric_field("histograms", "h", "p50"), Some(40));
        assert_eq!(f.metric_field("histograms", "h", "p99"), None);
    }
}
