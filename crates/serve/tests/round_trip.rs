//! Server round-trip equivalence: every workload × machine submitted
//! over the wire must report the exact `RunStats` a direct
//! `sweep::run_one` of the same spec produces, and failed runs must
//! carry the same `RunError` taxonomy and message.

use diag_bench::runner::MachineSpec;
use diag_bench::sweep::{self, SweepRun};
use diag_pipeline::Session;
use diag_serve::{Client, ServeConfig, Server, Submit};
use diag_trace::json::Value;
use diag_workloads::{all, find, Params};

fn spawn_server(workers: usize) -> diag_serve::ServerHandle {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        capacity: 4096,
        quantum: 1,
    };
    Server::bind(&config, Session::in_memory())
        .expect("bind ephemeral port")
        .spawn()
}

fn num(doc: &Value, path: &[&str]) -> f64 {
    let mut v = doc;
    for key in path {
        v = v.get(key).unwrap_or_else(|| panic!("missing {path:?}"));
    }
    v.as_num()
        .unwrap_or_else(|| panic!("{path:?} not a number"))
}

#[test]
fn every_workload_and_machine_matches_a_direct_run() {
    let handle = spawn_server(2);
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Pipeline every (workload, machine) pair, then read the results
    // back — the server guarantees per-client submission order.
    let machines = ["diag", "ooo", "inorder"];
    let mut expected = Vec::new();
    let mut seq = 0u64;
    for spec in all() {
        for machine in machines {
            client
                .submit(&Submit::new(seq, spec.name, machine))
                .expect("submit");
            expected.push((seq, spec.name, machine));
            seq += 1;
        }
    }

    // The same specs, executed directly through the library path the
    // harness CLI uses.
    let direct_session = Session::in_memory();
    for (want_seq, workload, machine) in expected {
        let frame = client
            .recv()
            .expect("read result")
            .expect("stream open until shutdown");
        assert_eq!(frame.kind(), "result", "{}", frame.raw);
        assert_eq!(frame.seq(), Some(want_seq), "{}", frame.raw);
        assert_eq!(frame.ok(), Some(true), "{}", frame.raw);

        let run = SweepRun {
            machine: MachineSpec::parse(machine).expect("known machine"),
            spec: find(workload).expect("registered workload"),
            params: Params::tiny(),
        };
        let direct = sweep::run_one(&direct_session, &run)
            .unwrap_or_else(|e| panic!("{workload} on {machine} failed directly: {e}"));

        let stats = frame.doc.get("stats").expect("stats object");
        assert_eq!(
            num(&frame.doc, &["stats", "cycles"]) as u64,
            direct.cycles,
            "{workload} on {machine}: cycles diverge: {}",
            frame.raw
        );
        assert_eq!(
            num(&frame.doc, &["stats", "committed"]) as u64,
            direct.committed,
            "{workload} on {machine}: committed diverge"
        );
        assert_eq!(
            num(&frame.doc, &["stats", "threads"]) as u64,
            direct.threads as u64,
            "{workload} on {machine}: threads diverge"
        );
        for (field, want) in [
            ("memory", direct.stalls.memory),
            ("control", direct.stalls.control),
            ("structural", direct.stalls.structural),
        ] {
            assert_eq!(
                num(stats, &["stalls", field]) as u64,
                want,
                "{workload} on {machine}: {field} stalls diverge"
            );
        }
        // The frame renders ipc with four decimals; re-render the
        // direct value the same way rather than comparing floats.
        let want_ipc: f64 = format!("{:.4}", direct.ipc()).parse().expect("ipc");
        let got_ipc = num(&frame.doc, &["stats", "ipc"]);
        assert!(
            (got_ipc - want_ipc).abs() < 1e-9,
            "{workload} on {machine}: ipc {got_ipc} != {want_ipc}"
        );
    }

    client.send_verb("shutdown").expect("shutdown");
    let bye = client.recv().expect("read").expect("shutdown ack");
    assert_eq!(bye.kind(), "shutdown", "{}", bye.raw);
    handle.join().expect("clean server exit");
}

#[test]
fn failed_runs_carry_the_direct_error_taxonomy_and_message() {
    let handle = spawn_server(1);
    let mut client = Client::connect(handle.addr()).expect("connect");

    // A cycle limit far below hotspot's runtime: the run fails with a
    // Sim error, exactly as the sweep path reports it.
    let mut submit = Submit::new(1, "hotspot", "diag");
    submit.max_cycles = Some(10);
    client.submit(&submit).expect("submit");
    let frame = client.recv().expect("read").expect("result");
    assert_eq!(frame.kind(), "result", "{}", frame.raw);
    assert_eq!(frame.ok(), Some(false), "{}", frame.raw);
    assert_eq!(frame.error_kind(), Some("sim"), "{}", frame.raw);

    let mut kind = MachineSpec::parse("diag").expect("diag");
    let MachineSpec::Diag(ref mut cfg) = kind else {
        panic!("diag kind");
    };
    cfg.max_cycles = 10;
    let direct = sweep::run_one(
        &Session::in_memory(),
        &SweepRun {
            machine: kind,
            spec: find("hotspot").expect("registered"),
            params: Params::tiny(),
        },
    )
    .expect_err("limit of 10 cycles must fail");
    let message = frame
        .doc
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Value::as_str)
        .expect("error message");
    assert_eq!(message, direct.to_string(), "{}", frame.raw);

    // Unknown workloads are rejected before admission with a 404 code.
    client
        .submit(&Submit::new(2, "nosuchworkload", "diag"))
        .expect("submit");
    let reject = client.recv().expect("read").expect("reject");
    assert_eq!(reject.kind(), "reject", "{}", reject.raw);
    assert_eq!(reject.seq(), Some(2), "{}", reject.raw);
    assert_eq!(reject.code(), Some(404), "{}", reject.raw);

    client.send_verb("shutdown").expect("shutdown");
    let _ = client.recv().expect("read");
    handle.join().expect("clean server exit");
}
