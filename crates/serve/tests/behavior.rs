//! Server behaviour: cache coalescing on warm submissions, bounded
//! admission with deterministic rejects, cancellation, drain-time
//! refusals, and deficit-round-robin fairness under a flooding client.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use diag_pipeline::Session;
use diag_serve::{Client, ServeConfig, Server, ServerHandle, Submit};
use diag_trace::json::Value;

fn spawn(workers: usize, capacity: usize) -> ServerHandle {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        capacity,
        quantum: 1,
    };
    Server::bind(&config, Session::in_memory())
        .expect("bind ephemeral port")
        .spawn()
}

fn field(doc: &Value, key: &str) -> u64 {
    doc.get(key)
        .and_then(Value::as_num)
        .unwrap_or_else(|| panic!("missing {key}")) as u64
}

#[test]
fn warm_resubmission_reports_hits_and_zero_builds() {
    let handle = spawn(1, 16);
    let mut client = Client::connect(handle.addr()).expect("connect");
    client
        .submit(&Submit::new(1, "hotspot", "diag"))
        .expect("submit");
    client
        .submit(&Submit::new(2, "hotspot", "diag"))
        .expect("submit");

    let cold = client.recv().expect("read").expect("cold result");
    assert_eq!(cold.seq(), Some(1), "{}", cold.raw);
    assert_eq!(cold.ok(), Some(true), "{}", cold.raw);
    assert!(
        cold.cache_builds().expect("cache.builds") >= 1,
        "cold run must build: {}",
        cold.raw
    );

    assert_eq!(
        cold.run_builds(),
        Some(1),
        "cold run must simulate exactly once: {}",
        cold.raw
    );
    assert_eq!(cold.spec(), Some("diag:f4c32"), "{}", cold.raw);

    // Same spec again: the run-stage memo answers before any artifact
    // is touched, so the warm result reports a run hit, zero builds of
    // any kind — the simulator never stepped for this request.
    let warm = client.recv().expect("read").expect("warm result");
    assert_eq!(warm.seq(), Some(2), "{}", warm.raw);
    assert_eq!(warm.ok(), Some(true), "{}", warm.raw);
    assert_eq!(
        warm.cache_builds(),
        Some(0),
        "warm run rebuilt something: {}",
        warm.raw
    );
    assert!(
        warm.cache_hits().expect("cache.hits") >= 1,
        "warm run saw no cache: {}",
        warm.raw
    );
    assert_eq!(
        warm.run_builds(),
        Some(0),
        "warm run re-simulated: {}",
        warm.raw
    );
    assert!(
        warm.run_hits().expect("cache.run_hits") >= 1,
        "warm run missed the run memo: {}",
        warm.raw
    );
    assert_eq!(warm.spec(), Some("diag:f4c32"), "{}", warm.raw);

    client.send_verb("shutdown").expect("shutdown");
    let _ = client.recv().expect("read");
    handle.join().expect("clean server exit");
}

#[test]
fn config_overrides_reshape_the_run_and_malformed_ones_reject() {
    let handle = spawn(1, 16);
    let mut client = Client::connect(handle.addr()).expect("connect");

    // An override on top of a preset: the result echoes the canonical
    // spec, not the submitted machine text.
    let mut shaped = Submit::new(1, "hotspot", "diag:f4c2");
    shaped
        .config
        .push(("lsu_depth".to_string(), "4".to_string()));
    client.submit(&shaped).expect("submit");
    let frame = client.recv().expect("read").expect("result");
    assert_eq!(frame.kind(), "result", "{}", frame.raw);
    assert_eq!(frame.ok(), Some(true), "{}", frame.raw);
    assert_eq!(frame.spec(), Some("diag:f4c2+lsu_depth=4"), "{}", frame.raw);

    // The legacy `max_cycles` field is an alias for the config entry:
    // the run fails with the sim taxonomy and the spec shows the fold.
    let mut limited = Submit::new(2, "hotspot", "diag");
    limited.max_cycles = Some(10);
    client.submit(&limited).expect("submit");
    let frame = client.recv().expect("read").expect("result");
    assert_eq!(frame.ok(), Some(false), "{}", frame.raw);
    assert_eq!(frame.error_kind(), Some("sim"), "{}", frame.raw);
    assert_eq!(
        frame.spec(),
        Some("diag:f4c32+max_cycles=10"),
        "{}",
        frame.raw
    );

    // Malformed overrides are typed 400 rejects, never panics: an
    // unknown key, an unparsable value, and overrides on a machine
    // that has no configuration.
    let mut unknown = Submit::new(3, "hotspot", "diag");
    unknown
        .config
        .push(("warp_drive".to_string(), "9".to_string()));
    let mut bad_value = Submit::new(4, "hotspot", "diag");
    bad_value
        .config
        .push(("clusters".to_string(), "zero".to_string()));
    let mut wrong_machine = Submit::new(5, "hotspot", "ooo");
    wrong_machine
        .config
        .push(("clusters".to_string(), "8".to_string()));
    for submit in [&unknown, &bad_value, &wrong_machine] {
        client.submit(submit).expect("submit");
        let reject = client.recv().expect("read").expect("reject");
        assert_eq!(reject.kind(), "reject", "{}", reject.raw);
        assert_eq!(reject.seq(), Some(submit.seq), "{}", reject.raw);
        assert_eq!(reject.code(), Some(400), "{}", reject.raw);
    }

    client.send_verb("shutdown").expect("shutdown");
    let _ = client.recv().expect("read");
    handle.join().expect("clean server exit");
}

#[test]
fn metrics_verb_reports_both_expositions_and_reconciles_caches() {
    let handle = spawn(1, 16);
    let mut client = Client::connect(handle.addr()).expect("connect");
    client
        .submit(&Submit::new(1, "hotspot", "diag"))
        .expect("submit");
    client
        .submit(&Submit::new(2, "hotspot", "diag"))
        .expect("submit");
    let cold = client.recv().expect("read").expect("cold result");
    let warm = client.recv().expect("read").expect("warm result");

    client.send_verb("metrics").expect("metrics");
    let m = client.recv().expect("read").expect("metrics frame");
    assert_eq!(m.kind(), "metrics", "{}", m.raw);

    // The text exposition carries the same families as the JSON one.
    let text = m.metrics_text().expect("text exposition");
    assert!(
        text.contains("# TYPE diag_serve_requests_total counter"),
        "text exposition missing TYPE line:\n{text}"
    );
    assert!(
        text.contains("diag_serve_queue_depth_high_water"),
        "text exposition missing gauge high-water:\n{text}"
    );

    // Request lifecycle counters: two submits, both completed, the
    // metrics request itself already counted before the snapshot.
    assert_eq!(
        m.metric_counter("diag_serve_requests_total{verb=\"submit\"}"),
        Some(2),
        "{}",
        m.raw
    );
    assert_eq!(
        m.metric_counter("diag_serve_requests_total{verb=\"metrics\"}"),
        Some(1),
        "{}",
        m.raw
    );
    assert_eq!(
        m.metric_counter("diag_serve_submitted_total"),
        Some(2),
        "{}",
        m.raw
    );
    assert_eq!(
        m.metric_counter("diag_serve_completed_total"),
        Some(2),
        "{}",
        m.raw
    );

    // Latency histograms saw both executions; queue gauges are drained
    // but remember their high water.
    assert_eq!(
        m.metric_field(
            "histograms",
            "diag_serve_execute_ns{scale=\"tiny\"}",
            "count"
        ),
        Some(2),
        "{}",
        m.raw
    );
    assert_eq!(
        m.metric_field("gauges", "diag_serve_queue_depth", "value"),
        Some(0),
        "{}",
        m.raw
    );
    assert!(
        m.metric_field("gauges", "diag_serve_queue_depth", "high_water") >= Some(1),
        "{}",
        m.raw
    );

    // Run-stage cache gauges reconcile exactly with the per-frame
    // counters summed over the cold and warm results.
    let hits = cold.run_hits().expect("hits") + warm.run_hits().expect("hits");
    let builds = cold.run_builds().expect("builds") + warm.run_builds().expect("builds");
    assert_eq!(
        m.metric_field("gauges", "diag_cache_stage_hits{stage=\"runs\"}", "value"),
        Some(hits),
        "{}",
        m.raw
    );
    assert_eq!(
        m.metric_field("gauges", "diag_cache_stage_builds{stage=\"runs\"}", "value"),
        Some(builds),
        "{}",
        m.raw
    );

    client.send_verb("shutdown").expect("shutdown");
    let _ = client.recv().expect("read");
    handle.join().expect("clean server exit");
}

#[test]
fn admission_rejects_cancel_and_drain_are_deterministic() {
    // Zero workers: nothing ever executes, so the queue state is fully
    // deterministic — two submissions fill capacity, the third bounces.
    let handle = spawn(0, 2);
    let mut a = Client::connect(handle.addr()).expect("connect a");
    for seq in 0..3 {
        a.submit(&Submit::new(seq, "hotspot", "diag"))
            .expect("submit");
    }
    let reject = a.recv().expect("read").expect("reject frame");
    assert_eq!(reject.kind(), "reject", "{}", reject.raw);
    assert_eq!(reject.seq(), Some(2), "{}", reject.raw);
    assert_eq!(reject.code(), Some(429), "{}", reject.raw);

    a.send_verb("status").expect("status");
    let status = a.recv().expect("read").expect("status frame");
    assert_eq!(status.kind(), "status", "{}", status.raw);
    assert_eq!(field(&status.doc, "queued"), 2, "{}", status.raw);
    assert_eq!(field(&status.doc, "rejected"), 1, "{}", status.raw);
    assert_eq!(field(&status.doc, "workers"), 0, "{}", status.raw);
    assert_eq!(field(&status.doc, "submitted"), 2, "{}", status.raw);
    assert!(
        status
            .doc
            .get("host")
            .and_then(|h| h.get("rustc"))
            .is_some(),
        "status carries host metadata: {}",
        status.raw
    );

    // Cancel both queued jobs: each takes its order slot, so the frames
    // flush immediately and in order.
    for seq in 0..2 {
        a.cancel(seq).expect("cancel");
        let frame = a.recv().expect("read").expect("cancelled frame");
        assert_eq!(frame.kind(), "cancelled", "{}", frame.raw);
        assert_eq!(frame.seq(), Some(seq), "{}", frame.raw);
        assert_eq!(frame.ok(), Some(true), "{}", frame.raw);
    }
    // A second cancel of the same seq finds nothing.
    a.cancel(0).expect("cancel");
    let miss = a.recv().expect("read").expect("cancelled frame");
    assert_eq!(miss.ok(), Some(false), "{}", miss.raw);

    // A second connection opened before the drain still gets answered —
    // with a 503 — after the first connection shuts the server down.
    let mut b = Client::connect(handle.addr()).expect("connect b");
    a.send_verb("shutdown").expect("shutdown");
    let bye = a.recv().expect("read").expect("shutdown ack");
    assert_eq!(bye.kind(), "shutdown", "{}", bye.raw);
    assert_eq!(field(&bye.doc, "queued"), 0, "{}", bye.raw);

    b.submit(&Submit::new(9, "hotspot", "diag"))
        .expect("submit");
    let refused = b.recv().expect("read").expect("draining reject");
    assert_eq!(refused.code(), Some(503), "{}", refused.raw);

    handle.join().expect("clean server exit");
}

#[test]
fn flooding_client_cannot_starve_a_small_one() {
    let handle = spawn(1, 1024);
    let mut flood = Client::connect(handle.addr()).expect("connect flood");
    let mut small = Client::connect(handle.addr()).expect("connect small");

    // The flood's first job is small-scale: it occupies the single
    // worker long enough for the rest of the queue to fill, making the
    // scheduling order under test independent of socket timing.
    let mut first = Submit::new(0, "nn", "inorder");
    first.scale = "small".to_string();
    flood.submit(&first).expect("submit");
    const FLOOD: u64 = 200;
    for seq in 1..=FLOOD {
        flood
            .submit(&Submit::new(seq, "bfs", "inorder"))
            .expect("submit");
    }
    const SMALL: u64 = 4;
    for seq in 0..SMALL {
        small
            .submit(&Submit::new(seq, "hotspot", "inorder"))
            .expect("submit");
    }

    // Count the flood's completions on a side thread while the main
    // thread waits for the small client's last result.
    let flood_done = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&flood_done);
    let reader = std::thread::spawn(move || {
        for _ in 0..=FLOOD {
            let frame = flood.recv().expect("read").expect("flood result");
            assert_eq!(frame.kind(), "result", "{}", frame.raw);
            counter.fetch_add(1, Ordering::Relaxed);
        }
        flood
    });
    for seq in 0..SMALL {
        let frame = small.recv().expect("read").expect("small result");
        assert_eq!(frame.seq(), Some(seq), "{}", frame.raw);
        assert_eq!(frame.ok(), Some(true), "{}", frame.raw);
    }
    let flood_at_finish = flood_done.load(Ordering::Relaxed);
    // FIFO would drain (essentially) all 201 flood jobs before the
    // small client's four; deficit round-robin alternates lanes, so the
    // small client finishes after only a handful of flood completions.
    assert!(
        flood_at_finish <= 100,
        "small client waited behind {flood_at_finish} flood jobs"
    );

    let _ = reader.join().expect("flood reader");
    small.send_verb("shutdown").expect("shutdown");
    let _ = small.recv().expect("read");
    handle.join().expect("clean server exit");
}
