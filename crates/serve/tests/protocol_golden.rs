//! Protocol determinism: the same request script against two fresh
//! servers produces byte-identical transcripts once the only
//! intentionally non-deterministic field (`host_ns` service time) is
//! stripped.

use diag_pipeline::Session;
use diag_serve::protocol::strip_timing;
use diag_serve::{Client, ServeConfig, Server, Submit};

/// Runs the canonical lock-step script against a fresh single-worker
/// server and returns every frame received (including the greeting),
/// newline-joined.
fn transcript() -> String {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        capacity: 16,
        quantum: 1,
    };
    let handle = Server::bind(&config, Session::in_memory())
        .expect("bind ephemeral port")
        .spawn();
    let mut client = Client::connect(handle.addr()).expect("connect");
    let mut frames = vec![client.hello().raw.clone()];
    let mut step = |line: &str, frames: &mut Vec<String>| {
        client.send_line(line).expect("send");
        let frame = client
            .recv_line()
            .expect("read")
            .expect("stream open until shutdown");
        frames.push(frame);
    };

    // Cold then warm submission of the same spec: the second run's
    // cache counters are deterministic at one worker.
    step(&Submit::new(1, "hotspot", "diag").to_line(), &mut frames);
    step(&Submit::new(2, "hotspot", "diag").to_line(), &mut frames);
    // Admission rejections: unknown workload (404), unknown machine
    // (400).
    step(&Submit::new(3, "nosuch", "diag").to_line(), &mut frames);
    step(&Submit::new(4, "hotspot", "z80").to_line(), &mut frames);
    // Protocol errors: not JSON, and an unknown verb.
    step("not json at all", &mut frames);
    step("{\"verb\":\"dance\"}", &mut frames);
    // A failing run: the sim-error taxonomy over the wire.
    let mut limited = Submit::new(7, "hotspot", "diag");
    limited.max_cycles = Some(10);
    step(&limited.to_line(), &mut frames);
    // Cancelling an unknown seq answers immediately with ok:false.
    step("{\"verb\":\"cancel\",\"seq\":99}", &mut frames);
    // Graceful drain: the queue is empty, so zero jobs are reported.
    step("{\"verb\":\"shutdown\"}", &mut frames);

    handle.join().expect("clean server exit");
    frames.join("\n")
}

#[test]
fn identical_scripts_produce_identical_transcripts() {
    let a = transcript();
    let b = transcript();
    assert_eq!(
        strip_timing(&a),
        strip_timing(&b),
        "transcripts diverge beyond host_ns"
    );
    // The stripped transcript still contains real timing markers — the
    // strip must have found (and zeroed) them, not missed the field.
    assert!(strip_timing(&a).contains("\"host_ns\":0"));
    assert!(a.contains("\"frame\":\"shutdown\""));
}
