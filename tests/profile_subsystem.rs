//! End-to-end tests of the `diag-profile` cycle-accounting subsystem.
//!
//! The contract under test (ISSUE acceptance criteria):
//!
//! 1. **Exact reconciliation** — per-PC self-cycles sum to the run's
//!    `Stats.cycles` (under each machine's cycle model), per-cause stall
//!    columns sum to `StallBreakdown`, and per-PC issues sum to
//!    `committed`, for every bundled workload on every machine model,
//!    including multi-threaded and SIMT variants.
//! 2. **Profiling is observation only** — a profiled run's `RunStats`
//!    are identical to an unprofiled run's.
//! 3. **Determinism** — two profiled runs produce byte-identical JSON.
//! 4. **Folded export validity** — every collapsed-stack line is
//!    `frames... count` with a positive integer count.

use diag_bench::runner::{build_machine, MachineSpec};
use diag_profile::{to_folded, CycleModel, Profile, ProfileCollector, ProfileMeta, Profiler};
use diag_sim::RunStats;
use diag_workloads::{Params, WorkloadSpec};

/// The cycle model each machine's `RunStats.cycles` follows: the
/// in-order reference time-slices one core (cycles are summed per
/// thread); DiAG rings and the OoO cores run concurrently (cycles are
/// the latest end clock).
fn cycle_model(kind: &MachineSpec) -> CycleModel {
    match kind {
        MachineSpec::InOrder => CycleModel::Additive,
        _ => CycleModel::Wallclock,
    }
}

/// Runs `spec` on a machine of `kind` with a profiler attached; returns
/// the run's statistics and the built profile.
fn profiled_run(kind: &MachineSpec, spec: &WorkloadSpec, params: &Params) -> (RunStats, Profile) {
    let built = spec.build(params).expect("workload builds");
    let shared = ProfileCollector::shared();
    let mut machine = build_machine(kind);
    machine.set_profiler(Profiler::to_shared(&shared));
    let stats = machine
        .run(&built.program, params.threads)
        .unwrap_or_else(|e| panic!("{} on {}: {e}", spec.name, kind.label()));
    (built.verify)(machine.as_ref())
        .unwrap_or_else(|e| panic!("{} on {}: verify: {e}", spec.name, kind.label()));
    let meta = ProfileMeta {
        workload: spec.name.to_string(),
        machine: kind.label(),
        threads: params.threads as u64,
        simt: params.simt,
        cycle_model: cycle_model(kind),
        total_cycles: stats.cycles,
        committed: stats.committed,
        stalls: [
            stats.stalls.memory,
            stats.stalls.control,
            stats.stalls.structural,
        ],
        host: Vec::new(),
    };
    let collector = shared.borrow();
    let profile = Profile::build(&collector, meta, Some(&built.program));
    (stats, profile)
}

fn assert_reconciles(label: &str, profile: &Profile) {
    profile
        .reconcile()
        .unwrap_or_else(|e| panic!("{label}: {e}"));
}

fn machines() -> Vec<MachineSpec> {
    vec![
        MachineSpec::Diag(diag_core::DiagConfig::f4c32()),
        MachineSpec::Ooo(4),
        MachineSpec::InOrder,
    ]
}

#[test]
fn profile_reconciles_on_every_workload() {
    for kind in machines() {
        for spec in diag_workloads::all() {
            let params = Params::tiny();
            let (_, profile) = profiled_run(&kind, &spec, &params);
            assert_reconciles(&format!("{} on {}", spec.name, kind.label()), &profile);
        }
    }
}

#[test]
fn profile_reconciles_multithreaded_and_simt() {
    for spec in diag_workloads::all() {
        let kind = MachineSpec::Diag(diag_core::DiagConfig::f4c32());
        let params = Params::tiny().with_threads(4);
        let (_, profile) = profiled_run(&kind, &spec, &params);
        assert_reconciles(&format!("{} x4 threads", spec.name), &profile);
        if spec.simt_capable {
            let params = Params::tiny().with_threads(4).with_simt(true);
            let (_, profile) = profiled_run(&kind, &spec, &params);
            assert_reconciles(&format!("{} x4 simt", spec.name), &profile);
        }
    }
    // The baselines under waves (threads > cores) as well.
    let spec = diag_workloads::find("hotspot").expect("bundled");
    let params = Params::tiny().with_threads(6);
    for kind in [MachineSpec::Ooo(2), MachineSpec::InOrder] {
        let (_, profile) = profiled_run(&kind, &spec, &params);
        assert_reconciles(&format!("hotspot waves on {}", kind.label()), &profile);
    }
}

#[test]
fn profiling_does_not_change_stats() {
    for kind in machines() {
        for name in ["hotspot", "mcf"] {
            let spec = diag_workloads::find(name).expect("bundled");
            let params = Params::tiny().with_threads(2);
            let built = spec.build(&params).expect("workload builds");
            let mut plain = build_machine(&kind);
            let unprofiled = plain.run(&built.program, params.threads).expect("runs");
            let (profiled, profile) = profiled_run(&kind, &spec, &params);
            assert!(
                !profile.pcs.is_empty(),
                "{name} on {} profiled nothing",
                kind.label()
            );
            assert_eq!(
                unprofiled,
                profiled,
                "{name} on {}: profiling perturbed the run",
                kind.label()
            );
        }
    }
}

#[test]
fn profiles_are_byte_deterministic_and_round_trip() {
    let spec = diag_workloads::find("bfs").expect("bundled");
    let params = Params::tiny().with_threads(2);
    for kind in machines() {
        let (_, first) = profiled_run(&kind, &spec, &params);
        let (_, second) = profiled_run(&kind, &spec, &params);
        let json = first.to_json();
        assert_eq!(
            json,
            second.to_json(),
            "bfs on {}: nondeterministic profile",
            kind.label()
        );
        let back = Profile::from_json(&json)
            .unwrap_or_else(|e| panic!("bfs on {}: reparse: {e}", kind.label()));
        assert_eq!(back, first, "bfs on {}: JSON round-trip", kind.label());
        back.reconcile()
            .unwrap_or_else(|e| panic!("bfs on {}: reparsed profile: {e}", kind.label()));
    }
}

#[test]
fn folded_export_is_well_formed() {
    let spec = diag_workloads::find("srad").expect("bundled");
    for kind in machines() {
        let (_, profile) = profiled_run(&kind, &spec, &Params::tiny());
        let folded = to_folded(&profile, None);
        assert!(!folded.is_empty(), "srad on {}: empty folded", kind.label());
        for line in folded.lines() {
            let (stack, count) = line
                .rsplit_once(' ')
                .unwrap_or_else(|| panic!("srad on {}: bad line `{line}`", kind.label()));
            assert!(!stack.is_empty());
            let n: u64 = count
                .parse()
                .unwrap_or_else(|_| panic!("srad on {}: bad count `{line}`", kind.label()));
            assert!(n > 0);
        }
    }
}
