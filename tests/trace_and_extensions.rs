//! Tests for the execution-trace facility, the speculative-datapath
//! extension (paper §7.3.2 future work), SIMT initiation intervals, and
//! the I4C2 FPGA proof-of-concept configuration (paper §6.2).

use diag::asm::{assemble, ProgramBuilder};
use diag::core::{Diag, DiagConfig};
use diag::isa::regs::*;
use diag::sim::Machine;

#[test]
fn trace_records_every_committed_instruction() {
    let program = assemble(
        r#"
            li t0, 5
        loop:
            addi t0, t0, -1
            bnez t0, loop
            ecall
        "#,
    )
    .unwrap();
    let mut cfg = DiagConfig::f4c2();
    cfg.collect_trace = true;
    let mut cpu = Diag::new(cfg);
    let stats = cpu.run(&program, 1).unwrap();
    let trace = cpu.last_trace();
    assert_eq!(trace.len() as u64, stats.committed);
    // Commit order is monotone, and finish ≤ commit for every event.
    let mut last_commit = 0;
    for e in trace {
        assert!(e.start <= e.finish, "{e:?}");
        assert!(e.finish <= e.commit, "{e:?}");
        assert!(e.commit >= last_commit, "commit order violated: {e:?}");
        last_commit = e.commit;
        assert!(e.pc >= program.text_base() && e.pc < program.text_end());
    }
    // The loop body (addi at index 1) re-executes reused after iteration 1.
    let body_pc = program.text_base() + 4;
    let body_events: Vec<_> = trace.iter().filter(|e| e.pc == body_pc).collect();
    assert_eq!(body_events.len(), 5);
    assert!(!body_events[0].reused, "first execution decodes");
    assert!(
        body_events[1..].iter().all(|e| e.reused),
        "subsequent iterations reuse"
    );
}

#[test]
fn trace_is_empty_unless_enabled() {
    let program = assemble("li t0, 1\necall\n").unwrap();
    let mut cpu = Diag::new(DiagConfig::f4c2());
    cpu.run(&program, 1).unwrap();
    assert!(cpu.last_trace().is_empty());
}

#[test]
fn speculative_datapaths_help_taken_forward_branches() {
    // A branchy kernel whose taken forward branches jump across I-lines,
    // so the taken path needs a fresh line every time.
    let mut b = ProgramBuilder::new();
    b.li(T0, 400);
    b.li(T2, 0);
    let top = b.bind_new_label();
    let far = b.new_label();
    b.andi(T1, T0, 1);
    b.bnez(T1, far); // taken every other iteration
    for _ in 0..3 {
        b.addi(T2, T2, 1);
    }
    for _ in 0..20 {
        b.nop(); // push `far` into another I-line
    }
    b.bind(far);
    b.addi(T0, T0, -1);
    b.bnez(T0, top);
    b.sw(T2, ZERO, 0);
    b.ecall();
    let program = b.build().unwrap();

    let mut plain = Diag::new(DiagConfig::f4c16());
    let s_plain = plain.run(&program, 1).unwrap();
    let mut cfg = DiagConfig::f4c16();
    cfg.speculative_datapaths = true;
    let mut spec = Diag::new(cfg);
    let s_spec = spec.run(&program, 1).unwrap();

    assert_eq!(
        plain.read_word(0),
        spec.read_word(0),
        "architecture unchanged"
    );
    assert!(
        s_spec.cycles <= s_plain.cycles,
        "speculative datapaths must not slow things down ({} vs {})",
        s_spec.cycles,
        s_plain.cycles
    );
}

#[test]
fn simt_interval_throttles_initiation() {
    // Identical region, intervals 1 vs 8: larger interval = fewer
    // instances in flight = more cycles.
    fn saxpyish(interval: u8) -> diag::asm::Program {
        let mut b = ProgramBuilder::new();
        let data = b.data_zeroed("data", 4 * 512);
        b.li(S5, data as i32);
        b.li(T0, 0);
        b.li(T1, 1);
        b.li(T2, 512);
        let head = b.bind_new_label();
        b.simt_s(T0, T1, T2, interval);
        b.slli(T3, T0, 2);
        b.add(T4, S5, T3);
        b.sw(T0, T4, 0);
        b.simt_e(T0, T2, head);
        b.ecall();
        b.build().unwrap()
    }
    let mut cfg = DiagConfig::f4c32();
    cfg.ring_clusters = cfg.clusters;
    let mut fast = Diag::new(cfg.clone());
    let s1 = fast.run(&saxpyish(1), 1).unwrap();
    let mut slow = Diag::new(cfg);
    let s8 = slow.run(&saxpyish(8), 1).unwrap();
    for i in 0..512u32 {
        let addr = fast.read_word(0); // data base unknown here; check via programs
        let _ = addr;
        let a = saxpyish(1).symbol("data").unwrap() + 4 * i;
        assert_eq!(fast.read_word(a), i);
        assert_eq!(slow.read_word(a), i);
    }
    assert!(
        s8.cycles > s1.cycles + 512 * 5,
        "interval 8 ({}) should be far slower than interval 1 ({})",
        s8.cycles,
        s1.cycles
    );
}

/// The paper's §6.2 FPGA proof of concept: "preloaded bare metal RISC-V
/// programs in memory to verify basic functionality" on the integer-only
/// I4C2 model. These are exactly such programs.
#[test]
fn i4c2_fpga_proof_of_concept_suite() {
    let suite: &[(&str, &str, u32, u32)] = &[
        (
            "memset",
            r#"
                li t0, 64
                li t1, 0x100
            loop:
                sw t0, 0(t1)
                addi t1, t1, 4
                addi t0, t0, -1
                bnez t0, loop
                lw t2, 0x100(zero)
                sw t2, 0(zero)
                ecall
            "#,
            0,
            64,
        ),
        (
            "gcd",
            r#"
                li a2, 1071
                li a3, 462
            loop:
                beqz a3, done
                rem  t0, a2, a3
                mv   a2, a3
                mv   a3, t0
                j    loop
            done:
                sw   a2, 0(zero)
                ecall
            "#,
            0,
            21,
        ),
        (
            "popcount",
            r#"
                li t0, 0xDEADBEEF
                li t1, 0
            loop:
                andi t2, t0, 1
                add  t1, t1, t2
                srli t0, t0, 1
                bnez t0, loop
                sw   t1, 0(zero)
                ecall
            "#,
            0,
            0xDEAD_BEEFu32.count_ones(),
        ),
        (
            "bubble_sort_check",
            r#"
            .data
            arr:
                .word 5, 2, 9, 1, 7, 3
            .text
                la   s0, arr
                li   s1, 6
                li   t0, 0
            outer:
                li   t1, 0
            inner:
                addi t2, s1, -1
                bge  t1, t2, next
                slli t3, t1, 2
                add  t3, t3, s0
                lw   t4, 0(t3)
                lw   t5, 4(t3)
                ble  t4, t5, noswap
                sw   t5, 0(t3)
                sw   t4, 4(t3)
            noswap:
                addi t1, t1, 1
                j    inner
            next:
                addi t0, t0, 1
                blt  t0, s1, outer
                lw   t6, 0(s0)
                sw   t6, 0(zero)
                ecall
            "#,
            0,
            1,
        ),
    ];
    for &(name, src, addr, expected) in suite {
        let program = assemble(src).unwrap();
        let mut cpu = Diag::new(DiagConfig::i4c2());
        let stats = cpu
            .run(&program, 1)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(cpu.read_word(addr), expected, "{name}");
        assert!(stats.cycles > 0 && stats.committed > 0, "{name}");
    }
}
