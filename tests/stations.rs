//! Station-layer integration tests: the predecoded PE-station arenas
//! must (a) charge decode energy once per *population*, not once per
//! dynamic instruction, (b) lower every decodable instruction without
//! losing operand or latency metadata, and (c) execute bit-identically
//! to the independently-written architectural interpreter.

use diag::asm::{assemble, Program, ProgramBuilder};
use diag::core::{Diag, DiagConfig};
use diag::isa::prng::SplitMix64;
use diag::isa::regs::*;
use diag::isa::{decode, AluOp, Inst, Reg, Station, StationTable};
use diag::mem::MainMemory;
use diag::sim::interp::{arch_step, station_step, ArchState};
use diag::sim::Machine;

/// A single-line counted loop with `trips` iterations.
fn loop_program(trips: u32) -> Program {
    assemble(&format!(
        r#"
            li   t0, {trips}
            li   t1, 0
        loop:
            add  t1, t1, t0
            addi t0, t0, -1
            bnez t0, loop
            sw   t1, 0(zero)
            ecall
        "#
    ))
    .unwrap()
}

/// `Decodes` counts station populations — one per decodable (cluster,
/// slot) filled when a line becomes resident — so a loop that stays
/// resident charges the same decode energy at 10 trips as at 100, while
/// the reuse counter keeps growing with the dynamic instruction count.
#[test]
fn decodes_count_populations_not_dynamic_instructions() {
    let static_insts = 7; // the loop above assembles to 7 words in one line
    let mut short = Diag::new(DiagConfig::f4c2());
    let mut long = Diag::new(DiagConfig::f4c2());
    let s = short.run(&loop_program(10), 1).unwrap();
    let l = long.run(&loop_program(100), 1).unwrap();

    assert_eq!(s.activity.decodes, static_insts);
    assert_eq!(l.activity.decodes, static_insts);
    assert!(l.committed > s.committed);
    assert!(
        l.activity.reuse_commits > s.activity.reuse_commits,
        "reuse grows with trips: {} vs {}",
        l.activity.reuse_commits,
        s.activity.reuse_commits
    );
}

/// Multi-line programs charge one decode per decodable slot of every
/// populated line: straight-line code that spans lines and runs once
/// decodes exactly its static instruction count.
#[test]
fn decodes_equal_static_instructions_for_straight_line_code() {
    let mut b = ProgramBuilder::new();
    // 40 instructions: well past one 16-slot line.
    for i in 0..39 {
        b.addi(T0, T0, i % 7);
    }
    b.ecall();
    let program = b.build().unwrap();
    let mut cpu = Diag::new(DiagConfig::f4c32());
    let stats = cpu.run(&program, 1).unwrap();
    assert_eq!(stats.committed, 40);
    assert_eq!(stats.activity.decodes, 40);
    assert_eq!(stats.activity.reuse_commits, 0);
}

/// Golden lowering check: for every decodable word, the flat [`Station`]
/// record preserves the instruction's operand set, writeback lane,
/// latency class, and functional-unit metadata. Driven by a PRNG sweep
/// wide enough to hit every instruction-format family.
#[test]
fn station_lowering_round_trips_metadata() {
    let mut rng = SplitMix64::seed_from_u64(0x57A7_1077);
    let mut covered = std::collections::HashSet::new();
    let mut checked = 0u32;
    while checked < 20_000 {
        let word = rng.next_u64() as u32;
        let Ok(inst) = decode(word) else { continue };
        checked += 1;
        covered.insert(std::mem::discriminant(&inst));
        let st = Station::lower(inst, 0x1000, |_| None);
        assert_eq!(st.inst, inst, "station must carry the decoded inst");
        assert_eq!(st.srcs, inst.sources(), "sources of {inst:?}");
        assert_eq!(st.dest, inst.dest(), "dest of {inst:?}");
        assert_eq!(st.latency, inst.exec_latency(), "latency of {inst:?}");
        assert_eq!(st.fu, inst.fu_kind(), "fu kind of {inst:?}");
        assert_eq!(st.uses_fpu, inst.uses_fpu(), "fpu flag of {inst:?}");
        assert_eq!(st.is_mem, inst.is_mem(), "mem flag of {inst:?}");
    }
    // The sweep must have exercised a healthy spread of variants, or the
    // assertions above prove nothing.
    assert!(
        covered.len() >= 15,
        "only {} instruction variants covered",
        covered.len()
    );
}

/// Registers random programs may clobber.
const POOL: [Reg; 10] = [T0, T1, T2, T3, T4, S2, S3, S4, S5, S6];

const ALU_OPS: [AluOp; 10] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Xor,
    AluOp::Or,
    AluOp::And,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Slt,
    AluOp::Mul,
    AluOp::Rem,
];

/// Builds a terminating random program: seeded registers, a counted loop
/// around a random ALU/memory/branch body, then `ecall`.
fn random_program(rng: &mut SplitMix64) -> Program {
    let mut b = ProgramBuilder::new();
    let scratch = b.data_zeroed("scratch", 64);
    for &reg in &POOL {
        b.li(reg, rng.gen_range(-500i32..500));
    }
    b.li(S11, scratch as i32);
    b.li(S10, rng.gen_range(1i32..5));
    let top = b.bind_new_label();
    let body = rng.gen_range(1usize..16);
    for _ in 0..body {
        let d = POOL[rng.gen_range(0usize..POOL.len())];
        let a = POOL[rng.gen_range(0usize..POOL.len())];
        let c = POOL[rng.gen_range(0usize..POOL.len())];
        match rng.gen_range(0u32..5) {
            0 => b.inst(Inst::Op {
                op: ALU_OPS[rng.gen_range(0usize..ALU_OPS.len())],
                rd: d,
                rs1: a,
                rs2: c,
            }),
            1 => b.addi(d, a, rng.gen_range(-64i32..64)),
            2 => b.sw(a, S11, 4 * rng.gen_range(0i32..16)),
            3 => b.lw(d, S11, 4 * rng.gen_range(0i32..16)),
            _ => {
                let skip = b.new_label();
                b.beq(a, c, skip);
                b.addi(a, a, 1);
                b.bind(skip);
            }
        }
    }
    b.addi(S10, S10, -1);
    b.bnez(S10, top);
    b.ecall();
    b.build().expect("generated program must assemble")
}

/// Lockstep differential test: the station interpreter must match the
/// decode-per-step reference instruction for instruction — same PC
/// stream, same redirects, same writebacks, same final registers and
/// memory — on randomized programs.
#[test]
fn random_programs_station_path_matches_reference() {
    let mut rng = SplitMix64::seed_from_u64(0x57A7_2002);
    for case in 0..32 {
        let program = random_program(&mut rng);
        let stations = StationTable::build(program.text_base(), program.text());
        let mut ref_state = ArchState::new_thread(program.entry(), 0, 1);
        let mut st_state = ref_state.clone();
        let mut ref_mem = MainMemory::with_program(&program);
        let mut st_mem = MainMemory::with_program(&program);
        let mut steps = 0u64;
        while !ref_state.halted {
            let r = arch_step(&mut ref_state, &program, &mut ref_mem, None).unwrap();
            let s = station_step(&mut st_state, &stations, &mut st_mem, None).unwrap();
            assert_eq!(r.pc, s.pc, "case {case} step {steps}");
            assert_eq!(
                r.next_pc, s.next_pc,
                "case {case} step {steps} at {:#x}",
                r.pc
            );
            assert_eq!(r.redirected, s.redirected, "case {case} step {steps}");
            // The station path reports no x0 writeback; filter both sides.
            assert_eq!(
                r.dest.filter(|(lane, _)| !lane.is_zero()),
                s.dest,
                "case {case} step {steps} at {:#x}",
                r.pc
            );
            assert_eq!(r.mem, s.mem, "case {case} step {steps} at {:#x}", r.pc);
            steps += 1;
            assert!(steps < 1_000_000, "case {case} runaway");
        }
        assert!(st_state.halted, "case {case}: station path must halt too");
        assert_eq!(ref_state.pc, st_state.pc, "case {case} final pc");
        for lane in 0..diag::isa::NUM_LANES {
            assert_eq!(
                ref_state.regs[lane], st_state.regs[lane],
                "case {case} lane {lane}"
            );
        }
        let scratch = program.symbol("scratch").unwrap();
        for slot in 0..16u32 {
            assert_eq!(
                ref_mem.read_u32(scratch + 4 * slot),
                st_mem.read_u32(scratch + 4 * slot),
                "case {case} scratch slot {slot}"
            );
        }
    }
}

/// Out-of-text and illegal-word errors must match between the two
/// interpreters (the station table reports them from the predecoded
/// slots rather than the decoder).
#[test]
fn station_errors_match_reference() {
    let program = assemble("nop\necall\n").unwrap();
    let stations = StationTable::build(program.text_base(), program.text());
    let mut mem = MainMemory::with_program(&program);

    // A PC outside the text segment errors identically on both paths.
    let oob = program.text_end() + 64;
    let mut a = ArchState::new_thread(oob, 0, 1);
    let mut b = a.clone();
    let ra = arch_step(&mut a, &program, &mut mem, None).unwrap_err();
    let rb = station_step(&mut b, &stations, &mut mem, None).unwrap_err();
    assert_eq!(format!("{ra:?}"), format!("{rb:?}"));

    // An undecodable word is pinned at build time as an `Illegal` slot
    // and reported with the same addr/word payload the decoder would use.
    let bad_word = 0xffff_ffffu32;
    assert!(decode(bad_word).is_err());
    let table = StationTable::build(0x1000, &[bad_word]);
    let mut c = ArchState::new_thread(0x1000, 0, 1);
    match station_step(&mut c, &table, &mut mem, None).unwrap_err() {
        diag::sim::SimError::IllegalInstruction { addr, word } => {
            assert_eq!(addr, 0x1000);
            assert_eq!(word, bad_word);
        }
        other => panic!("expected IllegalInstruction, got {other:?}"),
    }
}

/// The station arenas must not disturb SIMT region execution, and SIMT
/// decode accounting is per station population too: an 8-iteration and a
/// 64-iteration run of the same pipelined region charge identical decode
/// energy while committing very different dynamic instruction counts.
#[test]
fn simt_region_decodes_once_across_instances() {
    fn counted_region(n: i32) -> Program {
        let mut b = ProgramBuilder::new();
        let data = b.data_zeroed("out", 4 * 64);
        b.li(S5, data as i32);
        b.li(T0, 0);
        b.li(T1, 1);
        b.li(T2, n);
        let head = b.bind_new_label();
        b.simt_s(T0, T1, T2, 1);
        b.slli(T3, T0, 2);
        b.add(T4, S5, T3);
        b.sw(T0, T4, 0);
        b.simt_e(T0, T2, head);
        b.ecall();
        b.build().unwrap()
    }
    let mut short = Diag::new(DiagConfig::f4c32());
    let mut long = Diag::new(DiagConfig::f4c32());
    let s = short.run(&counted_region(8), 1).unwrap();
    let l = long.run(&counted_region(64), 1).unwrap();
    let out = counted_region(64).symbol("out").unwrap();
    for i in 0..64u32 {
        assert_eq!(long.read_word(out + 4 * i), i, "instance {i}");
    }
    assert!(l.committed > s.committed);
    assert_eq!(
        s.activity.decodes, l.activity.decodes,
        "decode energy is per population, not per SIMT instance"
    );
    assert!(
        l.activity.decodes <= 2 * 10,
        "a 10-instruction program must not decode more than its populated stations, got {}",
        l.activity.decodes
    );
}
