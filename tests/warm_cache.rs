//! Warm-cache acceptance tests: a session that already holds an
//! artifact must perform **zero** workload assemblies and **zero**
//! whole-text station-table lowerings when asked again — counted by the
//! process-global build hooks ([`diag_workloads::build_calls`],
//! [`diag_isa::station_table_builds`]), the same technique as the
//! zero-decode hot-loop test.
//!
//! These live in their own test binary: the counters are process-global,
//! so each test takes before/after deltas and the assertions only hold
//! when no unrelated test is assembling concurrently — `cargo test`
//! runs each integration-test binary's tests in one process, and every
//! test here tolerates only its own session's work between its fences.

use std::sync::Mutex;

use diag_bench::runner::{run_verified_with, MachineSpec};
use diag_bench::sweep::Sweep;
use diag_pipeline::Session;
use diag_workloads::{find, Params};

/// Counter fences are process-global, so the tests in this binary must
/// not interleave their measured regions.
static SERIAL: Mutex<()> = Mutex::new(());

fn counters() -> (u64, u64) {
    (
        diag_workloads::build_calls(),
        diag_isa::station_table_builds(),
    )
}

#[test]
fn warm_runs_assemble_and_lower_nothing() {
    let _guard = SERIAL.lock().unwrap();
    let session = Session::in_memory();
    let spec = find("hotspot").expect("registered");
    let params = Params::tiny();
    let machines = [
        MachineSpec::Diag(diag_core::DiagConfig::f4c32()),
        MachineSpec::Ooo(1),
        MachineSpec::InOrder,
    ];

    // Cold: one assembly for the program, one lowering shared by both
    // baselines (DiAG populates stations per-cluster at line-load time
    // and never builds a whole-text table).
    let (builds0, lowers0) = counters();
    for kind in &machines {
        run_verified_with(&session, kind, &spec, &params).expect("cold run");
    }
    let (builds1, lowers1) = counters();
    assert_eq!(
        builds1 - builds0,
        1,
        "cold sweep must assemble exactly once"
    );
    assert_eq!(lowers1 - lowers0, 1, "cold sweep must lower exactly once");

    // Warm: every artifact is already keyed — zero of either.
    for kind in &machines {
        run_verified_with(&session, kind, &spec, &params).expect("warm run");
    }
    let (builds2, lowers2) = counters();
    assert_eq!(builds2 - builds1, 0, "warm runs must not assemble");
    assert_eq!(lowers2 - lowers1, 0, "warm runs must not re-lower");
}

#[test]
fn parallel_sweep_shares_one_preparation_per_key() {
    let _guard = SERIAL.lock().unwrap();
    let spec = find("bfs").expect("registered");
    let params = Params::tiny();

    let mut sweep = Sweep::new();
    for _ in 0..4 {
        sweep.add(MachineSpec::InOrder, spec, params);
        sweep.add(MachineSpec::Ooo(1), spec, params);
    }
    let (builds0, lowers0) = counters();
    let session = Session::in_memory();
    let results = sweep.execute_with(&session, 4);
    assert!(results.failures().is_empty());
    let (builds1, lowers1) = counters();
    assert_eq!(
        builds1 - builds0,
        1,
        "8 queued runs across 4 workers must share one assembly"
    );
    assert_eq!(
        lowers1 - lowers0,
        1,
        "8 queued runs across 4 workers must share one lowering"
    );
    let c = session.counters();
    assert_eq!(c.workloads.builds, 1);
    // Duplicate (machine, workload, params) keys that lose the race are
    // answered by the run-stage memo without touching the workload
    // stage; every run that *did* execute shared the single assembly.
    assert_eq!(
        c.runs.hits + c.runs.builds,
        8,
        "every queued run resolves: {c:?}"
    );
    assert_eq!(
        c.workloads.hits,
        c.runs.builds - 1,
        "executed runs must share one assembly: {c:?}"
    );
}

#[test]
fn warm_verification_runs_zero_fixpoints() {
    let _guard = SERIAL.lock().unwrap();
    let dir = std::env::temp_dir().join(format!("diag-warm-verify-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = find("pathfinder").expect("registered");
    let params = Params::tiny();
    let opts = diag_verify::VerifyOptions::default();

    // Cold session: exactly one fixpoint run, persisted to disk.
    let fix0 = diag_verify::fixpoint_runs();
    let first = {
        let session = Session::with_disk(
            diag_pipeline::DiskCache::open(&dir, diag_pipeline::DiskCache::DEFAULT_BUDGET)
                .expect("cache dir"),
        );
        let v = session.verification(&spec, &params, &opts).expect("cold");
        // In-process warm: the memoized Arc is returned, no re-analysis.
        session.verification(&spec, &params, &opts).expect("warm");
        let fix1 = diag_verify::fixpoint_runs();
        assert_eq!(fix1 - fix0, 1, "cold+memoized must run one fixpoint");
        session
            .verification_report(&spec, &params, &opts, diag_pipeline::ReportFormat::Json)
            .expect("report");
        v
    };

    // A fresh session over the same directory decodes the blob instead
    // of re-running the abstract interpreter — and decodes it *exactly*:
    // facts, intervals, and loops all round-trip.
    let session = Session::with_disk(
        diag_pipeline::DiskCache::open(&dir, diag_pipeline::DiskCache::DEFAULT_BUDGET)
            .expect("cache dir"),
    );
    let (builds0, _) = counters();
    let fix2 = diag_verify::fixpoint_runs();
    let warm = session
        .verification(&spec, &params, &opts)
        .expect("disk-warm");
    let report = session
        .verification_report(&spec, &params, &opts, diag_pipeline::ReportFormat::Json)
        .expect("disk-warm report");
    let (builds1, _) = counters();
    let fix3 = diag_verify::fixpoint_runs();
    assert_eq!(fix3 - fix2, 0, "disk-warm verification must not re-verify");
    assert_eq!(
        builds1 - builds0,
        0,
        "disk-warm verification must not assemble"
    );
    assert!(session.counters().disk_hits >= 2);
    assert_eq!(first.facts, warm.facts, "decoded facts drifted");
    assert_eq!(first.iterations, warm.iterations);
    assert_eq!(
        report.as_str(),
        diag_verify::json_report(spec.name, &warm),
        "persisted report must match a fresh rendering of the decoded artifact"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_disk_session_serves_analysis_without_assembly() {
    let _guard = SERIAL.lock().unwrap();
    let dir = std::env::temp_dir().join(format!("diag-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = find("nn").expect("registered");
    let params = Params::tiny();
    let opts = diag_analyze::AnalyzeOptions::default();

    // Cold session populates the disk layer.
    {
        let session = Session::with_disk(
            diag_pipeline::DiskCache::open(&dir, diag_pipeline::DiskCache::DEFAULT_BUDGET)
                .expect("cache dir"),
        );
        session.workload(&spec, &params).expect("build");
        session
            .analysis_report(&spec, &params, &opts, diag_pipeline::ReportFormat::Json)
            .expect("report");
    }

    // A fresh session over the same directory — as a new process would
    // see it — renders the identical report with zero assemblies.
    let session = Session::with_disk(
        diag_pipeline::DiskCache::open(&dir, diag_pipeline::DiskCache::DEFAULT_BUDGET)
            .expect("cache dir"),
    );
    let (builds0, _) = counters();
    let report = session
        .analysis_report(&spec, &params, &opts, diag_pipeline::ReportFormat::Json)
        .expect("warm report");
    let (builds1, _) = counters();
    assert_eq!(builds1 - builds0, 0, "warm report must not assemble");
    assert!(report.contains("nn"));
    assert!(session.counters().disk_hits >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}
