//! End-to-end integration tests across the whole workspace: assemble →
//! run on every machine → verify memory, exercising the public facade API
//! exactly as a downstream user would.

use diag::asm::{assemble, ProgramBuilder};
use diag::baseline::{InOrder, O3Config, OooCpu};
use diag::core::{Diag, DiagConfig};
use diag::isa::regs::*;
use diag::sim::Machine;

fn machines() -> Vec<Box<dyn Machine>> {
    vec![
        Box::new(InOrder::new()),
        Box::new(OooCpu::new(O3Config::aggressive_8wide(), 2)),
        Box::new(OooCpu::new(O3Config::modest_4wide(), 2)),
        Box::new(Diag::new(DiagConfig::i4c2())),
        Box::new(Diag::new(DiagConfig::f4c2())),
        Box::new(Diag::new(DiagConfig::f4c16())),
        Box::new(Diag::new(DiagConfig::f4c32())),
    ]
}

#[test]
fn factorial_on_every_machine() {
    let program = assemble(
        r#"
            li   t0, 10
            li   t1, 1
        loop:
            mul  t1, t1, t0
            addi t0, t0, -1
            bnez t0, loop
            sw   t1, 0(zero)
            ecall
        "#,
    )
    .unwrap();
    for mut m in machines() {
        let stats = m.run(&program, 1).unwrap();
        assert_eq!(m.read_word(0), 3_628_800, "10! on {}", m.name());
        assert_eq!(stats.committed, 2 + 30 + 2, "commit count on {}", m.name());
    }
}

#[test]
fn recursive_fibonacci_exercises_call_stack() {
    // fib(12) with a real call stack: recursion stresses jal/jalr, the
    // RAS in the baseline, and sp-relative memory on all machines.
    let program = assemble(
        r#"
            li   a0, 12
            call fib
            sw   a0, 0(zero)
            ecall
        fib:
            li   t0, 2
            blt  a0, t0, base
            addi sp, sp, -12
            sw   ra, 0(sp)
            sw   a0, 4(sp)
            addi a0, a0, -1
            call fib
            sw   a0, 8(sp)
            lw   a0, 4(sp)
            addi a0, a0, -2
            call fib
            lw   t1, 8(sp)
            add  a0, a0, t1
            lw   ra, 0(sp)
            addi sp, sp, 12
            ret
        base:
            ret
        "#,
    )
    .unwrap();
    for mut m in machines() {
        m.run(&program, 1).unwrap();
        assert_eq!(m.read_word(0), 144, "fib(12) on {}", m.name());
    }
}

#[test]
fn fp_machines_agree_bit_for_bit() {
    // Mixed FP pipeline: every machine must produce identical bits.
    let program = assemble(
        r#"
        .data
        input:
            .float 1.5, -2.25, 3.125, 0.875, -4.5, 9.75, 0.0625, -7.125
        .text
            la   a2, input
            li   t0, 8
            fmv.w.x ft0, zero
        loop:
            flw  ft1, 0(a2)
            fmadd.s ft0, ft1, ft1, ft0
            addi a2, a2, 4
            addi t0, t0, -1
            bnez t0, loop
            fsqrt.s ft2, ft0
            fsw  ft2, 0(zero)
            fsw  ft0, 4(zero)
            ecall
        "#,
    )
    .unwrap();
    let mut reference: Option<(u32, u32)> = None;
    for mut m in machines().drain(..).skip(3) {
        // FP machines only (skip the integer-only check below).
        if m.name() == "diag-i4c2" {
            continue;
        }
        m.run(&program, 1).unwrap();
        let got = (m.read_word(0), m.read_word(4));
        match reference {
            None => reference = Some(got),
            Some(want) => assert_eq!(got, want, "FP divergence on {}", m.name()),
        }
    }
    // And against host arithmetic (same operation order).
    let inputs = [1.5f32, -2.25, 3.125, 0.875, -4.5, 9.75, 0.0625, -7.125];
    let mut acc = 0.0f32;
    for x in inputs {
        acc = x.mul_add(x, acc);
    }
    assert_eq!(reference.unwrap().1, acc.to_bits());
    assert_eq!(reference.unwrap().0, acc.sqrt().to_bits());
}

#[test]
fn thread_convention_holds_everywhere() {
    // Each thread writes a0 (tid), a1 (count), and its sp to a private slot.
    let mut b = ProgramBuilder::new();
    let out = b.data_zeroed("out", 12 * 8);
    b.li(T0, 12);
    b.mul(T0, A0, T0);
    b.li(T1, out as i32);
    b.add(T1, T1, T0);
    b.sw(A0, T1, 0);
    b.sw(A1, T1, 4);
    b.sw(SP, T1, 8);
    b.ecall();
    let program = b.build().unwrap();
    for mut m in machines() {
        m.run(&program, 8).unwrap();
        for t in 0..8u32 {
            let base = out + 12 * t;
            assert_eq!(m.read_word(base), t, "tid on {}", m.name());
            assert_eq!(m.read_word(base + 4), 8, "count on {}", m.name());
            assert_eq!(
                m.read_word(base + 8),
                diag::asm::STACK_TOP - t * diag::asm::STACK_STRIDE,
                "sp on {}",
                m.name()
            );
        }
    }
}

#[test]
fn diag_scales_with_independent_threads() {
    // A compute loop per thread: 12 threads on the full machine should be
    // far faster than 12 threads time-sliced on one ring.
    let program = assemble(
        r#"
            li   t0, 3000
            li   t1, 0
        loop:
            add  t1, t1, t0
            addi t0, t0, -1
            bnez t0, loop
            slli t2, a0, 2
            sw   t1, 0(t2)
            ecall
        "#,
    )
    .unwrap();
    let mut big = Diag::new(DiagConfig::f4c32());
    let s12 = big.run(&program, 12).unwrap();
    let mut small = Diag::new(DiagConfig::f4c2());
    let s_small = small.run(&program, 12).unwrap();
    for t in 0..12u32 {
        assert_eq!(big.read_word(4 * t), 3000 * 3001 / 2);
        assert_eq!(small.read_word(4 * t), 3000 * 3001 / 2);
    }
    assert!(
        s12.cycles * 4 < s_small.cycles,
        "12 rings ({}) should handily beat 1 ring time-sliced ({})",
        s12.cycles,
        s_small.cycles
    );
}

#[test]
fn disassembly_reassembles_identically() {
    // Program::listing() text round-trips through the assembler for a
    // program with every major instruction class.
    let program = assemble(
        r#"
            li   t0, 1000
            lui  t1, 0x12345
            auipc t2, 0
            lw   t3, 0(zero)
            sb   t3, 8(zero)
            beq  t0, t1, skip
            mul  t4, t0, t0
        skip:
            flw  ft0, 0(zero)
            fmadd.s ft1, ft0, ft0, ft0
            fcvt.w.s t5, ft1
            ecall
        "#,
    )
    .unwrap();
    // Re-assemble each disassembled line (addresses stripped).
    let listing = program.listing();
    let mut text = String::new();
    for line in listing.lines() {
        let asm_part = line.split("  ").nth(1).unwrap();
        text.push_str(asm_part);
        text.push('\n');
    }
    let again = assemble(&text).unwrap();
    assert_eq!(
        program.text(),
        again.text(),
        "reassembled words differ:\n{listing}"
    );
}
