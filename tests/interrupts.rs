//! Precise interrupt and exception handling on DiAG (paper §5.1.4).

use diag::asm::assemble;
use diag::core::{Diag, DiagConfig};
use diag::sim::{Machine, SimError};

/// A long-running loop that records its progress; the interrupt handler
/// stores a marker and the interrupted PC, then halts.
const PROGRAM: &str = r#"
        li   t0, 0
        li   t1, 100000
    loop:
        addi t0, t0, 1
        sw   t0, 0(zero)
        blt  t0, t1, loop
        ecall
    handler:
        li   t2, 0xFEED
        sw   t2, 4(zero)
        sw   gp, 8(zero)
        ecall
"#;

fn handler_addr(program: &diag::asm::Program) -> u32 {
    // `handler:` is instruction index 6 (li expands to one addi; li t1
    // with 100000 expands to lui+addi).
    let base = program.text_base();
    // Find it by scanning for the `li t2, 0xFEED` prologue: the first
    // `lui` after the ecall. Simpler: symbol-free scan for the second
    // ecall, then handler is right after the first ecall.
    let mut first_ecall = None;
    for i in 0..program.text_len() as u32 {
        if program.decode_at(base + 4 * i) == Some(diag::isa::Inst::Ecall) {
            first_ecall = Some(base + 4 * i);
            break;
        }
    }
    first_ecall.expect("program has an ecall") + 4
}

#[test]
fn asynchronous_interrupt_is_precise() {
    let program = assemble(PROGRAM).unwrap();
    let mut cfg = DiagConfig::f4c32();
    cfg.interrupt_at = Some((500, handler_addr(&program)));
    let mut cpu = Diag::new(cfg);
    cpu.run(&program, 1).unwrap();

    // The handler ran.
    assert_eq!(cpu.read_word(4), 0xFEED);
    // Precision: the counter at address 0 reflects a consistent prefix of
    // the loop — some iterations completed, not all.
    let progress = cpu.read_word(0);
    assert!(progress > 0, "some loop iterations retired before the trap");
    assert!(progress < 100_000, "the interrupt cut the loop short");
    // The saved interrupt PC points into the loop body (between the first
    // instruction and the first ecall).
    let epc = cpu.read_word(8);
    assert!(
        epc >= program.text_base() && epc < handler_addr(&program) - 4,
        "epc {epc:#x}"
    );
}

#[test]
fn interrupt_before_start_fires_immediately() {
    let program = assemble(PROGRAM).unwrap();
    let mut cfg = DiagConfig::f4c2();
    cfg.interrupt_at = Some((0, handler_addr(&program)));
    let mut cpu = Diag::new(cfg);
    cpu.run(&program, 1).unwrap();
    assert_eq!(cpu.read_word(4), 0xFEED);
    assert_eq!(
        cpu.read_word(0),
        0,
        "no loop iteration retired before cycle 0"
    );
}

#[test]
fn without_interrupt_the_loop_completes() {
    let program = assemble(PROGRAM).unwrap();
    let mut cpu = Diag::new(DiagConfig::f4c32());
    cpu.run(&program, 1).unwrap();
    assert_eq!(cpu.read_word(0), 100_000);
    assert_eq!(cpu.read_word(4), 0, "handler never ran");
}

#[test]
fn ebreak_trap_vector_and_halt_modes() {
    let program = assemble(
        r#"
            li  t0, 7
            ebreak
            sw  t0, 0(zero)
            ecall
        trap:
            li  t1, 42
            sw  t1, 4(zero)
            ecall
        "#,
    )
    .unwrap();
    // Without a vector, ebreak halts: neither store runs.
    let mut plain = Diag::new(DiagConfig::f4c2());
    plain.run(&program, 1).unwrap();
    assert_eq!(plain.read_word(0), 0);
    assert_eq!(plain.read_word(4), 0);
    // With a vector, the handler runs (trap label = instruction index 5:
    // li t0; ebreak; sw; ecall; then trap).
    let mut cfg = DiagConfig::f4c2();
    cfg.trap_vector = Some(program.text_base() + 4 * 4);
    let mut vectored = Diag::new(cfg);
    vectored.run(&program, 1).unwrap();
    assert_eq!(vectored.read_word(4), 42);
    assert_eq!(vectored.read_word(0), 0, "the skipped store never retires");
}

#[test]
fn misaligned_accesses_fault_everywhere() {
    use diag::baseline::{InOrder, OooCpu};
    let program = assemble("li t0, 2\nlw t1, 0(t0)\necall\n").unwrap();
    let mut diag = Diag::new(DiagConfig::f4c2());
    assert!(matches!(
        diag.run(&program, 1),
        Err(SimError::Misaligned { addr: 2, size: 4 })
    ));
    let mut ooo = OooCpu::paper_baseline();
    assert!(matches!(
        ooo.run(&program, 1),
        Err(SimError::Misaligned { addr: 2, size: 4 })
    ));
    let mut io = InOrder::new();
    assert!(matches!(
        io.run(&program, 1),
        Err(SimError::Misaligned { addr: 2, size: 4 })
    ));
}
