//! Integration tests of the steppable-machine interface: explicit
//! `load`/`step` loops on every machine over a real Rodinia kernel,
//! lockstep differential execution (including a deliberately corrupted
//! machine), and determinism of the parallel experiment runner across
//! job counts.

use diag::baseline::{InOrder, O3Config, OooCpu};
use diag::bench::runner::MachineSpec;
use diag::bench::sweep::Sweep;
use diag::core::{Diag, DiagConfig};
use diag::sim::{run_lockstep, Commit, LockstepOutcome, Machine, RunStats, SimError, StepOutcome};
use diag::workloads::{find, Params};

fn machines() -> Vec<Box<dyn Machine>> {
    vec![
        Box::new(InOrder::new()),
        Box::new(OooCpu::new(O3Config::aggressive_8wide(), 2)),
        Box::new(Diag::new(DiagConfig::f4c32())),
    ]
}

/// A Rodinia kernel driven through the explicit load/step loop on all
/// three machine models: each step must make observable progress, the
/// final stats must match `run()`, and the kernel's own verifier must
/// pass on the stepped machine.
#[test]
fn rodinia_kernel_via_explicit_stepping() {
    let spec = find("hotspot").expect("registered workload");
    let built = spec.build(&Params::tiny()).expect("build");
    for mut m in machines() {
        let name = m.name();
        m.load(&built.program, 1);
        let mut steps = 0u64;
        let mut last_committed = 0u64;
        while let StepOutcome::Running = m
            .step()
            .unwrap_or_else(|e| panic!("{name}: step failed: {e}"))
        {
            steps += 1;
            let committed = m.stats().committed;
            assert!(
                committed >= last_committed,
                "{name}: committed count went backwards"
            );
            last_committed = committed;
        }
        let stats = m.stats();
        assert!(steps > 0, "{name}: halted without stepping");
        assert!(stats.committed > 0, "{name}: nothing committed");
        assert!(stats.cycles > 0, "{name}: no cycles");
        (built.verify)(m.as_ref())
            .unwrap_or_else(|e| panic!("{name}: kernel verification failed: {e}"));

        // Stepping a halted machine is an error, not a silent no-op.
        assert!(matches!(m.step(), Err(SimError::NotLoaded)), "{name}");

        // A fresh load fully resets the machine: same program, same stats.
        m.load(&built.program, 1);
        let mut rerun_steps = 0u64;
        while !m.step().expect("rerun step").is_halted() {
            rerun_steps += 1;
        }
        let rerun = m.stats();
        assert_eq!(rerun.cycles, stats.cycles, "{name}: reload changed timing");
        assert_eq!(rerun.committed, stats.committed, "{name}");
        assert_eq!(rerun_steps, steps, "{name}: reload changed step count");
    }
}

/// Stepping before any `load` is an error on every machine.
#[test]
fn step_before_load_errors() {
    for mut m in machines() {
        assert!(matches!(m.step(), Err(SimError::NotLoaded)), "{}", m.name());
    }
}

/// DiAG and the out-of-order baseline both agree with the in-order
/// reference retirement-for-retirement on a real kernel.
#[test]
fn lockstep_agrees_on_rodinia_kernel() {
    let spec = find("bfs").expect("registered workload");
    let built = spec.build(&Params::tiny()).expect("build");
    for mut left in [
        Box::new(Diag::new(DiagConfig::f4c2())) as Box<dyn Machine>,
        Box::new(OooCpu::new(O3Config::aggressive_8wide(), 1)),
    ] {
        let name = left.name();
        let mut reference = InOrder::new();
        let outcome = run_lockstep(left.as_mut(), &mut reference, &built.program, 1, u64::MAX)
            .unwrap_or_else(|e| panic!("{name}: lockstep run failed: {e}"));
        match outcome {
            LockstepOutcome::Agree { commits } => {
                assert!(
                    commits > 100,
                    "{name}: suspiciously short stream ({commits})"
                );
            }
            LockstepOutcome::Diverged(d) => panic!("{name}: {d}"),
        }
    }
}

/// A machine that delegates to the in-order reference but corrupts the
/// destination value of one retirement — the kind of single-instruction
/// timing-model bug lockstep exists to catch.
struct CorruptedMachine {
    inner: InOrder,
    /// 1-based index of the retirement whose dest value gets flipped.
    corrupt_at: u64,
    seen: u64,
}

impl CorruptedMachine {
    fn new(corrupt_at: u64) -> CorruptedMachine {
        CorruptedMachine {
            inner: InOrder::new(),
            corrupt_at,
            seen: 0,
        }
    }
}

impl Machine for CorruptedMachine {
    fn name(&self) -> String {
        "corrupted-inorder".to_string()
    }

    fn load(&mut self, program: &diag::asm::Program, threads: usize) {
        self.seen = 0;
        self.inner.load(program, threads);
    }

    fn step(&mut self) -> Result<StepOutcome, SimError> {
        self.inner.step()
    }

    fn stats(&self) -> RunStats {
        self.inner.stats()
    }

    fn set_commit_log(&mut self, enabled: bool) {
        self.inner.set_commit_log(enabled);
    }

    fn take_commits(&mut self) -> Vec<Commit> {
        let mut commits = self.inner.take_commits();
        for c in &mut commits {
            self.seen += 1;
            if self.seen == self.corrupt_at {
                if let Some((reg, value)) = c.dest {
                    c.dest = Some((reg, value ^ 1));
                }
            }
        }
        commits
    }

    fn read_word(&self, addr: u32) -> u32 {
        self.inner.read_word(addr)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Lockstep pinpoints the first corrupted retirement: right thread, right
/// index, both values in the report.
#[test]
fn lockstep_reports_first_divergence() {
    let spec = find("nw").expect("registered workload");
    let built = spec.build(&Params::tiny()).expect("build");
    // Pick a retirement that writes a register (stores/branches carry no
    // dest): walk the reference stream for the first suitable index past
    // 50 retirements.
    let mut probe = InOrder::new();
    probe.set_commit_log(true);
    probe.load(&built.program, 1);
    let mut index = None;
    let mut seen = 0u64;
    'outer: while !probe.step().expect("probe").is_halted() {
        for c in probe.take_commits() {
            seen += 1;
            if seen > 50 && c.dest.is_some() {
                index = Some(seen);
                break 'outer;
            }
        }
    }
    let corrupt_at = index.expect("kernel has register writes");

    let mut left = CorruptedMachine::new(corrupt_at);
    let mut reference = InOrder::new();
    let outcome =
        run_lockstep(&mut left, &mut reference, &built.program, 1, u64::MAX).expect("lockstep run");
    let LockstepOutcome::Diverged(d) = outcome else {
        panic!("corruption at retirement {corrupt_at} went undetected");
    };
    assert_eq!(d.thread, 0);
    assert_eq!(d.index, corrupt_at - 1, "divergence index is zero-based");
    let (l, r) = (
        d.left.expect("left retired"),
        d.right.expect("reference retired"),
    );
    assert_eq!(l.pc, r.pc, "same instruction, different value");
    assert_eq!(
        l.dest.expect("dest").1 ^ 1,
        r.dest.expect("dest").1,
        "report carries both values"
    );
    // And the report is human-readable.
    let text = d.to_string();
    assert!(text.contains("first divergence"), "{text}");
}

/// The parallel sweep runner returns bit-identical statistics in
/// submission order no matter how many worker threads execute it.
#[test]
fn sweep_results_identical_across_job_counts() {
    let kernels = ["hotspot", "bfs", "srad", "x264"];
    let run_all = |jobs: usize| -> Vec<(u64, u64)> {
        let mut sweep = Sweep::new();
        let mut ids = Vec::new();
        for name in kernels {
            let spec = find(name).expect("registered");
            ids.push(sweep.add(MachineSpec::Diag(DiagConfig::f4c2()), spec, Params::tiny()));
            ids.push(sweep.add(MachineSpec::Ooo(2), spec, Params::tiny().with_threads(2)));
        }
        let results = sweep.execute(jobs);
        ids.iter()
            .map(|id| {
                let s = results.stats(*id).expect("run succeeded");
                (s.cycles, s.committed)
            })
            .collect()
    };
    let serial = run_all(1);
    for jobs in [2, 8] {
        assert_eq!(
            serial,
            run_all(jobs),
            "sweep nondeterministic at {jobs} jobs"
        );
    }
}
