//! Hot-loop discipline tests: once a loop's line is resident, every
//! further step must execute entirely from the predecoded stations —
//! zero `decode()` calls and zero heap allocations per step. Lives in
//! its own test binary because both checks read process-global counters
//! (the decoder's call counter and a counting global allocator) that
//! concurrent tests would pollute.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use diag::asm::assemble;
use diag::core::{Diag, DiagConfig};
use diag::isa::decode_calls;
use diag::sim::Machine;

/// Counts every allocation (and growing reallocation) in the process.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Steady-state reuse steps touch neither the decoder nor the heap.
///
/// A long-running single-line loop is warmed up past residency, then a
/// window of steps is measured with the decoder's call counter and the
/// allocation counter. Both deltas must be exactly zero: the reuse path
/// reads only the station arena, the lane file, and plain counters.
#[test]
fn steady_state_steps_do_not_decode_or_allocate() {
    let program = assemble(
        r#"
            li   t0, 1000000
            li   t1, 0
        loop:
            add  t1, t1, t0
            addi t0, t0, -1
            bnez t0, loop
            sw   t1, 0(zero)
            ecall
        "#,
    )
    .unwrap();
    let mut cpu = Diag::new(DiagConfig::f4c2());
    cpu.load(&program, 1);
    // Warm-up: line fetch, station population, first iterations.
    for _ in 0..256 {
        cpu.step().unwrap();
    }
    let decodes_before = decode_calls();
    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..2048 {
        cpu.step().unwrap();
    }
    let decode_delta = decode_calls() - decodes_before;
    let alloc_delta = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    assert_eq!(decode_delta, 0, "reuse steps must never call the decoder");
    assert_eq!(alloc_delta, 0, "reuse steps must never touch the heap");
}
