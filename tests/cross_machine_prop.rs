//! Property-based differential testing: random (but terminating) programs
//! must produce bit-identical architectural results on the in-order
//! reference, the out-of-order baseline, and every DiAG configuration.
//! This is the strongest correctness property in the workspace — the
//! machines share instruction semantics but have completely different
//! execution engines.

use diag::asm::{Program, ProgramBuilder};
use diag::baseline::{InOrder, O3Config, OooCpu};
use diag::core::{Diag, DiagConfig};
use diag::isa::regs::*;
use diag::isa::{AluOp, Reg};
use diag::sim::Machine;
use proptest::prelude::*;

/// Registers random programs are allowed to clobber.
const POOL: [Reg; 12] = [T0, T1, T2, T3, T4, T5, S2, S3, S4, S5, S6, S7];

#[derive(Debug, Clone)]
enum Op {
    Alu(AluOp, usize, usize, usize),
    AluImm(AluOp, usize, usize, i32),
    Store(usize, usize), // slot, src
    Load(usize, usize),  // dst, slot
    SkipIfEq(usize, usize), // forward branch over the next instruction
}

fn any_alu() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Xor),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Rem),
    ]
}

fn any_op() -> impl Strategy<Value = Op> {
    let r = 0..POOL.len();
    prop_oneof![
        (any_alu(), r.clone(), r.clone(), r.clone()).prop_map(|(op, d, a, b)| Op::Alu(op, d, a, b)),
        (any_alu(), r.clone(), r.clone(), -64i32..64).prop_filter_map(
            "imm-form ops only",
            |(op, d, a, imm)| {
                if !op.has_imm_form() {
                    return None;
                }
                let imm = match op {
                    AluOp::Sll | AluOp::Srl | AluOp::Sra => imm & 0x1F,
                    _ => imm,
                };
                Some(Op::AluImm(op, d, a, imm))
            }
        ),
        (0usize..16, r.clone()).prop_map(|(slot, src)| Op::Store(slot, src)),
        (r.clone(), 0usize..16).prop_map(|(dst, slot)| Op::Load(dst, slot)),
        (r.clone(), r).prop_map(|(a, b)| Op::SkipIfEq(a, b)),
    ]
}

/// Builds a terminating program: seeded registers, a fixed-trip-count loop
/// around the random body, then a full register/scratch dump.
fn build_program(seeds: &[i32], body: &[Op], trips: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let scratch = b.data_zeroed("scratch", 64);
    let dump = b.data_zeroed("dump", 4 * (POOL.len() + 16));
    for (i, &seed) in seeds.iter().enumerate() {
        b.li(POOL[i], seed);
    }
    b.li(S11, scratch as i32);
    b.li(S10, trips as i32);
    let top = b.bind_new_label();
    for op in body {
        match *op {
            Op::Alu(op, d, a, c) => b.inst(diag::isa::Inst::Op {
                op,
                rd: POOL[d],
                rs1: POOL[a],
                rs2: POOL[c],
            }),
            Op::AluImm(op, d, a, imm) => b.inst(diag::isa::Inst::OpImm {
                op,
                rd: POOL[d],
                rs1: POOL[a],
                imm,
            }),
            Op::Store(slot, src) => b.sw(POOL[src], S11, (4 * slot) as i32),
            Op::Load(dst, slot) => b.lw(POOL[dst], S11, (4 * slot) as i32),
            Op::SkipIfEq(a, c) => {
                let skip = b.new_label();
                b.beq(POOL[a], POOL[c], skip);
                b.addi(POOL[a], POOL[a], 1);
                b.bind(skip);
            }
        }
    }
    b.addi(S10, S10, -1);
    b.bnez(S10, top);
    // Dump every pool register and the scratch area.
    b.li(S10, dump as i32);
    for (i, &reg) in POOL.iter().enumerate() {
        b.sw(reg, S10, (4 * i) as i32);
    }
    for slot in 0..16 {
        b.lw(T6, S11, (4 * slot) as i32);
        b.sw(T6, S10, (4 * (POOL.len() + slot)) as i32);
    }
    b.ecall();
    b.build().expect("generated program must assemble")
}

fn dump_of(m: &dyn Machine, program: &Program) -> Vec<u32> {
    let dump = program.symbol("dump").unwrap();
    (0..(POOL.len() + 16) as u32).map(|i| m.read_word(dump + 4 * i)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn machines_agree_architecturally(
        seeds in prop::collection::vec(-1000i32..1000, POOL.len()),
        body in prop::collection::vec(any_op(), 1..24),
        trips in 1u32..6,
    ) {
        let program = build_program(&seeds, &body, trips);
        let mut reference = InOrder::new();
        reference.run(&program, 1).expect("reference run");
        let want = dump_of(&reference, &program);

        let mut ooo = OooCpu::new(O3Config::aggressive_8wide(), 1);
        ooo.run(&program, 1).expect("ooo run");
        prop_assert_eq!(&dump_of(&ooo, &program), &want, "OoO diverged");

        for cfg in [DiagConfig::f4c2(), DiagConfig::f4c32()] {
            let name = cfg.name.clone();
            let mut diag = Diag::new(cfg);
            diag.run(&program, 1).expect("diag run");
            prop_assert_eq!(&dump_of(&diag, &program), &want, "DiAG {} diverged", name);
        }

        // Reuse ablation must not change architectural results either.
        let mut cfg = DiagConfig::f4c2();
        cfg.enable_reuse = false;
        let mut diag = Diag::new(cfg);
        diag.run(&program, 1).expect("diag no-reuse run");
        prop_assert_eq!(&dump_of(&diag, &program), &want, "DiAG no-reuse diverged");
    }

    #[test]
    fn multithreaded_runs_are_deterministic(
        seeds in prop::collection::vec(-100i32..100, POOL.len()),
        body in prop::collection::vec(any_op(), 1..10),
    ) {
        // Threads share the binary but not the scratch (all threads write
        // the same values — the final state equals any single thread's).
        let program = build_program(&seeds, &body, 2);
        let mut a = Diag::new(DiagConfig::f4c32());
        a.run(&program, 4).expect("run a");
        let mut c = Diag::new(DiagConfig::f4c32());
        c.run(&program, 4).expect("run b");
        prop_assert_eq!(dump_of(&a, &program), dump_of(&c, &program));
    }
}
