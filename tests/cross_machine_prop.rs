//! Randomized differential testing: random (but terminating) programs
//! must produce bit-identical architectural results on the in-order
//! reference, the out-of-order baseline, and every DiAG configuration.
//! This is the strongest correctness property in the workspace — the
//! machines share instruction semantics but have completely different
//! execution engines. Driven by the in-workspace [`SplitMix64`] generator
//! so the suite runs fully offline; the `heavy` feature scales the case
//! count up for soak runs.

use diag::asm::{Program, ProgramBuilder};
use diag::baseline::{InOrder, O3Config, OooCpu};
use diag::core::{Diag, DiagConfig};
use diag::isa::prng::SplitMix64;
use diag::isa::regs::*;
use diag::isa::{AluOp, Reg};
use diag::sim::Machine;

#[cfg(not(feature = "heavy"))]
const CASES: u64 = 48;
#[cfg(feature = "heavy")]
const CASES: u64 = 2_048;

/// Registers random programs are allowed to clobber.
const POOL: [Reg; 12] = [T0, T1, T2, T3, T4, T5, S2, S3, S4, S5, S6, S7];

#[derive(Debug, Clone)]
enum Op {
    Alu(AluOp, usize, usize, usize),
    AluImm(AluOp, usize, usize, i32),
    Store(usize, usize),    // slot, src
    Load(usize, usize),     // dst, slot
    SkipIfEq(usize, usize), // forward branch over the next instruction
}

const ALU_OPS: [AluOp; 13] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Xor,
    AluOp::Or,
    AluOp::And,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Mul,
    AluOp::Div,
    AluOp::Rem,
];

fn any_alu(rng: &mut SplitMix64) -> AluOp {
    ALU_OPS[rng.gen_range(0usize..ALU_OPS.len())]
}

fn any_op(rng: &mut SplitMix64) -> Op {
    let r = POOL.len();
    match rng.gen_range(0u32..5) {
        0 => Op::Alu(
            any_alu(rng),
            rng.gen_range(0usize..r),
            rng.gen_range(0usize..r),
            rng.gen_range(0usize..r),
        ),
        1 => {
            let op = loop {
                let op = any_alu(rng);
                if op.has_imm_form() {
                    break op;
                }
            };
            let imm = rng.gen_range(-64i32..64);
            let imm = match op {
                AluOp::Sll | AluOp::Srl | AluOp::Sra => imm & 0x1F,
                _ => imm,
            };
            Op::AluImm(op, rng.gen_range(0usize..r), rng.gen_range(0usize..r), imm)
        }
        2 => Op::Store(rng.gen_range(0usize..16), rng.gen_range(0usize..r)),
        3 => Op::Load(rng.gen_range(0usize..r), rng.gen_range(0usize..16)),
        _ => Op::SkipIfEq(rng.gen_range(0usize..r), rng.gen_range(0usize..r)),
    }
}

fn random_case(rng: &mut SplitMix64, seed_bound: i32, max_ops: usize) -> (Vec<i32>, Vec<Op>) {
    let seeds = (0..POOL.len())
        .map(|_| rng.gen_range(-seed_bound..seed_bound))
        .collect();
    let count = rng.gen_range(1usize..max_ops);
    let body = (0..count).map(|_| any_op(rng)).collect();
    (seeds, body)
}

/// Builds a terminating program: seeded registers, a fixed-trip-count loop
/// around the random body, then a full register/scratch dump.
fn build_program(seeds: &[i32], body: &[Op], trips: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let scratch = b.data_zeroed("scratch", 64);
    let dump = b.data_zeroed("dump", 4 * (POOL.len() + 16));
    for (i, &seed) in seeds.iter().enumerate() {
        b.li(POOL[i], seed);
    }
    b.li(S11, scratch as i32);
    b.li(S10, trips as i32);
    let top = b.bind_new_label();
    for op in body {
        match *op {
            Op::Alu(op, d, a, c) => b.inst(diag::isa::Inst::Op {
                op,
                rd: POOL[d],
                rs1: POOL[a],
                rs2: POOL[c],
            }),
            Op::AluImm(op, d, a, imm) => b.inst(diag::isa::Inst::OpImm {
                op,
                rd: POOL[d],
                rs1: POOL[a],
                imm,
            }),
            Op::Store(slot, src) => b.sw(POOL[src], S11, (4 * slot) as i32),
            Op::Load(dst, slot) => b.lw(POOL[dst], S11, (4 * slot) as i32),
            Op::SkipIfEq(a, c) => {
                let skip = b.new_label();
                b.beq(POOL[a], POOL[c], skip);
                b.addi(POOL[a], POOL[a], 1);
                b.bind(skip);
            }
        }
    }
    b.addi(S10, S10, -1);
    b.bnez(S10, top);
    // Dump every pool register and the scratch area.
    b.li(S10, dump as i32);
    for (i, &reg) in POOL.iter().enumerate() {
        b.sw(reg, S10, (4 * i) as i32);
    }
    for slot in 0..16 {
        b.lw(T6, S11, (4 * slot) as i32);
        b.sw(T6, S10, (4 * (POOL.len() + slot)) as i32);
    }
    b.ecall();
    b.build().expect("generated program must assemble")
}

fn dump_of(m: &dyn Machine, program: &Program) -> Vec<u32> {
    let dump = program.symbol("dump").unwrap();
    (0..(POOL.len() + 16) as u32)
        .map(|i| m.read_word(dump + 4 * i))
        .collect()
}

#[test]
fn machines_agree_architecturally() {
    let mut rng = SplitMix64::seed_from_u64(0xC055_0001);
    for case in 0..CASES {
        let (seeds, body) = random_case(&mut rng, 1000, 24);
        let trips = rng.gen_range(1u32..6);
        let program = build_program(&seeds, &body, trips);
        let mut reference = InOrder::new();
        reference.run(&program, 1).expect("reference run");
        let want = dump_of(&reference, &program);

        let mut ooo = OooCpu::new(O3Config::aggressive_8wide(), 1);
        ooo.run(&program, 1).expect("ooo run");
        assert_eq!(dump_of(&ooo, &program), want, "OoO diverged (case {case})");

        for cfg in [DiagConfig::f4c2(), DiagConfig::f4c32()] {
            let name = cfg.name.clone();
            let mut diag = Diag::new(cfg);
            diag.run(&program, 1).expect("diag run");
            assert_eq!(
                dump_of(&diag, &program),
                want,
                "DiAG {name} diverged (case {case})"
            );
        }

        // Reuse ablation must not change architectural results either.
        let mut cfg = DiagConfig::f4c2();
        cfg.enable_reuse = false;
        let mut diag = Diag::new(cfg);
        diag.run(&program, 1).expect("diag no-reuse run");
        assert_eq!(
            dump_of(&diag, &program),
            want,
            "DiAG no-reuse diverged (case {case})"
        );
    }
}

#[test]
fn multithreaded_runs_are_deterministic() {
    let mut rng = SplitMix64::seed_from_u64(0xC055_0002);
    for _ in 0..CASES {
        // Threads share the binary but not the scratch (all threads write
        // the same values — the final state equals any single thread's).
        let (seeds, body) = random_case(&mut rng, 100, 10);
        let program = build_program(&seeds, &body, 2);
        let mut a = Diag::new(DiagConfig::f4c32());
        a.run(&program, 4).expect("run a");
        let mut c = Diag::new(DiagConfig::f4c32());
        c.run(&program, 4).expect("run b");
        assert_eq!(dump_of(&a, &program), dump_of(&c, &program));
    }
}
