//! End-to-end tests of the `diag-trace` observability subsystem.
//!
//! The contract under test (ISSUE acceptance criteria):
//!
//! 1. **Exact stall reconciliation** — the stall-attribution timeline
//!    built from the event stream sums to exactly the run's
//!    [`StallBreakdown`], per cause, for every bundled workload on every
//!    machine model, including multi-threaded and SIMT variants.
//! 2. **Tracing is observation only** — a traced run's [`RunStats`] are
//!    identical to an untraced run's.
//! 3. **Determinism** — two traced runs of the same workload produce
//!    byte-identical JSONL event streams.
//! 4. **Perfetto validity** — the Chrome trace-event export passes the
//!    schema check for every machine model.

use diag_bench::runner::{build_machine, MachineSpec};
use diag_sim::RunStats;
use diag_trace::timeline::StallTimeline;
use diag_trace::{perfetto, Event, Tracer, VecSink};
use diag_workloads::{Params, WorkloadSpec};

/// Runs `spec` on a machine of `kind` with a tracer attached; returns the
/// run's statistics and the captured event stream.
fn traced_run(kind: &MachineSpec, spec: &WorkloadSpec, params: &Params) -> (RunStats, Vec<Event>) {
    let built = spec.build(params).expect("workload builds");
    let sink = VecSink::shared();
    let mut machine = build_machine(kind);
    machine.set_tracer(Tracer::to_shared(sink.clone()));
    let stats = machine
        .run(&built.program, params.threads)
        .unwrap_or_else(|e| panic!("{} on {}: {e}", spec.name, kind.label()));
    (built.verify)(machine.as_ref())
        .unwrap_or_else(|e| panic!("{} on {}: verify: {e}", spec.name, kind.label()));
    let events = sink.borrow_mut().take();
    (stats, events)
}

/// Asserts the timeline built from `events` reconciles exactly with the
/// run's stall breakdown.
fn assert_reconciles(label: &str, stats: &RunStats, events: &[Event]) {
    let timeline = StallTimeline::from_events(events, 64);
    assert_eq!(
        timeline.totals(),
        [
            stats.stalls.memory,
            stats.stalls.control,
            stats.stalls.structural
        ],
        "{label}: timeline disagrees with StallBreakdown {:?}",
        stats.stalls
    );
}

fn machines() -> Vec<MachineSpec> {
    vec![
        MachineSpec::Diag(diag_core::DiagConfig::f4c32()),
        MachineSpec::Ooo(4),
        MachineSpec::InOrder,
    ]
}

#[test]
fn stall_timeline_reconciles_on_every_workload() {
    for kind in machines() {
        for spec in diag_workloads::all() {
            let params = Params::tiny();
            let (stats, events) = traced_run(&kind, &spec, &params);
            assert_reconciles(
                &format!("{} on {}", spec.name, kind.label()),
                &stats,
                &events,
            );
        }
    }
}

#[test]
fn stall_timeline_reconciles_multithreaded_and_simt() {
    for spec in diag_workloads::all() {
        let kind = MachineSpec::Diag(diag_core::DiagConfig::f4c32());
        let params = Params::tiny().with_threads(4);
        let (stats, events) = traced_run(&kind, &spec, &params);
        assert_reconciles(&format!("{} x4 threads", spec.name), &stats, &events);
        if spec.simt_capable {
            let params = Params::tiny().with_threads(4).with_simt(true);
            let (stats, events) = traced_run(&kind, &spec, &params);
            assert_reconciles(&format!("{} x4 simt", spec.name), &stats, &events);
        }
    }
    // The baselines under waves (threads > cores) as well.
    let spec = diag_workloads::find("hotspot").expect("bundled");
    let params = Params::tiny().with_threads(6);
    for kind in [MachineSpec::Ooo(2), MachineSpec::InOrder] {
        let (stats, events) = traced_run(&kind, &spec, &params);
        assert_reconciles(
            &format!("hotspot waves on {}", kind.label()),
            &stats,
            &events,
        );
    }
}

#[test]
fn tracing_does_not_change_stats() {
    for kind in machines() {
        for name in ["hotspot", "mcf"] {
            let spec = diag_workloads::find(name).expect("bundled");
            let params = Params::tiny().with_threads(2);
            let built = spec.build(&params).expect("workload builds");
            let mut plain = build_machine(&kind);
            let untraced = plain.run(&built.program, params.threads).expect("runs");
            let (traced, events) = traced_run(&kind, &spec, &params);
            assert!(
                !events.is_empty(),
                "{name} on {} traced nothing",
                kind.label()
            );
            assert_eq!(
                untraced,
                traced,
                "{name} on {}: tracing perturbed the run",
                kind.label()
            );
        }
    }
}

#[test]
fn traced_runs_are_byte_deterministic() {
    let spec = diag_workloads::find("bfs").expect("bundled");
    let params = Params::tiny().with_threads(2);
    let jsonl = |events: &[Event]| {
        let mut buf = String::new();
        for event in events {
            event.write_jsonl(&mut buf);
            buf.push('\n');
        }
        buf
    };
    for kind in machines() {
        let (_, first) = traced_run(&kind, &spec, &params);
        let (_, second) = traced_run(&kind, &spec, &params);
        assert_eq!(
            jsonl(&first),
            jsonl(&second),
            "bfs on {}: nondeterministic event stream",
            kind.label()
        );
    }
}

#[test]
fn perfetto_export_is_schema_valid() {
    let spec = diag_workloads::find("srad").expect("bundled");
    for kind in machines() {
        let (_, events) = traced_run(&kind, &spec, &Params::tiny());
        let text = perfetto::export(&events);
        let summary = perfetto::validate_chrome_trace(&text)
            .unwrap_or_else(|e| panic!("srad on {}: invalid trace: {e}", kind.label()));
        assert!(summary.events > 0, "srad on {}: empty trace", kind.label());
        assert!(summary.slices > 0, "srad on {}: no slices", kind.label());
    }
}
