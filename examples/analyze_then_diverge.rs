//! Static analysis and dynamic differential testing catching the *same*
//! bug, two different ways.
//!
//! The kernel below reads `t1` and `s0` before anything writes them. The
//! workspace convention zero-initializes every non-ABI lane, so the bug is
//! invisible to result checking — all machines agree on the (accidentally
//! correct) answer. This example shows the two tools that still catch it:
//!
//! 1. **Statically**: `diag-analyze`'s use-before-def lint flags the exact
//!    reading instruction without executing a cycle.
//! 2. **Dynamically**: running DiAG in lockstep against a *poisoned*
//!    reference interpreter — identical semantics, but uninitialized lanes
//!    start at `0xDEADBEEF` instead of zero — diverges at the very same
//!    address, because only an uninitialized read can observe the poison.
//!
//! ```text
//! cargo run --example analyze_then_diverge
//! ```

use diag::analyze::{analyze, AnalyzeOptions, Lint, Severity};
use diag::asm::Program;
use diag::core::{Diag, DiagConfig};
use diag::isa::{ArchReg, Reg};
use diag::mem::MainMemory;
use diag::sim::interp::{arch_step, ArchState};
use diag::sim::{run_lockstep, Commit, LockstepOutcome, Machine, RunStats, SimError, StepOutcome};

const KERNEL: &str = "
    addi t0, zero, 10
loop:
    add  s0, s0, t1
    addi t0, t0, -1
    bnez t0, loop
    sw   s0, 0(zero)
    ecall
";

/// The value poisoned lanes start with — outside anything the kernel
/// computes, so any read of an uninitialized lane changes the commit
/// stream.
const POISON: u32 = 0xDEAD_BEEF;

/// A reference interpreter whose uninitialized lanes hold [`POISON`]
/// instead of zero. Architecturally identical to the in-order reference
/// for any program that initializes before reading.
struct PoisonedInterp {
    run: Option<(ArchState, Program, MainMemory)>,
    stats: RunStats,
    log: bool,
    commits: Vec<Commit>,
}

impl PoisonedInterp {
    fn new() -> PoisonedInterp {
        PoisonedInterp {
            run: None,
            stats: RunStats::default(),
            log: false,
            commits: Vec::new(),
        }
    }
}

impl Machine for PoisonedInterp {
    fn name(&self) -> String {
        "poisoned-interp".to_string()
    }

    fn load(&mut self, program: &Program, threads: usize) {
        let mut state = ArchState::new_thread(program.entry(), 0, threads.max(1));
        let keep: Vec<usize> = [Reg::A0, Reg::A1, Reg::SP]
            .iter()
            .map(|&r| ArchReg::from(r).index())
            .collect();
        for (i, lane) in state.regs.iter_mut().enumerate() {
            if i != 0 && !keep.contains(&i) {
                *lane = POISON;
            }
        }
        let mem = MainMemory::with_program(program);
        self.stats = RunStats {
            threads: 1,
            ..RunStats::default()
        };
        self.commits.clear();
        self.run = Some((state, program.clone(), mem));
    }

    fn step(&mut self) -> Result<StepOutcome, SimError> {
        let (state, program, mem) = self.run.as_mut().ok_or(SimError::NotLoaded)?;
        if state.halted {
            return Err(SimError::NotLoaded);
        }
        let info = arch_step(state, program, mem, None)?;
        self.stats.committed += 1;
        self.stats.cycles += 1;
        if self.log {
            let dest = info.dest.filter(|(lane, _)| !lane.is_zero());
            self.commits.push(Commit {
                thread: 0,
                pc: info.pc,
                dest,
            });
        }
        Ok(if state.halted {
            StepOutcome::Halted
        } else {
            StepOutcome::Running
        })
    }

    fn stats(&self) -> RunStats {
        self.stats
    }

    fn set_commit_log(&mut self, enabled: bool) {
        self.log = enabled;
    }

    fn take_commits(&mut self) -> Vec<Commit> {
        std::mem::take(&mut self.commits)
    }

    fn read_word(&self, addr: u32) -> u32 {
        self.run
            .as_ref()
            .map_or(0, |(_, _, mem)| mem.read_u32(addr))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = diag::asm::assemble(KERNEL)?;

    // Step 1: the analyzer flags the uninitialized reads statically.
    let analysis = analyze(&program, &AnalyzeOptions::default());
    println!("== static analysis ==");
    let mut flagged_pcs = Vec::new();
    for d in &analysis.diagnostics {
        println!("{d}");
        for line in &d.context {
            println!("  {line}");
        }
        if d.lint == Lint::UseBeforeDef {
            flagged_pcs.push(d.pc_range.0);
        }
    }
    assert_eq!(
        analysis.max_severity(),
        Some(Severity::Warning),
        "expected use-before-def warnings"
    );
    assert!(
        !flagged_pcs.is_empty(),
        "expected at least one use-before-def finding"
    );

    // Step 2: the same bug caught dynamically — DiAG (zero-initialized)
    // against the poisoned reference diverges at a flagged address.
    println!("\n== lockstep vs poisoned reference ==");
    let mut dut = Diag::new(DiagConfig::f4c32());
    let mut reference = PoisonedInterp::new();
    match run_lockstep(&mut dut, &mut reference, &program, 1, 10_000)? {
        LockstepOutcome::Agree { commits } => {
            panic!("machines agreed over {commits} commits — poisoning found nothing")
        }
        LockstepOutcome::Diverged(d) => {
            println!("{d}");
            let diverged_pc = d.left.or(d.right).map(|c| c.pc).expect("commit present");
            assert!(
                flagged_pcs.contains(&diverged_pc),
                "divergence at {diverged_pc:#x} but the analyzer flagged {flagged_pcs:#x?}"
            );
            println!(
                "\ndivergence at {diverged_pc:#x} matches the statically-flagged \
                 use-before-def — both tools point at the same instruction"
            );
        }
    }
    Ok(())
}
