//! Datapath reuse (paper §4.3.2): the architectural feature that lets a
//! loop execute "at an efficiency close to accelerators".
//!
//! Runs the same loop kernel on DiAG with reuse enabled and disabled
//! (ablation switch), and on the out-of-order baseline, printing how many
//! I-lines were fetched and instructions decoded per committed
//! instruction — the Table 1 comparison, live.
//!
//! ```text
//! cargo run --example loop_reuse
//! ```

use diag::asm::assemble;
use diag::baseline::OooCpu;
use diag::core::{Diag, DiagConfig};
use diag::sim::{Machine, RunStats};

fn report(name: &str, stats: &RunStats) {
    println!(
        "{name:<24} cycles {:>8}  IPC {:>5.2}  lines/instr {:>6.4}  decodes/instr {:>6.4}",
        stats.cycles,
        stats.ipc(),
        stats.activity.line_fetches as f64 / stats.committed as f64,
        stats.activity.decodes as f64 / stats.committed as f64,
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A dot-product loop: enough body to span two I-lines, iterated enough
    // for steady-state behaviour to dominate.
    let program = assemble(
        r#"
        .data
        vec_a:
            .zero 8192
        vec_b:
            .zero 8192
        .text
            la   a2, vec_a
            la   a3, vec_b
            li   t0, 0
            li   t1, 2048
            li   t2, 0
        loop:
            slli t3, t0, 2
            add  t4, a2, t3
            lw   t5, 0(t4)
            add  t4, a3, t3
            lw   t6, 0(t4)
            mul  t5, t5, t6
            add  t2, t2, t5
            addi t0, t0, 1
            blt  t0, t1, loop
            sw   t2, 0(zero)
            ecall
        "#,
    )?;

    let mut with_reuse = Diag::new(DiagConfig::f4c32());
    let s_reuse = with_reuse.run(&program, 1)?;

    let mut cfg = DiagConfig::f4c32();
    cfg.enable_reuse = false;
    let mut without = Diag::new(cfg);
    let s_noreuse = without.run(&program, 1)?;

    let mut ooo = OooCpu::paper_baseline();
    let s_ooo = ooo.run(&program, 1)?;

    println!(
        "dot product over 2048 elements (all results identical: {})",
        with_reuse.read_word(0)
    );
    assert_eq!(with_reuse.read_word(0), without.read_word(0));
    assert_eq!(with_reuse.read_word(0), ooo.read_word(0));
    println!();
    report("DiAG (reuse)", &s_reuse);
    report("DiAG (reuse disabled)", &s_noreuse);
    report("OoO 8-wide", &s_ooo);
    println!();
    println!(
        "With reuse, {:.1}% of DiAG's instructions executed from the resident \
         datapath — no fetch, no decode — the paper's Table 1 'DiAG (Reuse)' column.",
        s_reuse.reuse_fraction() * 100.0
    );
    assert!(s_reuse.cycles <= s_noreuse.cycles);
    Ok(())
}
