//! The static verifier and the simulator catching the *same* bad store,
//! at the *same* station, two different ways.
//!
//! The kernel below computes a pointer of `3` and stores a word through
//! it. That address is wrong twice over: it is below the data window
//! (`DATA_BASE = 0x0010_0000`), and it is not 4-byte aligned.
//!
//! 1. **Statically**: `diag-verify`'s interval fixpoint proves the
//!    address is the singleton `{3}` and *refutes* both the mem-bounds
//!    and the mem-align obligation at the store's pc — no execution.
//! 2. **Dynamically**: the architectural interpreter traps the same
//!    store with [`SimError::Misaligned`] when it actually retires.
//!
//! The example asserts both tools blame the identical program counter —
//! the refutation is not a false positive, and the trap is not a
//! coincidence.
//!
//! ```text
//! cargo run --example verify_oob
//! ```

use diag::asm::assemble;
use diag::mem::MainMemory;
use diag::sim::interp::{arch_step, ArchState};
use diag::sim::SimError;
use diag::verify::{verify, FactKind, Verdict, VerifyOptions};

const KERNEL: &str = "
    addi t0, zero, 3
    addi t1, zero, 77
    sw   t1, 0(t0)
    ecall
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = assemble(KERNEL)?;

    // --- Static: the verifier refutes the store without running it. ---
    let verification = verify(&program, &VerifyOptions::default());
    let refuted: Vec<_> = verification
        .facts
        .iter()
        .filter(|f| f.verdict == Verdict::Refuted)
        .collect();
    for fact in &refuted {
        println!(
            "static : {:#06x} {} refuted — {}",
            fact.pc,
            fact.kind.name(),
            fact.detail
        );
    }
    assert!(
        refuted
            .iter()
            .any(|f| f.kind == FactKind::MemBounds && f.verdict == Verdict::Refuted),
        "expected a refuted mem-bounds fact"
    );
    assert!(
        refuted
            .iter()
            .any(|f| f.kind == FactKind::MemAlign && f.verdict == Verdict::Refuted),
        "expected a refuted mem-align fact"
    );
    let static_pc = refuted[0].pc;
    assert!(refuted.iter().all(|f| f.pc == static_pc));

    // --- Dynamic: the interpreter traps the same store when it runs. ---
    let mut state = ArchState::new_thread(program.entry(), 0, 1);
    let mut mem = MainMemory::with_program(&program);
    let trap = loop {
        let pc = state.pc;
        match arch_step(&mut state, &program, &mut mem, None) {
            Ok(_) if state.halted => panic!("program halted without trapping"),
            Ok(_) => continue,
            Err(e) => break (pc, e),
        }
    };
    let (trap_pc, err) = trap;
    println!("dynamic: {trap_pc:#06x} trapped — {err}");
    assert!(
        matches!(err, SimError::Misaligned { addr: 3, size: 4 }),
        "expected a misaligned 4-byte store to address 3, got {err}"
    );

    // --- Same station. ---
    assert_eq!(
        static_pc, trap_pc,
        "verifier and simulator must blame the same pc"
    );
    println!("agree  : station {static_pc:#06x} refuted statically and trapped dynamically");
    Ok(())
}
