//! Lockstep differential execution: step a DiAG machine and the in-order
//! reference together over a workload and diff their commit streams
//! retirement-for-retirement. On agreement it reports the stream length;
//! on divergence it prints the first mismatching retirement with its
//! disassembly — the debugging workflow for timing-model changes.
//!
//! ```text
//! cargo run --release --example lockstep_diff [workload] [threads]
//! ```
//!
//! `workload` is any registered kernel name (default `bfs`); pass
//! `--corrupt N` to flip one bit in the DiAG side's N-th register write
//! and watch the diff catch it.

use diag::baseline::InOrder;
use diag::core::{Diag, DiagConfig};
use diag::pipeline::Session;
use diag::sim::{
    run_lockstep_prepared, Commit, LockstepOutcome, Machine, RunStats, SimError, StepOutcome,
};
use diag::workloads::{find, Params, Scale};

/// Wraps a machine and corrupts the value of one register-writing
/// retirement — a synthetic one-instruction simulator bug.
struct Corrupt<M: Machine + 'static> {
    inner: M,
    at: u64,
    writes: u64,
}

impl<M: Machine + 'static> Machine for Corrupt<M> {
    fn name(&self) -> String {
        format!("{} (corrupted)", self.inner.name())
    }
    fn load(&mut self, program: &diag::asm::Program, threads: usize) {
        self.writes = 0;
        self.inner.load(program, threads);
    }
    fn step(&mut self) -> Result<StepOutcome, SimError> {
        self.inner.step()
    }
    fn stats(&self) -> RunStats {
        self.inner.stats()
    }
    fn set_commit_log(&mut self, enabled: bool) {
        self.inner.set_commit_log(enabled);
    }
    fn take_commits(&mut self) -> Vec<Commit> {
        let mut commits = self.inner.take_commits();
        for c in &mut commits {
            if let Some((reg, value)) = c.dest {
                self.writes += 1;
                if self.writes == self.at {
                    c.dest = Some((reg, value ^ 1));
                }
            }
        }
        commits
    }
    fn read_word(&self, addr: u32) -> u32 {
        self.inner.read_word(addr)
    }
    fn as_any(&self) -> &dyn std::any::Any {
        &self.inner as &dyn std::any::Any
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let corrupt: Option<u64> = match args.iter().position(|a| a == "--corrupt") {
        Some(i) => match args.get(i + 1).and_then(|v| v.parse().ok()) {
            Some(n) => Some(n),
            None => return Err("--corrupt needs a positive retirement index".into()),
        },
        None => None,
    };
    let mut positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if let Some(at) = corrupt {
        // Drop the value that followed --corrupt.
        let at = at.to_string();
        positional.retain(|a| **a != at);
    }
    let name = positional.first().map(|s| s.as_str()).unwrap_or("bfs");
    let threads: usize = positional.get(1).and_then(|t| t.parse().ok()).unwrap_or(1);
    let spec = find(name).ok_or_else(|| format!("unknown workload `{name}`"))?;
    let params = Params {
        scale: Scale::Tiny,
        threads,
        simt: false,
        seed: 0xD1A6,
    };
    // Prepare the program and its station-table lowering once through
    // the artifact store; both lockstep sides mount the shared table.
    let session = Session::in_memory();
    let built = session.workload(&spec, &params)?;
    let stations = session.stations(&spec, &params, None)?;

    let mut reference = InOrder::new();
    let outcome = if let Some(at) = corrupt {
        let mut left = Corrupt {
            inner: Diag::new(DiagConfig::f4c32()),
            at,
            writes: 0,
        };
        println!("running {name} with register write #{at} corrupted on the DiAG side…");
        run_lockstep_prepared(
            &mut left,
            &mut reference,
            &built.program,
            &stations,
            threads,
            u64::MAX,
        )?
    } else {
        let mut left = Diag::new(DiagConfig::f4c32());
        println!("running {name} on DiAG F4C32 vs the in-order reference…");
        run_lockstep_prepared(
            &mut left,
            &mut reference,
            &built.program,
            &stations,
            threads,
            u64::MAX,
        )?
    };

    match outcome {
        LockstepOutcome::Agree { commits } => {
            println!("AGREE: {commits} retirements matched across {threads} thread(s)");
        }
        LockstepOutcome::Diverged(d) => {
            println!("DIVERGED: {d}");
            std::process::exit(1);
        }
    }
    Ok(())
}
