//! Thread pipelining with the paper's `simt_s` / `simt_e` ISA extension
//! (§4.4, §5.4).
//!
//! Builds a SAXPY loop wrapped in a SIMT region and runs it three ways:
//! pipelined on DiAG, with pipelining disabled (the markers fall back to
//! their sequential-loop semantics), and on the out-of-order baseline
//! (which always executes the markers sequentially). All three produce
//! identical memory results; the pipelined run retires loop instances at
//! close to one per cycle once the pipeline fills.
//!
//! ```text
//! cargo run --example simt_pipeline
//! ```

use diag::asm::ProgramBuilder;
use diag::baseline::OooCpu;
use diag::core::{Diag, DiagConfig};
use diag::isa::regs::*;
use diag::sim::Machine;

const N: usize = 4096;
const A: f32 = 2.5;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let xs: Vec<f32> = (0..N).map(|i| i as f32 * 0.25).collect();
    let ys: Vec<f32> = (0..N).map(|i| 100.0 - i as f32 * 0.125).collect();

    let mut b = ProgramBuilder::new();
    let x_base = b.data_floats("x", &xs);
    let y_base = b.data_floats("y", &ys);
    let out_base = b.data_zeroed("out", 4 * N);
    b.fli_s(FS0, T0, A);
    b.li(S5, x_base as i32);
    b.li(S6, (y_base as i64 - x_base as i64) as i32);
    b.li(S7, (out_base as i64 - x_base as i64) as i32);
    b.li(T0, 0); // rc: element index
    b.li(T1, 1); // step
    b.li(T2, N as i32); // bound
    let head = b.bind_new_label();
    b.simt_s(T0, T1, T2, 1);
    {
        // out[i] = A * x[i] + y[i]
        b.slli(T3, T0, 2);
        b.add(T4, S5, T3);
        b.flw(FT0, T4, 0);
        b.add(T5, T4, S6);
        b.flw(FT1, T5, 0);
        b.fmadd_s(FT2, FS0, FT0, FT1);
        b.add(T5, T4, S7);
        b.fsw(FT2, T5, 0);
    }
    b.simt_e(T0, T2, head);
    b.ecall();
    let program = b.build()?;

    let mut cfg = DiagConfig::f4c32();
    cfg.ring_clusters = cfg.clusters;
    let mut pipelined = Diag::new(cfg.clone());
    let s_pipe = pipelined.run(&program, 1)?;

    let mut seq_cfg = cfg;
    seq_cfg.enable_simt = false;
    let mut sequential = Diag::new(seq_cfg);
    let s_seq = sequential.run(&program, 1)?;

    let mut ooo = OooCpu::paper_baseline();
    let s_ooo = ooo.run(&program, 1)?;

    for (i, (&x, &y)) in xs.iter().zip(&ys).enumerate() {
        let expected = A.mul_add(x, y);
        let addr = out_base + 4 * i as u32;
        assert_eq!(pipelined.read_f32(addr), expected, "pipelined, element {i}");
        assert_eq!(
            sequential.read_f32(addr),
            expected,
            "sequential, element {i}"
        );
        assert_eq!(ooo.read_f32(addr), expected, "baseline, element {i}");
    }

    println!("SAXPY over {N} elements (all three machines agree)");
    println!();
    println!(
        "DiAG, SIMT pipelined:      {:>8} cycles  IPC {:>5.2}",
        s_pipe.cycles,
        s_pipe.ipc()
    );
    println!(
        "DiAG, sequential markers:  {:>8} cycles  IPC {:>5.2}",
        s_seq.cycles,
        s_seq.ipc()
    );
    println!(
        "OoO 8-wide baseline:       {:>8} cycles  IPC {:>5.2}",
        s_ooo.cycles,
        s_ooo.ipc()
    );
    println!();
    println!(
        "pipelined speedup over sequential markers: {:.2}x (one loop instance \
         enters the region per cycle; §4.4.1's temporal parallelism)",
        s_seq.cycles as f64 / s_pipe.cycles as f64
    );
    assert!(s_pipe.cycles < s_seq.cycles);
    Ok(())
}
