//! The paper's Figure 3 walkthrough: Euclidean distance computed in
//! dataflow fashion.
//!
//! Figure 3 shows a five-instruction program whose dataflow graph has
//! depth 3; laid out in program order on DiAG's register lanes, the two
//! independent subtractions begin in the same cycle, the two squarings
//! overlap, and execution finishes in the depth of the graph rather than
//! its size. This example builds that exact program (extended with a real
//! square root) and contrasts DiAG against the single-issue in-order
//! reference, which needs one cycle per instruction plus RAW stalls.
//!
//! ```text
//! cargo run --example euclid_dataflow
//! ```

use diag::asm::ProgramBuilder;
use diag::baseline::{InOrder, OooCpu};
use diag::core::{Diag, DiagConfig};
use diag::isa::regs::*;
use diag::sim::Machine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (x1, y1) = (3.0f32, 7.0f32);
    let (x2, y2) = (6.0f32, 11.0f32);

    let mut b = ProgramBuilder::new();
    let points = b.data_floats("points", &[x1, y1, x2, y2]);
    let out = b.data_zeroed("out", 4);
    b.li(A0, points as i32);
    b.flw(FT0, A0, 0); // x1
    b.flw(FT1, A0, 4); // y1
    b.flw(FT2, A0, 8); // x2
    b.flw(FT3, A0, 12); // y2
                        // The Figure 3 dataflow graph:
                        //   i0: dx = x1 - x2        i2: dy = y1 - y2      (independent)
                        //   i1: dx2 = dx * dx       i3: dy2 = dy * dy     (independent)
                        //   i4: d2 = dx2 + dy2
    b.fsub_s(FT4, FT0, FT2);
    b.fmul_s(FT5, FT4, FT4);
    b.fsub_s(FT6, FT1, FT3);
    b.fmul_s(FT7, FT6, FT6);
    b.fadd_s(FT8, FT5, FT7);
    b.fsqrt_s(FT9, FT8);
    b.li(A1, out as i32);
    b.fsw(FT9, A1, 0);
    b.ecall();
    let program = b.build()?;

    let mut diag = Diag::new(DiagConfig::f4c2());
    let diag_stats = diag.run(&program, 1)?;
    let mut inorder = InOrder::new();
    let inorder_stats = inorder.run(&program, 1)?;
    let mut ooo = OooCpu::new(diag::baseline::O3Config::aggressive_8wide(), 1);
    let ooo_stats = ooo.run(&program, 1)?;

    let expected = ((x1 - x2) * (x1 - x2) + (y1 - y2) * (y1 - y2)).sqrt();
    assert_eq!(diag.read_f32(out), expected);
    assert_eq!(inorder.read_f32(out), expected);

    println!(
        "distance between ({x1},{y1}) and ({x2},{y2}) = {}",
        diag.read_f32(out)
    );
    println!();
    println!("DiAG (dataflow, Figure 3):  {} cycles", diag_stats.cycles);
    println!("OoO 8-wide:                 {} cycles", ooo_stats.cycles);
    println!(
        "in-order (flat 4-cy mem):   {} cycles",
        inorder_stats.cycles
    );
    println!();
    println!(
        "The independent dx/dy chains overlap on DiAG's register lanes exactly \
         as in the paper's Figure 3: i0/i2 start together, i1/i3 overlap, and \
         the additions chain — the graph's depth, not its size, sets the time. \
         (DiAG and the OoO both pay real cold-cache DRAM latency here; the \
         in-order reference uses an idealized flat 4-cycle memory.)"
    );
    assert!(diag_stats.cycles <= ooo_stats.cycles);
    Ok(())
}
