//! Quickstart: assemble a small program, run it on DiAG, and inspect the
//! statistics that make the architecture interesting — datapath reuse and
//! the stall breakdown.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use diag::asm::assemble;
use diag::core::{Diag, DiagConfig};
use diag::sim::Machine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A bare-metal RV32 program: sum of squares 1..=100 via repeated
    // addition, stored to address 0.
    let program = assemble(
        r#"
            li   t0, 100        # i
            li   t1, 0          # acc
        outer:
            mul  t2, t0, t0     # i^2
            add  t1, t1, t2
            addi t0, t0, -1
            bnez t0, outer
            sw   t1, 0(zero)
            ecall
        "#,
    )?;

    println!(
        "program: {} instructions\n{}",
        program.text_len(),
        program.listing()
    );

    let mut cpu = Diag::new(DiagConfig::f4c32());
    let stats = cpu.run(&program, 1)?;

    let expected: u32 = (1..=100u32).map(|i| i * i).sum();
    assert_eq!(cpu.read_word(0), expected);

    println!("result:        {}", cpu.read_word(0));
    println!("cycles:        {}", stats.cycles);
    println!("instructions:  {}", stats.committed);
    println!("IPC:           {:.2}", stats.ipc());
    println!(
        "datapath reuse: {:.1}% of instructions executed without fetch or decode",
        stats.reuse_fraction() * 100.0
    );
    let (m, c, o) = stats.stalls.shares();
    println!("stall sources: memory {m:.0}%, control {c:.0}%, structural {o:.0}%");
    Ok(())
}
