//! Head-to-head: run a published workload on DiAG and the paper's
//! out-of-order baseline, with energy estimates — a single-benchmark
//! slice of Figures 9 and 12.
//!
//! ```text
//! cargo run --release --example diag_vs_ooo [workload] [threads]
//! ```
//!
//! `workload` is any registered kernel name (default `hotspot`); run
//! `cargo run --example diag_vs_ooo -- list` to see them all.

use diag::baseline::OooCpu;
use diag::core::{Diag, DiagConfig};
use diag::pipeline::Session;
use diag::power::{BaselineEnergyModel, DiagEnergyModel};
use diag::sim::Machine;
use diag::workloads::{all, find, Params, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("list") {
        for w in all() {
            println!("{:<14} {:?}: {}", w.name, w.suite, w.description);
        }
        return Ok(());
    }
    let name = args.first().map(String::as_str).unwrap_or("hotspot");
    let threads: usize = args.get(1).and_then(|t| t.parse().ok()).unwrap_or(1);
    let spec = find(name).ok_or_else(|| format!("unknown workload `{name}` (try `list`)"))?;

    let params = Params {
        scale: Scale::Small,
        threads,
        simt: false,
        seed: 0xD1A6,
    };
    // One artifact store for the whole comparison: the workload is
    // assembled once and both machines run the same cached program.
    let session = Session::in_memory();
    let built = session.workload(&spec, &params)?;
    println!(
        "{}: {} ({} threads, ~{} dynamic instructions)",
        spec.name, spec.description, threads, built.approx_work
    );

    let mut diag = Diag::new(DiagConfig::f4c32());
    let s_diag = diag.run(&built.program, threads)?;
    (built.verify)(&diag).map_err(|e| format!("DiAG verification: {e}"))?;

    // The baseline adopts the session's cached station-table lowering
    // instead of re-lowering the text itself.
    let stations = session.stations(&spec, &params, None)?;
    let mut ooo = OooCpu::paper_baseline();
    let s_ooo = ooo.run_prepared(&built.program, &stations, threads)?;
    (built.verify)(&ooo).map_err(|e| format!("baseline verification: {e}"))?;

    let e_diag = DiagEnergyModel::default().energy(&s_diag);
    let e_ooo = BaselineEnergyModel::default().energy(&s_ooo);

    println!();
    println!("                      DiAG F4C32     OoO 8-wide x12");
    println!(
        "cycles             {:>12}   {:>12}",
        s_diag.cycles, s_ooo.cycles
    );
    println!(
        "IPC                {:>12.2}   {:>12.2}",
        s_diag.ipc(),
        s_ooo.ipc()
    );
    println!(
        "energy (nJ)        {:>12.1}   {:>12.1}",
        e_diag.total_nj(),
        e_ooo.total_nj()
    );
    println!();
    println!(
        "relative performance: {:.2}x   energy-efficiency improvement: {:.2}x",
        s_ooo.cycles as f64 / s_diag.cycles as f64,
        e_ooo.total_nj() / e_diag.total_nj()
    );
    Ok(())
}
