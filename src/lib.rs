//! # diag — a dataflow-inspired architecture for general-purpose processors
//!
//! A full reproduction of Wang & Kim, *DiAG: A Dataflow-Inspired
//! Architecture for General-Purpose Processors* (ASPLOS 2021), as a Rust
//! workspace. This facade crate re-exports the public API of every
//! subsystem:
//!
//! - [`isa`]: RV32IMF + SIMT-extension instruction set (decode/encode/
//!   semantics).
//! - [`asm`]: assembler and typed program builder.
//! - [`mem`]: caches, LSUs, memory lanes, the shared 512-bit bus.
//! - [`sim`]: the [`sim::Machine`] trait, run statistics, and the shared
//!   architectural interpreter.
//! - [`core`]: the DiAG processor itself — register lanes, processing
//!   clusters, dataflow rings, datapath reuse, SIMT thread pipelining.
//! - [`analyze`]: static dataflow-graph analysis — CFG recovery, lane
//!   liveness, lints, and simulator-cross-checked IPC upper bounds.
//! - [`verify`]: abstract-interpretation static verifier — interval
//!   fixpoint over the CFG proving memory bounds/alignment, branch
//!   targets, trip counts, and dead stations, soundness-checked against
//!   the simulator's observed value ranges.
//! - [`baseline`]: the 8-issue out-of-order multicore baseline and the
//!   in-order reference machine.
//! - [`power`]: Table-3-derived area/energy models.
//! - [`workloads`]: Rodinia- and SPEC-style benchmark kernels.
//! - [`pipeline`]: the staged preparation pipeline — a content-addressed
//!   artifact store ([`pipeline::Session`]) that memoizes workload
//!   assembly, station-table lowering, and analysis in memory and on
//!   disk.
//! - [`mod@bench`]: the experiment harness — per-figure regeneration
//!   functions and the parallel [`bench::sweep`] runner.
//! - [`serve`]: the persistent experiment server — bounded fair
//!   queueing, request coalescing onto the shared [`pipeline::Session`],
//!   and streaming JSONL results ([`serve::Server`], [`serve::Client`]).
//! - [`telemetry`]: host-side service metrics — atomic counters/gauges,
//!   log-scale latency histograms, and byte-deterministic text/JSON
//!   expositions ([`telemetry::Registry`]), scraped live via the
//!   server's `metrics` verb.
//!
//! Machines expose a steppable interface — [`sim::Machine::load`] mounts
//! a program, [`sim::Machine::step`] retires one unit of work — on top of
//! which [`sim::run_lockstep`] diffs two machines' commit streams and
//! reports the first divergence.
//!
//! # Quickstart
//!
//! ```
//! use diag::asm::assemble;
//! use diag::core::{Diag, DiagConfig};
//! use diag::sim::Machine;
//!
//! let program = assemble(r#"
//!     li   t0, 10
//!     li   t1, 0
//! loop:
//!     add  t1, t1, t0
//!     addi t0, t0, -1
//!     bnez t0, loop
//!     sw   t1, 0(zero)
//!     ecall
//! "#)?;
//! let mut cpu = Diag::new(DiagConfig::f4c32());
//! let stats = cpu.run(&program, 1)?;
//! assert_eq!(cpu.read_word(0), 55);
//! println!("{} cycles, {:.1}% reuse", stats.cycles, stats.reuse_fraction() * 100.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use diag_analyze as analyze;
pub use diag_asm as asm;
pub use diag_baseline as baseline;
pub use diag_bench as bench;
pub use diag_core as core;
pub use diag_isa as isa;
pub use diag_mem as mem;
pub use diag_pipeline as pipeline;
pub use diag_power as power;
pub use diag_serve as serve;
pub use diag_sim as sim;
pub use diag_telemetry as telemetry;
pub use diag_trace as trace;
pub use diag_verify as verify;
pub use diag_workloads as workloads;
