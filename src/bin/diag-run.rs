//! `diag-run`: assemble and execute a bare-metal RV32IMF assembly file on
//! any machine model in the workspace.
//!
//! ```text
//! diag-run <file.s> [--machine SPEC] [--threads N] [--no-simt]
//!          [--no-reuse] [--trace] [--dump ADDR LEN]
//! ```
//!
//! `--machine` takes a spec in the canonical grammar shared with the
//! harness and the server — `diag[:preset][+key=value,...]`,
//! `ooo[:cores]`, or `inorder` (presets `i4c2`/`f4c2`/`f4c16`/`f4c32`;
//! the legacy hyphenated names like `diag-f4c32` still work). So
//! `diag:f4c2+lsu_depth=4` runs a two-cluster DiAG with a shallower
//! load-store unit.
//!
//! The program halts when every hardware thread executes `ecall`. Run
//! statistics (cycles, IPC, reuse fraction, stall breakdown) print on
//! completion; `--dump` prints a region of final memory and `--trace`
//! prints the first retired instructions with their dataflow timing.

use diag::asm::assemble;
use diag::bench::runner::{build_machine, MachineSpec};
use diag::core::Diag;

struct Options {
    path: String,
    machine: String,
    threads: usize,
    simt: bool,
    reuse: bool,
    trace: bool,
    dump: Option<(u32, u32)>,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        path: String::new(),
        machine: "diag".to_string(),
        threads: 1,
        simt: true,
        reuse: true,
        trace: false,
        dump: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--machine" => opts.machine = args.next().ok_or("--machine needs a value")?,
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--threads needs a number")?
            }
            "--no-simt" => opts.simt = false,
            "--no-reuse" => opts.reuse = false,
            "--trace" => opts.trace = true,
            "--dump" => {
                let addr = args
                    .next()
                    .and_then(|v| parse_u32(&v))
                    .ok_or("--dump needs ADDR LEN")?;
                let len = args
                    .next()
                    .and_then(|v| parse_u32(&v))
                    .ok_or("--dump needs ADDR LEN")?;
                opts.dump = Some((addr, len));
            }
            other if !other.starts_with("--") && opts.path.is_empty() => {
                opts.path = other.to_string()
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.path.is_empty() {
        return Err("no input file".to_string());
    }
    Ok(opts)
}

fn parse_u32(text: &str) -> Option<u32> {
    if let Some(hex) = text.strip_prefix("0x") {
        u32::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!(
                "error: {e}\nusage: diag-run <file.s> [--machine SPEC] [--threads N] \
                 [--no-simt] [--no-reuse] [--trace] [--dump ADDR LEN]\n\
                 machine specs: diag[:preset][+key=value,...] | ooo[:cores] | inorder"
            );
            std::process::exit(2);
        }
    };
    let source = match std::fs::read_to_string(&opts.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.path);
            std::process::exit(1);
        }
    };
    let program = match assemble(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("assembly error: {e}");
            std::process::exit(1);
        }
    };

    // The pre-grammar machine names survive as aliases of the presets.
    let text = match opts.machine.as_str() {
        "diag-f4c32" => "diag:f4c32",
        "diag-f4c16" => "diag:f4c16",
        "diag-f4c2" => "diag:f4c2",
        "diag-i4c2" => "diag:i4c2",
        other => other,
    };
    let mut spec = match MachineSpec::parse(text) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("error: --machine {}: {e}", opts.machine);
            std::process::exit(2);
        }
    };
    if let MachineSpec::Diag(cfg) = &mut spec {
        cfg.enable_simt = opts.simt;
        cfg.enable_reuse = opts.reuse;
        cfg.collect_trace = opts.trace;
    }
    let mut machine = build_machine(&spec);

    let stats = match machine.run(&program, opts.threads) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("runtime error on {}: {e}", machine.name());
            std::process::exit(1);
        }
    };

    println!("machine:  {}", machine.name());
    println!(
        "program:  {} instructions, {} threads",
        program.text_len(),
        opts.threads
    );
    println!("cycles:   {}", stats.cycles);
    println!("retired:  {} (IPC {:.2})", stats.committed, stats.ipc());
    if stats.activity.reuse_commits > 0 {
        println!(
            "reuse:    {:.1}% of instructions",
            stats.reuse_fraction() * 100.0
        );
    }
    let (m, c, o) = stats.stalls.shares();
    println!("stalls:   memory {m:.0}%, control {c:.0}%, structural {o:.0}%");

    if opts.trace {
        if let Some(diag) = machine.as_any().downcast_ref::<Diag>() {
            println!(
                "\nfirst retired instructions (pc / slot / start / finish / commit / reused):"
            );
            for e in diag.last_trace().iter().take(32) {
                println!(
                    "  {:#07x}  slot {:>3}  {:>6} {:>6} {:>6}  {}",
                    e.pc,
                    e.slot,
                    e.start,
                    e.finish,
                    e.commit,
                    if e.reused { "reuse" } else { "decode" }
                );
            }
        } else {
            eprintln!("note: --trace is only available on DiAG machines");
        }
    }

    if let Some((addr, len)) = opts.dump {
        println!("\nmemory dump at {addr:#x}:");
        for i in 0..len {
            let a = addr + 4 * i;
            println!("  {a:#010x}: {:#010x}", machine.read_word(a));
        }
    }
}
